"""Ablation A5 — direction-weighted cluster similarity.

The paper clusters by "velocity/direction"; the similarity bound alpha is
described as a velocity difference, leaving direction's role open.  This
bench sweeps the direction weight (metres/second of similarity distance
per radian of heading difference): 0 reproduces pure-speed clustering,
larger values split same-speed groups moving opposite ways.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment

from benchmarks.conftest import print_header

WEIGHTS = (0.0, 0.5, 1.5)
_DURATION = 120.0


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for weight in WEIGHTS:
        config = ExperimentConfig(
            duration=_DURATION, dth_factors=(1.0,), direction_weight=weight
        )
        result = run_experiment(config)
        lane = result.lanes["adf-1"]
        out[weight] = (
            lane.filter_summary.get("clusters", 0.0),
            result.reduction_vs_ideal("adf-1"),
            lane.mean_rmse(with_le=True),
        )
    return out


def test_direction_weight_sweep(benchmark, sweep):
    def cluster_growth():
        return sweep[WEIGHTS[-1]][0] - sweep[WEIGHTS[0]][0]

    growth = benchmark(cluster_growth)

    print_header("A5: direction weight in cluster similarity (1.0 av, 120 s)")
    print(f"{'weight':>7} {'clusters':>9} {'reduction':>10} {'rmse w/ LE':>11}")
    for weight, (clusters, reduction, rmse) in sweep.items():
        print(f"{weight:>7} {clusters:>9.0f} {reduction:>10.1%} {rmse:>11.2f}")

    # Direction weighting splits clusters (opposite-direction groups part)...
    assert growth >= 0
    # ...without destroying the reduction.
    for _, reduction, _ in sweep.values():
        assert reduction > 0.35
