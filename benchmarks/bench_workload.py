"""Workload bench: the application-level cost of filtering.

Not a paper figure — the paper asserts the broker "must know the location
of mobile devices in order to use mobile devices as a part of grid
resources" but never measures the consequence.  This bench schedules
proximity-anchored jobs from each lane's broker view and reports placement
precision (chosen nodes actually among the nearest) against the traffic
saved.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.workload import workload_study

from benchmarks.conftest import print_header


@pytest.fixture(scope="module")
def points():
    # The paper's factors plus deliberately harsh ones, to locate where
    # placement quality finally degrades.
    return workload_study(
        ExperimentConfig(duration=120.0, dth_factors=(0.75, 1.25, 8.0, 30.0))
    )


def test_workload_placement(benchmark, points):
    def ideal_precision():
        return next(p.placement_precision for p in points if p.lane == "ideal")

    ceiling = benchmark(ideal_precision)

    print_header("Workload: proximity scheduling from each lane's broker view")
    print(
        f"{'lane':<12} {'reduction':>10} {'rmse':>6} {'placement':>10}"
    )
    for p in points:
        print(
            f"{p.lane:<12} {p.reduction:>10.1%} {p.mean_rmse:>6.2f} "
            f"{p.placement_precision:>10.1%}"
        )

    # The unfiltered view is the ceiling.
    assert ceiling >= 0.8
    # At the paper's DTH factors, filtering costs essentially no placement
    # quality — metre-scale staleness does not reorder nearest-k sets on a
    # 650 m campus.
    for p in points:
        if p.dth_factor is not None and p.dth_factor <= 1.25:
            assert p.placement_precision >= ceiling - 0.10, p.lane
    # Quality is monotone (within noise) in the DTH factor.
    adf_points = [p for p in points if p.dth_factor is not None]
    adf_points.sort(key=lambda p: p.dth_factor)
    assert adf_points[-1].placement_precision <= adf_points[0].placement_precision + 0.05
