"""Serving ingest bench: replay throughput and tail latency.

Not a paper figure — this guards the broker-as-a-service ingest path
(``repro.serving``) the way ``bench_simulation.py`` guards the engine.
A fixed-seed experiment records one lane's LU stream once per module;
each timed round then replays that byte-identical trace open-loop
through a fresh sharded ingest service.  ``compare.py`` gates on the
wall-clock minimum as usual, and the ``extra_info`` block additionally
records the service-level numbers (sustained msgs/s, virtual-time p99
ingest latency) so the baseline JSON documents both axes.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.serving import (
    ReplayConfig,
    ServingConfig,
    record_trace,
    replay_trace,
)

from benchmarks.conftest import print_header

#: Fixed trace source: one lane, 30 simulated seconds, paper population.
TRACE_CONFIG = ExperimentConfig(duration=30.0, seed=11, dth_factors=(1.0,))

#: Open-loop replay well above the recorded pace, sized so nothing sheds:
#: drain ceiling = shards * batch_size / flush_interval = 164k msg/s.
REPLAY = ReplayConfig(
    rate=100_000.0,
    serving=ServingConfig(
        shards=4, queue_capacity=4096, batch_size=2048, flush_interval=0.05
    ),
)


@pytest.fixture(scope="module")
def recorded_trace():
    """(meta, records) for the fixed-seed trace every round replays."""
    return record_trace(TRACE_CONFIG)


def test_serving_ingest_replay(benchmark, recorded_trace):
    """Replay the fixed trace at 100k msg/s offered load."""
    meta, records = recorded_trace

    def run():
        return replay_trace(records, REPLAY, trace_meta=meta)

    report = benchmark(run)
    wall_min = benchmark.stats.stats.min
    benchmark.extra_info["trace_records"] = report.offered
    benchmark.extra_info["msgs_per_s"] = round(report.offered / wall_min, 1)
    benchmark.extra_info["p99_latency_s"] = report.latency_p99

    print_header("Serving: open-loop replay of a fixed recorded trace")
    print(report.summary())
    print(
        f"wall-clock ingest ceiling: {report.offered / wall_min:,.0f} msgs/s"
    )

    # The service was sized to absorb the full offered load; any shed
    # here is a capacity-planning regression, not noise.
    assert report.shed == 0
    assert report.applied > 0
    assert report.latency_p99 > 0.0
