"""Serving ingest bench: replay throughput and tail latency.

Not a paper figure — this guards the broker-as-a-service ingest path
(``repro.serving``) the way ``bench_simulation.py`` guards the engine.
A fixed-seed experiment records one lane's LU stream once per module;
each timed round then replays that byte-identical trace open-loop
through a fresh sharded ingest service.  ``compare.py`` gates on the
wall-clock minimum as usual, and the ``extra_info`` block additionally
records the service-level numbers (sustained msgs/s, virtual-time p99
ingest latency) so the baseline JSON documents both axes.
"""

import itertools

import pytest

from repro.experiments import ExperimentConfig
from repro.serving import (
    DurabilityConfig,
    DurabilityManager,
    ReplayConfig,
    ServingConfig,
    read_trace,
    record_trace,
    replay_trace,
    replay_trace_full,
    run_recovery_gate,
    write_trace,
)

from benchmarks.conftest import print_header

#: Fixed trace source: one lane, 30 simulated seconds, paper population.
TRACE_CONFIG = ExperimentConfig(duration=30.0, seed=11, dth_factors=(1.0,))

#: Open-loop replay well above the recorded pace, sized so nothing sheds:
#: drain ceiling = shards * batch_size / flush_interval = 164k msg/s.
REPLAY = ReplayConfig(
    rate=100_000.0,
    serving=ServingConfig(
        shards=4, queue_capacity=4096, batch_size=2048, flush_interval=0.05
    ),
)

#: Recovery measurement uses tighter flush windows so the crash hits a
#: WAL with real flushed state behind it (the trace horizon at 100k
#: msg/s is well under REPLAY's 50 ms first flush).
GATE_REPLAY = ReplayConfig(
    rate=100_000.0,
    serving=ServingConfig(
        shards=4, queue_capacity=4096, batch_size=2048, flush_interval=0.002
    ),
)

#: Cross-test handoff: the WAL-off round's wall minimum, so the WAL-on
#: test can assert its overhead budget on the same machine and run.
_RESULTS: dict = {}


@pytest.fixture(scope="module")
def recorded_trace(tmp_path_factory):
    """(meta, records) for the fixed-seed trace every round replays.

    Recorded once, then written and loaded back — replaying a trace
    *file* is what the serving CLI does, and rows parsed from disk carry
    their canonical encoding, which the WAL logs directly instead of
    re-serializing every LU.
    """
    meta, records = record_trace(TRACE_CONFIG)
    path = write_trace(
        records, tmp_path_factory.mktemp("trace") / "lane.jsonl", meta=meta
    )
    return read_trace(path)


def test_serving_ingest_replay(benchmark, recorded_trace):
    """Replay the fixed trace at 100k msg/s offered load."""
    meta, records = recorded_trace

    def run():
        return replay_trace(records, REPLAY, trace_meta=meta)

    report = benchmark(run)
    wall_min = benchmark.stats.stats.min
    _RESULTS["off_min"] = wall_min
    benchmark.extra_info["trace_records"] = report.offered
    benchmark.extra_info["msgs_per_s"] = round(report.offered / wall_min, 1)
    benchmark.extra_info["p99_latency_s"] = report.latency_p99

    print_header("Serving: open-loop replay of a fixed recorded trace")
    print(report.summary())
    print(
        f"wall-clock ingest ceiling: {report.offered / wall_min:,.0f} msgs/s"
    )

    # The service was sized to absorb the full offered load; any shed
    # here is a capacity-planning regression, not noise.
    assert report.shed == 0
    assert report.applied > 0
    assert report.latency_p99 > 0.0


def test_serving_ingest_replay_wal(benchmark, recorded_trace, tmp_path):
    """Same replay with the write-ahead log on: the durability tax.

    Gated two ways: ``wal_msgs_per_s`` against the committed baseline
    (full local gate), and ``wal_on_vs_off_speedup`` — WAL-on throughput
    as a fraction of the WAL-off round measured moments earlier on the
    same machine — under CI's hardware-independent ``*_speedup`` gate.
    ``wal_recovery_s`` records how long a mid-replay crash takes to
    recover (snapshot load + WAL tail replay), lower-is-better under
    ``compare.py``'s ``*_recovery_s`` rule.
    """
    meta, records = recorded_trace
    rounds = itertools.count()

    def run():
        manager = DurabilityManager(
            tmp_path / f"round-{next(rounds)}",
            DurabilityConfig(snapshot_every=4096),
        )
        report, _service = replay_trace_full(
            records, REPLAY, trace_meta=meta, durability=manager
        )
        manager.close()
        return report

    report = benchmark(run)
    wall_min = benchmark.stats.stats.min
    benchmark.extra_info["wal_msgs_per_s"] = round(
        report.offered / wall_min, 1
    )
    benchmark.extra_info["wal_appended"] = report.wal_appended

    off_min = _RESULTS.get("off_min")
    if off_min is not None:
        speedup = off_min / wall_min  # < 1: the WAL costs throughput
        benchmark.extra_info["wal_on_vs_off_speedup"] = round(speedup, 4)

    # One measured crash/recovery on the same trace: the chaos lane's
    # convergence gate doubles as the recovery-time probe.
    gate_report, _golden, _crashed = run_recovery_gate(
        records,
        tmp_path / "gate",
        replay=GATE_REPLAY,
        snapshot_every=4096,
        trace_meta=meta,
    )
    benchmark.extra_info["wal_recovery_s"] = round(
        gate_report.recovery_wall_s, 6
    )

    print_header("Serving: WAL-on replay + crash recovery")
    print(report.summary())
    print(
        f"WAL-on ceiling: {report.offered / wall_min:,.0f} msgs/s "
        f"({report.wal_appended} entries logged)"
    )
    if off_min is not None:
        print(f"WAL-on vs WAL-off: {off_min / wall_min:.3f}x")
    print(gate_report.summary())

    assert report.shed == 0
    assert report.wal_appended >= report.applied
    assert gate_report.converged
    # The durability tax budget: WAL-on within 25% of WAL-off, measured
    # back-to-back on the same machine.
    if off_min is not None:
        assert wall_min <= 1.25 * off_min, (
            f"WAL overhead {wall_min / off_min:.2f}x exceeds the 1.25x "
            "budget"
        )
