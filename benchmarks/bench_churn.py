"""Churn bench: the ADF under node disconnect/reconnect cycles.

Not a paper figure — the paper lists "frequent disconnectivity" as the
mobile grid's defining constraint but evaluates a fully connected fleet.
This bench sweeps the disconnect hazard and shows the ADF degrades
gracefully: reductions hold, errors stay bounded, and each reconnection
costs exactly the one unconditional first LU.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.churn import churn_study

from benchmarks.conftest import print_header

HAZARDS = (0.0, 0.005, 0.02)


@pytest.fixture(scope="module")
def sweep():
    return {
        hazard: churn_study(
            ExperimentConfig(duration=120.0), disconnect_hazard=hazard
        )
        for hazard in HAZARDS
    }


def test_churn_sweep(benchmark, sweep):
    def stable():
        return sweep[HAZARDS[0]].reduction - sweep[HAZARDS[-1]].reduction

    reduction_drop = benchmark(stable)

    print_header("Churn: disconnect hazard sweep (ADF at 1.0 av, 120 s)")
    print(
        f"{'hazard':>7} {'reduction':>10} {'rmse':>6} "
        f"{'disconnects':>12} {'reconnect LUs':>14}"
    )
    for hazard, r in sweep.items():
        print(
            f"{hazard:>7} {r.reduction:>10.1%} {r.mean_rmse:>6.2f} "
            f"{r.disconnections:>12} {r.reconnection_transmits:>14}"
        )

    no_churn = sweep[HAZARDS[0]]
    heavy = sweep[HAZARDS[-1]]
    assert no_churn.disconnections == 0
    assert heavy.disconnections > 0
    # Churn costs a few points of reduction (reconnection LUs), never more.
    assert 0.0 <= reduction_drop < 0.10
    # Errors stay bounded through churn.
    assert heavy.mean_rmse < no_churn.mean_rmse + 3.0
    # Every reconnection transmits (first LU after forget is unconditional).
    assert heavy.reconnect_overhead <= 1.0 + 1e-9
