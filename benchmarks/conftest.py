"""Shared benchmark fixtures.

The full paper run (140 MNs x 1800 s) takes minutes in pure Python, so the
benchmarks default to a 300-second run that already exhibits every
qualitative result.  Set ``REPRO_BENCH_DURATION=1800`` for the full paper
configuration (this is what EXPERIMENTS.md records).

Set ``REPRO_BENCH_TELEMETRY=1`` to run the shared simulation with the
telemetry subsystem enabled and dump its snapshot to
``REPRO_BENCH_TELEMETRY_PATH`` (default ``bench_telemetry.json``) — useful
for inspecting where a slow benchmark run spent its events.

Each ``bench_*`` module prints the rows/series of one paper table or
figure; the pytest-benchmark timings measure the regeneration cost of the
corresponding analysis on top of the shared simulation run.
"""

import os

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.telemetry import TelemetryConfig, write_snapshot_json

__all__ = ["bench_duration", "paper_run"]


def bench_duration() -> float:
    """Simulated seconds per benchmark run (env: REPRO_BENCH_DURATION)."""
    return float(os.environ.get("REPRO_BENCH_DURATION", "300"))


@pytest.fixture(scope="session")
def paper_run():
    """One shared evaluation run (all ADF lanes + general-DF lanes)."""
    telemetry_on = os.environ.get("REPRO_BENCH_TELEMETRY", "") not in ("", "0")
    config = ExperimentConfig(
        duration=bench_duration(),
        include_general_df=True,
        telemetry=TelemetryConfig(enabled=telemetry_on),
    )
    result = run_experiment(config)
    if telemetry_on and result.telemetry is not None:
        path = os.environ.get("REPRO_BENCH_TELEMETRY_PATH", "bench_telemetry.json")
        print(f"\ntelemetry snapshot: {write_snapshot_json(result.telemetry, path)}")
    return result


def print_header(title: str) -> None:
    """Uniform banner so benchmark output reads as a report."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
