"""Shared benchmark fixtures.

The full paper run (140 MNs x 1800 s) takes minutes in pure Python, so the
benchmarks default to a 300-second run that already exhibits every
qualitative result.  Set ``REPRO_BENCH_DURATION=1800`` for the full paper
configuration (this is what EXPERIMENTS.md records).

Each ``bench_*`` module prints the rows/series of one paper table or
figure; the pytest-benchmark timings measure the regeneration cost of the
corresponding analysis on top of the shared simulation run.
"""

import os

import pytest

from repro.experiments import ExperimentConfig, run_experiment

__all__ = ["bench_duration", "paper_run"]


def bench_duration() -> float:
    """Simulated seconds per benchmark run (env: REPRO_BENCH_DURATION)."""
    return float(os.environ.get("REPRO_BENCH_DURATION", "300"))


@pytest.fixture(scope="session")
def paper_run():
    """One shared evaluation run (all ADF lanes + general-DF lanes)."""
    config = ExperimentConfig(
        duration=bench_duration(),
        include_general_df=True,
    )
    return run_experiment(config)


def print_header(title: str) -> None:
    """Uniform banner so benchmark output reads as a report."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
