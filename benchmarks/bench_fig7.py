"""Fig. 7 — RMSE of the location error over time, with vs without LE.

Paper result: the three "without LE" curves sit above the three "with LE"
curves; at DTH = 1.0 / 0.75 av the Location Estimator cuts the RMSE to
33.4 % / 47.0 % of the unestimated error.
"""

from repro.experiments import fig7_rmse_over_time

from benchmarks.conftest import print_header

#: RMSE(with LE) / RMSE(without LE) reported by the paper.
PAPER_LE_RATIO = {"adf-1": 0.3341, "adf-0.75": 0.4697}


def test_fig7_rmse_over_time(benchmark, paper_run):
    data = benchmark(fig7_rmse_over_time, paper_run)

    print_header("Fig. 7: mean RMSE (m), with vs without the Location Estimator")
    print(f"{'lane':<12} {'w/o LE':>8} {'w/ LE':>8} {'ratio':>7} {'paper':>7}")
    for name in ("adf-0.75", "adf-1", "adf-1.25"):
        without = data[name]["without_le"].mean()
        with_le = data[name]["with_le"].mean()
        ratio = with_le / without if without else 1.0
        paper = PAPER_LE_RATIO.get(name)
        paper_str = f"{paper:>7.1%}" if paper else f"{'-':>7}"
        print(f"{name:<12} {without:>8.2f} {with_le:>8.2f} {ratio:>7.1%} {paper_str}")

    # Shape: the LE curve lies below the no-LE curve at every DTH where
    # filtering is substantial, and errors grow with the DTH factor.
    for name in ("adf-1", "adf-1.25"):
        assert data[name]["with_le"].mean() < data[name]["without_le"].mean()
    without_by_dth = [
        data[f"adf-{f}"]["without_le"].mean() for f in ("0.75", "1", "1.25")
    ]
    assert without_by_dth == sorted(without_by_dth)
