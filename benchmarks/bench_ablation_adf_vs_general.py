"""Ablation A1 — ADF (per-cluster DTH) vs general DF (one global DTH).

The paper's §3.2.2 argument: one global DTH derived from the fleet-average
velocity is too small for fast nodes (no road traffic reduction) and too
large for slow nodes (long silences relative to their mobility).  This
bench quantifies both halves of that claim on identical mobility.
"""

from repro.experiments import fig6_transmission_rate_by_region

from benchmarks.conftest import print_header


def test_adf_vs_general_df(benchmark, paper_run):
    rates = benchmark(fig6_transmission_rate_by_region, paper_run)

    print_header("A1: ADF vs general DF — where the reduction comes from")
    print(f"{'policy':<12} {'total reduction':>15} {'road tx':>9} {'bldg tx':>9}")
    for factor in ("0.75", "1", "1.25"):
        for prefix in ("adf", "gdf"):
            name = f"{prefix}-{factor}"
            reduction = paper_run.reduction_vs_ideal(name)
            print(
                f"{name:<12} {reduction:>15.1%} "
                f"{rates[name]['road']:>9.1%} {rates[name]['building']:>9.1%}"
            )

    for factor in ("0.75", "1", "1.25"):
        adf, gdf = rates[f"adf-{factor}"], rates[f"gdf-{factor}"]
        # The general DF barely filters roads (fast nodes out-run the
        # fleet-average DTH)...
        assert gdf["road"] > adf["road"]
        # ...and over-filters buildings relative to the ADF.
        assert gdf["building"] < adf["building"]

    # Staleness fairness: the ADF's road error stays proportional to road
    # speeds; the general DF buys its building reduction with building
    # errors as large as its road errors (uniform absolute staleness).
    adf_err = paper_run.lanes["adf-1"].region_errors_with_le
    gdf_err = paper_run.lanes["gdf-1"].region_errors_with_le
    assert adf_err.road_to_building_ratio > gdf_err.road_to_building_ratio
