"""Ablation A3 — estimator choice for the broker's Location Estimator.

The paper picks Brown's double exponential smoothing over ARIMA because
exponential smoothing is cheap to update online, and over single smoothing
because movement has trend.  This bench compares the trackers available in
:mod:`repro.estimation` on the same filtered LU stream, plus an
ARIMA-based tracker built from the library's ARIMA model, and times one
prediction sweep for each.
"""

import numpy as np
import pytest

from repro.broker import BrokerConfig, GridBroker
from repro.estimation import (
    ArimaTracker,
    BrownTracker,
    HoltTracker,
    KalmanTracker,
    LastKnownTracker,
    SimpleSmoothingTracker,
    VelocityComponentTracker,
)
from repro.experiments import ExperimentConfig
from repro.experiments.harness import MobileGridExperiment
from repro.geometry import Vec2

from benchmarks.conftest import print_header

_DURATION = 120.0


TRACKERS = {
    "last-known": LastKnownTracker,
    "simple": SimpleSmoothingTracker,
    "brown (paper)": BrownTracker,
    "holt": HoltTracker,
    "velocity-xy": VelocityComponentTracker,
    "kalman": KalmanTracker,
    "arima(1,1,0)": ArimaTracker,
}


def _map_matched_brown():
    from repro.campus import default_campus
    from repro.estimation import MapMatchedTracker

    campus = default_campus()
    return MapMatchedTracker(BrownTracker(), campus)


@pytest.fixture(scope="module")
def per_tracker_rmse():
    """Run the experiment once per tracker; collect the mean RMSE."""
    out = {}
    trackers = dict(TRACKERS)
    trackers["brown+map-match"] = _map_matched_brown
    for label, factory in trackers.items():
        config = ExperimentConfig(duration=_DURATION, dth_factors=(1.25,))
        experiment = MobileGridExperiment(config)
        lane = experiment.lanes[1]
        lane.broker_with_le = GridBroker(
            BrokerConfig(use_location_estimator=True), tracker_factory=factory
        )
        result = experiment.run()
        out[label] = result.lanes["adf-1.25"].mean_rmse(with_le=True)
    return out


def test_estimator_comparison(benchmark, per_tracker_rmse):
    def best():
        return min(per_tracker_rmse, key=per_tracker_rmse.get)

    winner = benchmark(best)

    print_header("A3: Location Estimator choice (ADF at 1.25 av, 120 s)")
    print(f"{'tracker':<16} {'mean RMSE (m)':>14}")
    baseline = per_tracker_rmse["last-known"]
    for label, rmse in sorted(per_tracker_rmse.items(), key=lambda kv: kv[1]):
        marker = "  <- paper's choice" if label == "brown (paper)" else ""
        print(f"{label:<16} {rmse:>14.2f}{marker}")
    print(f"(no-estimation baseline: {baseline:.2f} m)")

    # The paper's estimator must beat no estimation...
    assert per_tracker_rmse["brown (paper)"] < baseline
    # ...and the trend-aware smoothers must be competitive with the best.
    assert per_tracker_rmse["brown (paper)"] <= min(per_tracker_rmse.values()) * 1.5
    assert winner != "last-known"


def test_prediction_cost(benchmark):
    """Per-update+predict cost: Brown is O(1); refit-ARIMA is not."""
    brown = BrownTracker()
    arima = ArimaTracker()
    rng = np.random.default_rng(0)
    for t in range(64):
        position = Vec2(float(t) + rng.normal(0, 0.1), 0.0)
        velocity = Vec2(1.0, 0.0)
        brown.update(float(t), position, velocity)
        arima.update(float(t), position, velocity)

    def one_brown_cycle():
        brown.update(100.0, Vec2(100, 0), Vec2(1, 0))
        return brown.predict(101.0)

    benchmark(one_brown_cycle)

    import time

    start = time.perf_counter()
    arima.predict(65.0)
    arima_cost = time.perf_counter() - start
    print(f"\nARIMA refit+predict cost: {arima_cost * 1e3:.2f} ms "
          f"(Brown's is the benchmarked microseconds above)")
