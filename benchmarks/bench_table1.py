"""Table 1 — Specification of MNs used in the experiments.

Regenerates the paper's population specification table and benchmarks the
cost of instantiating the full 140-node population.
"""

from repro.campus import default_campus
from repro.experiments import table1_specification
from repro.mobility.population import build_population, table1_spec
from repro.util.rng import RngRegistry

from benchmarks.conftest import print_header


def test_table1_rows(benchmark):
    rows = benchmark(table1_specification)
    print_header("Table 1: Specification of MN used in experiments")
    print(f"{'Region':<10} {'#R':>3} {'MP':<4} {'Type':<8} {'#MN':>4} {'VR':<10}")
    for row in rows:
        print(
            f"{row.region_kind:<10} {row.region_count:>3} "
            f"{row.mobility_pattern:<4} {row.node_type:<8} "
            f"{row.node_count:>4} {row.velocity_range:<10}"
        )
    total = sum(r.node_count for r in rows)
    print(f"{'Total':<28} {total:>4}   (paper: 140)")
    assert total == 140


def test_population_construction(benchmark):
    campus = default_campus()

    def build():
        return build_population(campus, table1_spec(), RngRegistry(42))

    nodes = benchmark(build)
    assert len(nodes) == 140
