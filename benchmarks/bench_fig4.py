"""Fig. 4 — The number of transmitted LUs per second.

Paper result: ideal averages ~135 LU/s; the ADF averages ~94 / ~63 / ~31
LU/s at DTH = 0.75 / 1.0 / 1.25 x average velocity (30.5 % / 53.4 % /
76.7 % reduction).  We reproduce the ordering and the 0.75-factor point
closely; see EXPERIMENTS.md for the full comparison.
"""

from repro.experiments import fig4_lus_per_second

from benchmarks.conftest import print_header

#: The paper's reported mean LU/s per lane (ideal ~135 of 140 nodes).
PAPER_MEAN_LUS = {"ideal": 135.0, "adf-0.75": 94.0, "adf-1": 63.0, "adf-1.25": 31.0}


def test_fig4_lus_per_second(benchmark, paper_run):
    series = benchmark(fig4_lus_per_second, paper_run)

    print_header("Fig. 4: transmitted LUs per second (mean over the run)")
    print(f"{'lane':<12} {'measured LU/s':>14} {'paper LU/s':>11}")
    for name in ("ideal", "adf-0.75", "adf-1", "adf-1.25"):
        measured = series[name].mean()
        paper = PAPER_MEAN_LUS.get(name)
        paper_str = f"{paper:>11.0f}" if paper else f"{'-':>11}"
        print(f"{name:<12} {measured:>14.1f} {paper_str}")

    # Shape assertions: strictly decreasing LU rate with growing DTH.
    means = [series[n].mean() for n in ("ideal", "adf-0.75", "adf-1", "adf-1.25")]
    assert means == sorted(means, reverse=True)

    # The early-run warm-up mirrors the paper: "the number of LUs of the
    # ADF is similar to the ideal LU at initial".
    adf = series["adf-1.25"]
    first_seconds = [v for _, v in list(adf)[:2]]
    steady = adf.window(paper_run.duration / 2, paper_run.duration).mean()
    assert first_seconds[0] > steady
