"""Scalability bench: ADF behaviour and cost vs fleet size.

Not a paper figure — the paper fixes 140 MNs; this guards the claim that
the traffic reduction and cluster structure are size-stable, and tracks
simulator throughput as the fleet grows.
"""

import pytest

from repro.experiments.scaling import scaling_sweep

from benchmarks.conftest import print_header

FACTORS = (1, 2, 4)


@pytest.fixture(scope="module")
def points():
    return scaling_sweep(FACTORS, duration=60.0)


def test_scaling_sweep(benchmark, points):
    def spread():
        reductions = [p.reduction for p in points]
        return max(reductions) - min(reductions)

    reduction_spread = benchmark(spread)

    print_header("Scaling: ADF at 1.0 av, 60 s, population multiplier sweep")
    print(
        f"{'x':>3} {'nodes':>6} {'reduction':>10} {'clusters':>9} "
        f"{'rmse':>6} {'wall (s)':>9}"
    )
    for p in points:
        print(
            f"{p.factor:>3} {p.node_count:>6} {p.reduction:>10.1%} "
            f"{p.clusters:>9.0f} {p.rmse_with_le:>6.2f} {p.wall_seconds:>9.2f}"
        )

    # The headline reduction is population-size stable (within 10 points).
    assert reduction_spread < 0.10
    # Node counts scale exactly with the multiplier.
    assert [p.node_count for p in points] == [140 * f for f in FACTORS]
    # Clusters grow sublinearly: the BSAS bound depends on speed diversity,
    # not on how many nodes share each speed band.
    assert points[-1].clusters < points[0].clusters * FACTORS[-1]
