"""Ablation A6 — cluster reconstruction interval.

The paper's ADF step (6) reconstructs clusters "repeatedly... because a
MN's mobility pattern can be changed" but gives no period.  The sweep
shows why the exact value barely matters: per-LU placement (`assign` on
every update) already tracks drift, so reconstruction mainly garbage-
collects structure.  The cost of even very lazy reconstruction is small.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment

from benchmarks.conftest import print_header

INTERVALS = (5.0, 30.0, 120.0, 100000.0)  # the last one: effectively never
_DURATION = 120.0


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for interval in INTERVALS:
        config = ExperimentConfig(
            duration=_DURATION, dth_factors=(1.0,), recluster_interval=interval
        )
        result = run_experiment(config)
        lane = result.lanes["adf-1"]
        out[interval] = (
            result.reduction_vs_ideal("adf-1"),
            lane.mean_rmse(with_le=True),
            lane.filter_summary.get("reconstructions", 0.0),
            lane.filter_summary.get("clusters", 0.0),
        )
    return out


def test_recluster_interval_sweep(benchmark, sweep):
    def spread():
        reductions = [v[0] for v in sweep.values()]
        return max(reductions) - min(reductions)

    reduction_spread = benchmark(spread)

    print_header("A6: cluster reconstruction interval (ADF at 1.0 av, 120 s)")
    print(
        f"{'interval':>9} {'reduction':>10} {'rmse':>6} "
        f"{'reconstructions':>16} {'clusters':>9}"
    )
    for interval, (reduction, rmse, recon, clusters) in sweep.items():
        label = "never" if interval > _DURATION else f"{interval:g}s"
        print(
            f"{label:>9} {reduction:>10.1%} {rmse:>6.2f} "
            f"{recon:>16.0f} {clusters:>9.0f}"
        )

    # Reconstruction frequency hardly moves the headline numbers...
    assert reduction_spread < 0.05
    # ...but it does happen when configured.
    assert sweep[5.0][2] > sweep[120.0][2]
    assert sweep[100000.0][2] == 0.0