"""Ablation A4 — smoothing-constant sweep for the Location Estimator.

Brown's method has a single constant alpha trading responsiveness against
noise rejection.  The sweep shows the estimator is robust across a wide
band — one reason the paper prefers it over parameter-hungry ARIMA.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment

from benchmarks.conftest import print_header

ALPHAS = (0.1, 0.25, 0.4, 0.6, 0.8)
_DURATION = 120.0


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for alpha in ALPHAS:
        config = ExperimentConfig(
            duration=_DURATION, dth_factors=(1.25,), smoothing_alpha=alpha
        )
        result = run_experiment(config)
        lane = result.lanes["adf-1.25"]
        out[alpha] = (
            lane.mean_rmse(with_le=True),
            lane.mean_rmse(with_le=False),
        )
    return out


def test_smoothing_alpha_sweep(benchmark, sweep):
    def best_alpha():
        return min(sweep, key=lambda a: sweep[a][0])

    winner = benchmark(best_alpha)

    print_header("A4: Brown smoothing constant sweep (ADF at 1.25 av, 120 s)")
    print(f"{'alpha':>6} {'rmse w/ LE':>11} {'rmse w/o LE':>12}")
    for alpha, (with_le, without_le) in sweep.items():
        marker = "  <- best" if alpha == winner else ""
        print(f"{alpha:>6} {with_le:>11.2f} {without_le:>12.2f}{marker}")

    # Robustness: every alpha in the band beats no estimation.
    for with_le, without_le in sweep.values():
        assert with_le < without_le
    # And the spread across alphas is modest (flat optimum).
    values = [v[0] for v in sweep.values()]
    assert max(values) / min(values) < 2.0
