"""Ablation A2 — sequential-clustering similarity bound (alpha) sweep.

Alpha controls how finely the moving population is partitioned: a tiny
alpha yields near-singleton clusters (each node filtered against its own
speed), a huge alpha collapses everyone into one cluster (degenerating the
ADF into the general DF).  The sweep shows cluster counts shrinking with
alpha while the traffic reduction stays comparatively stable.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment

from benchmarks.conftest import print_header

ALPHAS = (0.25, 0.75, 2.0, 6.0)
_DURATION = 120.0


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for alpha in ALPHAS:
        config = ExperimentConfig(
            duration=_DURATION, dth_factors=(1.0,), alpha=alpha
        )
        results[alpha] = run_experiment(config)
    return results


def test_alpha_sweep(benchmark, sweep):
    def summarise():
        rows = []
        for alpha, result in sweep.items():
            lane = result.lanes["adf-1"]
            rows.append(
                (
                    alpha,
                    lane.filter_summary.get("clusters", 0.0),
                    result.reduction_vs_ideal("adf-1"),
                    lane.mean_rmse(with_le=True),
                )
            )
        return rows

    rows = benchmark(summarise)

    print_header("A2: clustering bound alpha sweep (DTH = 1.0 av, 120 s)")
    print(f"{'alpha':>6} {'clusters':>9} {'reduction':>10} {'rmse w/ LE':>11}")
    for alpha, clusters, reduction, rmse in rows:
        print(f"{alpha:>6} {clusters:>9.0f} {reduction:>10.1%} {rmse:>11.2f}")

    # Coarser similarity bounds produce fewer clusters.
    cluster_counts = [r[1] for r in rows]
    assert cluster_counts == sorted(cluster_counts, reverse=True)
    # Every alpha still achieves a substantial reduction.
    assert all(r[2] > 0.25 for r in rows)
