"""Generality bench: the ADF under literature-standard mobility models.

Not a paper figure — this guards the reproduction against the objection
that the results are an artefact of our campus mobility generator: the
reduction and the LE's error cut must hold under Random Waypoint,
Gauss-Markov and Manhattan mobility too.
"""

import pytest

from repro.experiments.generality import generality_study

from benchmarks.conftest import print_header


@pytest.fixture(scope="module")
def results():
    return generality_study(n_nodes=40, duration=120.0)


def test_generality(benchmark, results):
    def worst_le_ratio():
        return max(r.le_ratio for r in results)

    worst = benchmark(worst_le_ratio)

    print_header("Generality: ADF at 1.0 av under classic mobility models")
    print(
        f"{'model':<18} {'reduction':>10} {'rmse w/ LE':>11} "
        f"{'rmse w/o LE':>12} {'LE ratio':>9}"
    )
    for r in results:
        print(
            f"{r.model:<18} {r.reduction:>10.1%} {r.mean_rmse_with_le:>11.2f} "
            f"{r.mean_rmse_without_le:>12.2f} {r.le_ratio:>9.1%}"
        )

    for r in results:
        # Substantial reduction under every generator...
        assert r.reduction > 0.2, r.model
        # ...with the estimator never making things worse.
        assert r.le_ratio <= 1.05, r.model
    assert worst <= 1.05
