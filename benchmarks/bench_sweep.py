"""Sweep runner — parallel speedup and determinism.

A 4-cell, 2-replication grid (duration x channel loss) over the full
140-node population, executed serially and on 2 worker processes.  The
two executions must produce bit-identical summaries — per-run seeds are
derived from (cell, replication) identity, never from scheduling — and
on a multi-core host the parallel execution must be faster.

Set ``REPRO_BENCH_SWEEP_DURATION`` (default 30 simulated seconds per
cell) to scale the work.
"""

import json
import os
import time

from repro.experiments import ExperimentConfig, SweepSpec, run_sweep

from benchmarks.conftest import print_header


def _spec() -> SweepSpec:
    duration = float(os.environ.get("REPRO_BENCH_SWEEP_DURATION", "30"))
    base = ExperimentConfig(duration=duration, dth_factors=(1.0,))
    return SweepSpec.from_axes(
        {
            "duration": (duration * 0.75, duration),
            "channel_loss": (0.0, 0.01),
        },
        base=base,
        replications=2,
    )


def test_sweep_parallel_speedup(benchmark):
    spec = _spec()

    start = time.perf_counter()
    serial = run_sweep(spec, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(spec, workers=2)
    parallel_s = time.perf_counter() - start

    # The benchmarked quantity: aggregate summaries over completed runs.
    summaries = benchmark(
        lambda: {key: cell.summaries() for key, cell in parallel.cells.items()}
    )

    print_header("Sweep: 4 cells x 2 replications, serial vs 2 workers")
    print(f"{'execution':<16} {'wall seconds':>12}")
    print(f"{'serial':<16} {serial_s:>12.2f}")
    print(f"{'2 workers':<16} {parallel_s:>12.2f}")
    print(f"speedup: {serial_s / parallel_s:.2f}x")
    for key, cell in parallel.cells.items():
        reduction = cell.summaries()["reduction(adf-1)"]
        print(f"  {key}: {reduction}")

    a = {key: cell.runs for key, cell in serial.cells.items()}
    b = {key: cell.runs for key, cell in parallel.cells.items()}
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert len(summaries) == 4

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    if cores >= 2:
        # Pool startup costs a fixed few hundred ms; beyond that the two
        # workers must beat one process on a multi-core host.
        assert parallel_s < serial_s * 1.1
