"""Fig. 5 — The number of accumulated LUs over the run.

Paper result (1800 s): ideal accumulates ~243k LUs; the ADF accumulates
~168k / ~113k / ~56k at DTH = 0.75 / 1.0 / 1.25 av.
"""

from repro.experiments import fig5_accumulated_lus

from benchmarks.conftest import print_header

#: Accumulated totals reported by the paper for the full 1800 s run.
PAPER_ACCUMULATED = {
    "ideal": 243_000,
    "adf-0.75": 168_000,
    "adf-1": 113_000,
    "adf-1.25": 56_000,
}


def test_fig5_accumulated_lus(benchmark, paper_run):
    series = benchmark(fig5_accumulated_lus, paper_run)

    scale = paper_run.duration / 1800.0
    print_header("Fig. 5: accumulated LUs (paper values scaled to run length)")
    print(f"{'lane':<12} {'measured':>10} {'paper (scaled)':>15}")
    for name in ("ideal", "adf-0.75", "adf-1", "adf-1.25"):
        _, measured = series[name].last()
        paper = PAPER_ACCUMULATED[name] * scale
        print(f"{name:<12} {int(measured):>10d} {int(paper):>15d}")

    # Accumulation is monotone and ordered by DTH factor.
    for name, s in series.items():
        values = list(s.values)
        assert values == sorted(values), f"{name} accumulation not monotone"
    totals = [series[n].last()[1] for n in ("ideal", "adf-0.75", "adf-1", "adf-1.25")]
    assert totals == sorted(totals, reverse=True)
