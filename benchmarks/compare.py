#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files (baseline vs. candidate).

Usage::

    python benchmarks/compare.py BENCH_simulation.json new.json
    python benchmarks/compare.py --fail-on-regress 1.25 baseline.json new.json

Benchmarks are matched by name.  For each pair the script prints the
baseline and candidate minima plus the ratio candidate/baseline (> 1 means
the candidate got slower).  By default the script only reports; with
``--fail-on-regress THRESHOLD`` it exits non-zero when any matched
benchmark's ratio exceeds the threshold.

Minima are compared, not means: the minimum is the least noise-polluted
statistic a shared machine produces (see docs/performance.md).

Benchmarks may also attach application-level numbers via pytest-benchmark
``extra_info`` (e.g. ``bench_serving.py`` records ``msgs_per_s`` and
``p99_latency_s``).  Numeric keys present in both files are printed with
their own ratios; with ``--fail-on-regress`` they gate too — keys ending
in ``_per_s`` or ``_speedup`` are rates (higher is better), everything
else is a cost (lower is better).  ``*_recovery_s`` keys (crash-recovery
wall times from the durability benchmarks) are pinned as costs
explicitly: a slower recovery regresses upward no matter what other
suffix conventions are added later.

``--gate-keys PATTERN`` narrows the gate to extra_info keys matching the
fnmatch pattern; timing rows and other keys then report only.  That is
how CI gates hardware-independent ratios (``--gate-keys '*_speedup'``)
while absolute wall-clock numbers, recorded on different hardware, stay
informational.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path


#: ``extra_info`` keys with these suffixes are "higher is better": a
#: *drop* is the regression.  ``_per_s`` marks throughputs, ``_speedup``
#: hardware-independent ratios (e.g. columnar vs object path).  Everything
#: else (latencies, counts) regresses upward.
RATE_SUFFIXES = ("_per_s", "_speedup")

#: Suffixes pinned as "lower is better" *before* the rate check runs.
#: ``_recovery_s`` marks crash-recovery wall times; pinning them keeps a
#: future rate suffix from ever flipping their polarity by accident.
COST_SUFFIXES = ("_recovery_s",)


def is_rate_key(key: str) -> bool:
    """Whether *key* is higher-is-better (cost suffixes take precedence)."""
    if key.endswith(COST_SUFFIXES):
        return False
    return key.endswith(RATE_SUFFIXES)


def load_stats(path: Path) -> dict[str, dict[str, float]]:
    """Map benchmark name -> stats dict from a pytest-benchmark JSON file."""
    data = json.loads(path.read_text())
    return {bench["name"]: bench["stats"] for bench in data.get("benchmarks", [])}


def load_extra_info(path: Path) -> dict[str, dict[str, float]]:
    """Map benchmark name -> numeric extra_info entries (may be empty)."""
    data = json.loads(path.read_text())
    out: dict[str, dict[str, float]] = {}
    for bench in data.get("benchmarks", []):
        numeric = {
            key: value
            for key, value in bench.get("extra_info", {}).items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        if numeric:
            out[bench["name"]] = numeric
    return out


def compare_extra_info(
    baseline: dict[str, dict[str, float]],
    candidate: dict[str, dict[str, float]],
) -> list[tuple[str, str, float, float, float]]:
    """Rows of (bench, key, base, cand, regress_ratio) for shared keys.

    ``regress_ratio`` is normalised so > 1 always means "got worse":
    cand/base for costs, base/cand for ``*_per_s`` rates.
    """
    rows = []
    for name in sorted(baseline.keys() & candidate.keys()):
        shared = sorted(baseline[name].keys() & candidate[name].keys())
        for key in shared:
            base, cand = baseline[name][key], candidate[name][key]
            if base <= 0 or cand <= 0:
                continue  # counts of zero carry no ratio
            if is_rate_key(key):
                ratio = base / cand
            else:
                ratio = cand / base
            rows.append((name, key, base, cand, ratio))
    return rows


def compare(
    baseline: dict[str, dict[str, float]],
    candidate: dict[str, dict[str, float]],
) -> list[tuple[str, float, float, float]]:
    """Rows of (name, baseline_min_s, candidate_min_s, ratio) for shared names."""
    rows = []
    for name in sorted(baseline.keys() & candidate.keys()):
        base_min = baseline[name]["min"]
        cand_min = candidate[name]["min"]
        rows.append((name, base_min, cand_min, cand_min / base_min))
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="baseline benchmark JSON")
    parser.add_argument("candidate", type=Path, help="candidate benchmark JSON")
    parser.add_argument(
        "--fail-on-regress",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 when any candidate/baseline min ratio exceeds RATIO "
        "(e.g. 1.25 tolerates 25%% slowdown; default: report only)",
    )
    parser.add_argument(
        "--gate-keys",
        type=str,
        default=None,
        metavar="PATTERN",
        help="with --fail-on-regress: gate only extra_info keys matching "
        "this fnmatch pattern (timing rows become report-only)",
    )
    args = parser.parse_args(argv)

    baseline = load_stats(args.baseline)
    candidate = load_stats(args.candidate)
    rows = compare(baseline, candidate)
    if not rows:
        print("no benchmarks in common between the two files", file=sys.stderr)
        return 2

    gate_keys = args.gate_keys
    width = max(len(name) for name, *_ in rows)
    print(f"{'benchmark':<{width}}  {'base min':>10}  {'cand min':>10}  ratio")
    worst = 0.0
    for name, base_min, cand_min, ratio in rows:
        print(
            f"{name:<{width}}  {base_min * 1000:>8.1f}ms  "
            f"{cand_min * 1000:>8.1f}ms  {ratio:5.2f}x"
        )
        if gate_keys is None:
            worst = max(worst, ratio)

    extra_rows = compare_extra_info(
        load_extra_info(args.baseline), load_extra_info(args.candidate)
    )
    if extra_rows:
        label_width = max(len(f"{name}:{key}") for name, key, *_ in extra_rows)
        print(f"\n{'extra_info':<{label_width}}  {'base':>12}  {'cand':>12}  regress")
        for name, key, base, cand, ratio in extra_rows:
            print(
                f"{name + ':' + key:<{label_width}}  {base:>12,.4g}  "
                f"{cand:>12,.4g}  {ratio:5.2f}x"
            )
            if gate_keys is None or fnmatch.fnmatch(key, gate_keys):
                worst = max(worst, ratio)

    only_base = sorted(baseline.keys() - candidate.keys())
    only_cand = sorted(candidate.keys() - baseline.keys())
    if only_base:
        print(f"only in baseline: {', '.join(only_base)}")
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand)}")

    if args.fail_on_regress is not None and worst > args.fail_on_regress:
        print(
            f"REGRESSION: worst ratio {worst:.2f}x exceeds "
            f"threshold {args.fail_on_regress:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
