#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files (baseline vs. candidate).

Usage::

    python benchmarks/compare.py BENCH_simulation.json new.json
    python benchmarks/compare.py --fail-on-regress 1.25 baseline.json new.json

Benchmarks are matched by name.  For each pair the script prints the
baseline and candidate minima plus the ratio candidate/baseline (> 1 means
the candidate got slower).  By default the script only reports; with
``--fail-on-regress THRESHOLD`` it exits non-zero when any matched
benchmark's ratio exceeds the threshold.

Minima are compared, not means: the minimum is the least noise-polluted
statistic a shared machine produces (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_stats(path: Path) -> dict[str, dict[str, float]]:
    """Map benchmark name -> stats dict from a pytest-benchmark JSON file."""
    data = json.loads(path.read_text())
    return {bench["name"]: bench["stats"] for bench in data.get("benchmarks", [])}


def compare(
    baseline: dict[str, dict[str, float]],
    candidate: dict[str, dict[str, float]],
) -> list[tuple[str, float, float, float]]:
    """Rows of (name, baseline_min_s, candidate_min_s, ratio) for shared names."""
    rows = []
    for name in sorted(baseline.keys() & candidate.keys()):
        base_min = baseline[name]["min"]
        cand_min = candidate[name]["min"]
        rows.append((name, base_min, cand_min, cand_min / base_min))
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="baseline benchmark JSON")
    parser.add_argument("candidate", type=Path, help="candidate benchmark JSON")
    parser.add_argument(
        "--fail-on-regress",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 when any candidate/baseline min ratio exceeds RATIO "
        "(e.g. 1.25 tolerates 25%% slowdown; default: report only)",
    )
    args = parser.parse_args(argv)

    baseline = load_stats(args.baseline)
    candidate = load_stats(args.candidate)
    rows = compare(baseline, candidate)
    if not rows:
        print("no benchmarks in common between the two files", file=sys.stderr)
        return 2

    width = max(len(name) for name, *_ in rows)
    print(f"{'benchmark':<{width}}  {'base min':>10}  {'cand min':>10}  ratio")
    worst = 0.0
    for name, base_min, cand_min, ratio in rows:
        print(
            f"{name:<{width}}  {base_min * 1000:>8.1f}ms  "
            f"{cand_min * 1000:>8.1f}ms  {ratio:5.2f}x"
        )
        worst = max(worst, ratio)

    only_base = sorted(baseline.keys() - candidate.keys())
    only_cand = sorted(candidate.keys() - baseline.keys())
    if only_base:
        print(f"only in baseline: {', '.join(only_base)}")
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand)}")

    if args.fail_on_regress is not None and worst > args.fail_on_regress:
        print(
            f"REGRESSION: worst ratio {worst:.2f}x exceeds "
            f"threshold {args.fail_on_regress:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
