"""Fig. 8 — RMSE by region kind, WITHOUT the Location Estimator.

Paper result: road RMSE is ~4.5x the building RMSE when the broker keeps
only the last received fix — road nodes are faster, so a filtered LU hides
more movement.
"""

from repro.experiments import fig8_rmse_by_region_without_le

from benchmarks.conftest import print_header

PAPER_ROAD_TO_BUILDING = 4.5


def test_fig8_rmse_by_region_without_le(benchmark, paper_run):
    data = benchmark(fig8_rmse_by_region_without_le, paper_run)

    print_header("Fig. 8: RMSE by region kind, without LE")
    print(f"{'lane':<12} {'road':>8} {'building':>9} {'ratio':>7}"
          f"   (paper ratio ~{PAPER_ROAD_TO_BUILDING}x)")
    for name in ("adf-0.75", "adf-1", "adf-1.25"):
        row = data[name]
        print(
            f"{name:<12} {row['road']:>8.2f} {row['building']:>9.2f} "
            f"{row['ratio']:>6.1f}x"
        )

    # Shape: for the ADF, roads dominate buildings by a multiple at every
    # DTH (the general-DF lanes in the shared run deliberately invert this
    # — see ablation A1).
    for name, row in data.items():
        if not name.startswith("adf"):
            continue
        assert row["road"] > row["building"]
        assert row["ratio"] > 2.0
