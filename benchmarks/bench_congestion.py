"""Congestion bench: the ADF's point, in queueing-delay terms.

Not a paper figure — the paper argues LU traffic "increases the system
load ... in a limited bandwidth environment" but reports only message
counts.  This bench replays each lane's LU stream through the same
GPRS-class uplink: the unfiltered stream saturates it (delay in the tens
of seconds, drops); the ADF streams fit with millisecond-scale delay.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.congestion import congestion_study

from benchmarks.conftest import print_header


@pytest.fixture(scope="module")
def points():
    return congestion_study(
        ExperimentConfig(duration=120.0), bandwidth_bps=60_000.0
    )


def test_congestion(benchmark, points):
    def ideal_vs_best_adf():
        by_lane = {p.lane: p for p in points}
        return by_lane["ideal"].mean_delay / max(
            by_lane["adf-1.25"].mean_delay, 1e-9
        )

    speedup = benchmark(ideal_vs_best_adf)

    print_header("Congestion: all LUs through one 60 kbit/s uplink (120 s)")
    print(
        f"{'lane':<10} {'offered':>8} {'util':>6} {'mean delay':>11} "
        f"{'max delay':>10} {'drops':>7}"
    )
    for p in points:
        print(
            f"{p.lane:<10} {p.offered:>8} {p.utilisation:>6.0%} "
            f"{p.mean_delay:>10.2f}s {p.max_delay:>9.2f}s {p.drop_rate:>7.1%}"
        )

    by_lane = {p.lane: p for p in points}
    ideal = by_lane["ideal"]
    # The unfiltered stream saturates the link...
    assert ideal.utilisation > 0.95
    assert ideal.mean_delay > 1.0 or ideal.drop_rate > 0.05
    # ...while every ADF lane keeps the uplink healthy.
    for name, p in by_lane.items():
        if not name.startswith("adf"):
            continue
        assert p.drop_rate < ideal.drop_rate + 1e-9, name
        assert p.mean_delay < ideal.mean_delay, name
    # And the headline: orders of magnitude of delay saved.
    assert speedup > 10.0
