"""Fig. 9 — RMSE by region kind, WITH the Location Estimator.

Paper result: the road/building ratio persists under estimation (~4.7x)
while the absolute errors drop; slow indoor nodes are nearly exactly
tracked.
"""

from repro.experiments import (
    fig8_rmse_by_region_without_le,
    fig9_rmse_by_region_with_le,
)

from benchmarks.conftest import print_header

PAPER_ROAD_TO_BUILDING = 4.7


def test_fig9_rmse_by_region_with_le(benchmark, paper_run):
    data = benchmark(fig9_rmse_by_region_with_le, paper_run)
    without = fig8_rmse_by_region_without_le(paper_run)

    print_header("Fig. 9: RMSE by region kind, with LE")
    print(f"{'lane':<12} {'road':>8} {'building':>9} {'ratio':>7}"
          f"   (paper ratio ~{PAPER_ROAD_TO_BUILDING}x)")
    for name in ("adf-0.75", "adf-1", "adf-1.25"):
        row = data[name]
        print(
            f"{name:<12} {row['road']:>8.2f} {row['building']:>9.2f} "
            f"{row['ratio']:>6.1f}x"
        )

    for name, row in data.items():
        if not name.startswith("adf"):
            continue
        # Roads still dominate buildings...
        assert row["road"] > row["building"]
        # ...and the LE lowers (or at least does not worsen) both kinds at
        # the DTHs with substantial filtering.
        if name in ("adf-1", "adf-1.25"):
            assert row["road"] <= without[name]["road"] * 1.05
            assert row["building"] <= without[name]["building"] * 1.05
