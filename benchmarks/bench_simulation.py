"""Engine throughput benchmarks: how fast the substrate itself runs.

Not a paper figure — these guard against performance regressions in the
simulation kernel, the ADF pipeline and the HLA federation.
"""

import math

import pytest

from repro.core import AdaptiveDistanceFilter, AdfConfig
from repro.experiments import ExperimentConfig
from repro.experiments.federation import run_federated_experiment
from repro.experiments.harness import MobileGridExperiment
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.simkernel import Simulator


def test_event_engine_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule_in(1.0, tick)

        sim.schedule_in(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_adf_pipeline_throughput(benchmark):
    """Process 1k LUs through the full classify/cluster/filter pipeline."""
    updates = [
        LocationUpdate(
            sender=f"n{i % 20}",
            timestamp=float(i),
            node_id=f"n{i % 20}",
            position=Vec2(float(i), 0.0),
            velocity=Vec2(2.0, 0.0),
            region_id="R1",
        )
        for i in range(1000)
    ]

    def run():
        adf = AdaptiveDistanceFilter(AdfConfig())
        for update in updates:
            adf.process(update)
        return adf.stats.received

    assert benchmark(run) == 1000


@pytest.mark.parametrize("seconds", [30.0])
def test_direct_harness_runtime(benchmark, seconds):
    """Wall-clock cost of one simulated minute of the full experiment."""

    def run():
        config = ExperimentConfig(duration=seconds, dth_factors=(1.0,))
        return MobileGridExperiment(config).run().node_count

    assert benchmark.pedantic(run, rounds=2, iterations=1) == 140


def test_federated_runtime(benchmark):
    """Wall-clock cost of the HLA-federated variant."""

    def run():
        return run_federated_experiment(
            ExperimentConfig(duration=30.0), dth_factor=1.0
        ).reflections

    assert benchmark.pedantic(run, rounds=2, iterations=1) == 140 * 30


def test_columnar_step_throughput_100k(benchmark):
    """100k-node stepping workload: columnar arrays vs the object path.

    One "step" is the per-interval hot path both engines share: advance
    mobility, derive speed/heading, resolve regions, feed the classifier
    windows and gate the distance filter.  (Cluster placement has its own
    ratio gate, test_cluster_placement_speedup_100k.)  The object path is timed
    inside the test over the same fleet; the speedup lands in extra_info
    where `compare.py --gate-keys '*_speedup'` guards it — a
    hardware-independent ratio, unlike the absolute nodes/s.
    """
    import time as _time

    import numpy as np

    from repro.campus import default_campus
    from repro.core.classifier import ClassifierConfig, MobilityClassifier
    from repro.core.columnar import ColumnarClassifier, ColumnarMobilitySource
    from repro.core.columnar.engine import RegionResolver, df_decide
    from repro.core.columnar.kernels import FAST_KERNEL
    from repro.core.distance_filter import DistanceFilter, FilterDecision
    from repro.mobility.population import build_population, table1_spec
    from repro.util.rng import RngRegistry

    campus = default_campus()
    spec = table1_spec()
    base = spec.total_for(len(campus.roads()), len(campus.buildings()))
    factor = max(1, round(100_000 / base))
    source = ColumnarMobilitySource(campus, spec.scaled(factor), seed=42)
    state = source.build_state()
    n = len(state)
    assert n >= 99_000
    resolver = RegionResolver(campus)
    home_codes = np.asarray(
        [resolver.code_of[h] for h in source.home_regions()], dtype=np.int64
    )
    kernel = FAST_KERNEL
    classifier = ColumnarClassifier(ClassifierConfig(), n, kernel)
    fix_x = np.zeros(n)
    fix_y = np.zeros(n)
    has_fix = np.zeros(n, dtype=bool)
    dth = np.full(n, 2.0)

    def columnar_step():
        source.advance(state, 1.0)
        x, y, vx, vy = state.x, state.y, state.vx, state.vy
        speeds = kernel.hypot(vx, vy)
        directions = np.where(
            (vx == 0.0) & (vy == 0.0), 0.0, kernel.atan2(vy, vx)
        )
        resolver.resolve(x, y, home_codes)
        classifier.observe(speeds, directions)
        transmit = df_decide(x, y, fix_x, fix_y, has_fix, dth, kernel)
        idx = np.flatnonzero(transmit)
        fix_x[idx] = x[idx]
        fix_y[idx] = y[idx]
        has_fix[idx] = True
        return int(idx.size)

    benchmark.pedantic(columnar_step, rounds=5, iterations=1, warmup_rounds=1)
    if benchmark.stats is not None:
        columnar_s = benchmark.stats.stats.min
    else:
        # --benchmark-disable (the plain test suite): time one step inline.
        start = _time.perf_counter()
        columnar_step()
        columnar_s = _time.perf_counter() - start

    # The object path over the same fleet size, one step, timed in-line.
    nodes = build_population(campus, spec.scaled(factor), RngRegistry(42))
    obj_classifier = MobilityClassifier(ClassifierConfig())
    obj_filter = DistanceFilter()
    transmitted = 0
    start = _time.perf_counter()
    for node in nodes:
        sample = node.advance(1.0)
        position, velocity = sample.position, sample.velocity
        speed = math.hypot(velocity.x, velocity.y)
        direction = (
            0.0
            if velocity.x == 0.0 and velocity.y == 0.0
            else math.atan2(velocity.y, velocity.x)
        )
        campus.region_at(position)
        obj_classifier.observe(node.node_id, speed, direction)
        decision = obj_filter.decide(node.node_id, position, 1.0, 2.0)
        if decision is FilterDecision.TRANSMIT:
            transmitted += 1
    object_s = _time.perf_counter() - start
    assert transmitted > 0

    speedup = object_s / columnar_s
    benchmark.extra_info["nodes"] = n
    benchmark.extra_info["columnar_nodes_per_s"] = n / columnar_s
    benchmark.extra_info["object_nodes_per_s"] = len(nodes) / object_s
    benchmark.extra_info["columnar_vs_object_speedup"] = speedup
    assert speedup >= 5.0


def test_cluster_placement_speedup_100k(benchmark):
    """100k-node BSAS placement: columnar struct-of-arrays vs objects.

    The workload is the real thing: a 100k fleet advanced to classifier
    steady state, whose per-step (stop mask, window mean speed/heading)
    triples drive full placement sweeps.  The vectorized side is
    `ColumnarClusterer.place_all` in batched mode — the epoch-chunked
    path the 1M population rung runs on; the exact sequential mode is
    timed alongside it.  The object side is the pre-columnar engine loop
    over `SequentialClusterer`, faithfully: string node ids, the
    full-width `mean_directions()` readback per sweep, a checked
    `MotionFeature` per node, the `cluster_of` pre-lookup this PR
    removed, and per-node `average_speed` writes into a numpy row.  Both
    ratios land in extra_info where `compare.py --gate-keys '*_speedup'`
    guards them.
    """
    import time as _time

    import numpy as np

    from repro.campus import default_campus
    from repro.core.classifier import ClassifierConfig
    from repro.core.clustering import MotionFeature, SequentialClusterer
    from repro.core.columnar import ColumnarClassifier, ColumnarMobilitySource
    from repro.core.columnar.clustering import ColumnarClusterer
    from repro.core.columnar.kernels import FAST_KERNEL
    from repro.core.columnar.state import PATTERN_CODES
    from repro.mobility.population import table1_spec
    from repro.mobility.states import MobilityState

    campus = default_campus()
    spec = table1_spec()
    base = spec.total_for(len(campus.roads()), len(campus.buildings()))
    factor = max(1, round(100_000 / base))
    source = ColumnarMobilitySource(campus, spec.scaled(factor), seed=42)
    state = source.build_state()
    n = len(state)
    assert n >= 99_000
    node_ids = list(state.node_ids)
    kernel = FAST_KERNEL
    classifier = ColumnarClassifier(ClassifierConfig(), n, kernel)
    stop_code = PATTERN_CODES[MobilityState.STOP]

    # Advance to classifier steady state; keep the last sweeps' inputs.
    workloads = []
    for _ in range(6):
        source.advance(state, 1.0)
        vx, vy = state.vx, state.vy
        speeds = kernel.hypot(vx, vy)
        directions = np.where(
            (vx == 0.0) & (vy == 0.0), 0.0, kernel.atan2(vy, vx)
        )
        labels = classifier.observe(speeds, directions)
        workloads.append(
            (
                labels == stop_code,
                classifier.mean_speed.copy(),
                classifier.mean_directions().copy(),
            )
        )
    workloads = workloads[-3:]

    def time_columnar(mode):
        col = ColumnarClusterer(0.75, capacity=n, max_clusters=64, mode=mode)
        avg = np.zeros(n)
        for stop, speeds, _ in workloads:  # warm to cluster steady state
            col.place_all(stop, speeds, None, avg)
        assert col.cluster_count() > 0
        best = math.inf
        for r in range(3):
            stop, speeds, _ = workloads[r % len(workloads)]
            start = _time.perf_counter()
            col.place_all(stop, speeds, None, avg)
            best = min(best, _time.perf_counter() - start)
        return best

    exact_s = time_columnar("exact")

    batched = ColumnarClusterer(0.75, capacity=n, max_clusters=64, mode="batched")
    avg = np.zeros(n)
    for stop, speeds, _ in workloads:
        batched.place_all(stop, speeds, None, avg)
    assert batched.cluster_count() > 0
    cursor = [0]

    def placement_sweep():
        stop, speeds, _ = workloads[cursor[0] % len(workloads)]
        cursor[0] += 1
        return batched.place_all(stop, speeds, None, avg)

    benchmark.pedantic(placement_sweep, rounds=5, iterations=1, warmup_rounds=1)
    if benchmark.stats is not None:
        batched_s = benchmark.stats.stats.min
    else:
        # --benchmark-disable (the plain test suite): time sweeps inline.
        batched_s = math.inf
        for _ in range(3):
            start = _time.perf_counter()
            placement_sweep()
            batched_s = min(batched_s, _time.perf_counter() - start)

    # The object loop this PR replaced, over the same workloads.
    seq = SequentialClusterer(0.75, max_clusters=64)
    avg_o = np.zeros(n)

    def object_sweep(stop_mask, mean_speed, mean_dirs):
        means = mean_speed.tolist()
        dirs = mean_dirs.tolist()
        stop_list = stop_mask.tolist()
        moves = 0
        for i, nid in enumerate(node_ids):
            if stop_list[i]:
                seq.unassign(nid)
                avg_o[i] = 0.0
                continue
            feature = MotionFeature(means[i], dirs[i])
            before = seq.cluster_of(nid)  # the pre-lookup this PR removed
            cluster, _ = seq.assign(nid, feature)
            if before is not None and before.cluster_id != cluster.cluster_id:
                moves += 1
            avg_o[i] = cluster.average_speed
        return moves

    for workload in workloads:
        object_sweep(*workload)
    object_s = math.inf
    for workload in workloads[:2]:
        start = _time.perf_counter()
        object_sweep(*workload)
        object_s = min(object_s, _time.perf_counter() - start)

    speedup = object_s / batched_s
    benchmark.extra_info["nodes"] = n
    benchmark.extra_info["batched_placements_per_s"] = n / batched_s
    benchmark.extra_info["exact_placements_per_s"] = n / exact_s
    benchmark.extra_info["object_placements_per_s"] = n / object_s
    benchmark.extra_info["cluster_placement_speedup"] = speedup
    benchmark.extra_info["exact_placement_speedup"] = object_s / exact_s
    assert speedup >= 5.0
    assert object_s / exact_s >= 2.0  # exact mode's own sanity floor
