"""Engine throughput benchmarks: how fast the substrate itself runs.

Not a paper figure — these guard against performance regressions in the
simulation kernel, the ADF pipeline and the HLA federation.
"""

import pytest

from repro.core import AdaptiveDistanceFilter, AdfConfig
from repro.experiments import ExperimentConfig
from repro.experiments.federation import run_federated_experiment
from repro.experiments.harness import MobileGridExperiment
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.simkernel import Simulator


def test_event_engine_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule_in(1.0, tick)

        sim.schedule_in(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_adf_pipeline_throughput(benchmark):
    """Process 1k LUs through the full classify/cluster/filter pipeline."""
    updates = [
        LocationUpdate(
            sender=f"n{i % 20}",
            timestamp=float(i),
            node_id=f"n{i % 20}",
            position=Vec2(float(i), 0.0),
            velocity=Vec2(2.0, 0.0),
            region_id="R1",
        )
        for i in range(1000)
    ]

    def run():
        adf = AdaptiveDistanceFilter(AdfConfig())
        for update in updates:
            adf.process(update)
        return adf.stats.received

    assert benchmark(run) == 1000


@pytest.mark.parametrize("seconds", [30.0])
def test_direct_harness_runtime(benchmark, seconds):
    """Wall-clock cost of one simulated minute of the full experiment."""

    def run():
        config = ExperimentConfig(duration=seconds, dth_factors=(1.0,))
        return MobileGridExperiment(config).run().node_count

    assert benchmark.pedantic(run, rounds=2, iterations=1) == 140


def test_federated_runtime(benchmark):
    """Wall-clock cost of the HLA-federated variant."""

    def run():
        return run_federated_experiment(
            ExperimentConfig(duration=30.0), dth_factor=1.0
        ).reflections

    assert benchmark.pedantic(run, rounds=2, iterations=1) == 140 * 30
