"""Staging bench: what the saved bandwidth buys the grid's actual work.

Not a paper figure — the closing of the loop.  Location updates and task
data share each region's constrained uplink; replaying both through one
120 kbit/s link shows a 20 x 30 kB staging job finishing ~3x faster under
the ADF than under unfiltered reporting, with LU delay an order of
magnitude lower at the same time.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.staging import staging_study

from benchmarks.conftest import print_header


@pytest.fixture(scope="module")
def points():
    return staging_study(ExperimentConfig(duration=240.0))


def test_staging(benchmark, points):
    by_lane = {p.lane: p for p in points}

    def speedup():
        return (
            (by_lane["ideal"].staging_completed_at - 10.0)
            / (by_lane["adf-1.25"].staging_completed_at - 10.0)
        )

    factor = benchmark(speedup)

    print_header(
        "Staging: 20 x 30 kB task inputs + LU stream on one 120 kbit/s uplink"
    )
    print(f"{'lane':<10} {'staging time':>13} {'mean LU delay':>14}")
    for p in points:
        staging = (
            f"{p.staging_completed_at - 10.0:.1f}s"
            if p.staging_finished
            else "never"
        )
        print(f"{p.lane:<10} {staging:>13} {p.mean_lu_delay:>13.2f}s")

    # Every lane eventually finishes the job...
    for p in points:
        assert p.staging_finished, p.lane
    # ...but filtering translates directly into workload throughput.
    assert factor > 1.5
    # And the broker's view stays fresher while the job runs.
    assert (
        by_lane["adf-1.25"].mean_lu_delay < by_lane["ideal"].mean_lu_delay / 2
    )