"""Fig. 6 — Transmission rate of LUs by region (road vs building).

Paper result: at DTH = 0.75 / 1.0 / 1.25 av the ADF transmits 90.4 % /
57.8 % / 24.0 % of the ideal LUs on roads, and 68.5 % / 47.3 % / 25.6 %
in buildings — small DTHs filter buildings much harder than roads.
"""

from repro.experiments import fig6_transmission_rate_by_region

from benchmarks.conftest import print_header

PAPER_RATES = {
    "adf-0.75": {"road": 0.9044, "building": 0.6854},
    "adf-1": {"road": 0.5775, "building": 0.4727},
    "adf-1.25": {"road": 0.2398, "building": 0.2556},
}


def test_fig6_transmission_rate_by_region(benchmark, paper_run):
    rates = benchmark(fig6_transmission_rate_by_region, paper_run)

    print_header("Fig. 6: transmission rate vs ideal, by region kind")
    print(f"{'lane':<12} {'road':>8} {'paper':>8} | {'building':>9} {'paper':>8}")
    for name in ("adf-0.75", "adf-1", "adf-1.25"):
        measured = rates[name]
        paper = PAPER_RATES[name]
        print(
            f"{name:<12} {measured['road']:>8.1%} {paper['road']:>8.1%} | "
            f"{measured['building']:>9.1%} {paper['building']:>8.1%}"
        )

    # Shape: transmission rates fall as DTH grows, for both kinds...
    for kind in ("road", "building"):
        ordered = [rates[f"adf-{f}"][kind] for f in ("0.75", "1", "1.25")]
        assert ordered == sorted(ordered, reverse=True)
    # ...and buildings are filtered harder than roads at small DTHs
    # (the paper's headline observation for this figure).
    assert rates["adf-0.75"]["building"] < rates["adf-0.75"]["road"]
    assert rates["adf-1"]["building"] < rates["adf-1"]["road"]
