"""DTH sweep and ADF-vs-general-DF comparison (the paper's §3.2.2 claim).

The paper's complaint about the general DF (one global DTH from the fleet
average velocity) is that "the DTH size can be large for some MNs and vice
versa": a threshold sized for the ~2 m/s fleet average is *smaller* than a
vehicle's per-second displacement — so fast road nodes transmit every
interval and see no traffic reduction at all — while being *larger* than a
building walker's displacement, silencing slow nodes for long stretches
relative to their own mobility.  The ADF's per-cluster DTH scales the
threshold to each group's speed instead.

This script sweeps the DTH factor for both policies on identical mobility
and prints, per factor: total reduction, the road/building split of the
transmission rate, and the location error *normalised by node speed* (how
stale a node's position is, measured in seconds of its own movement).

Usage::

    python examples/traffic_sweep.py [duration_seconds]
"""

import sys

from repro import ExperimentConfig, run_experiment


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 240.0
    factors = (0.75, 1.0, 1.25)
    config = ExperimentConfig(
        duration=duration,
        dth_factors=factors,
        include_general_df=True,
    )
    print(
        f"Sweeping DTH factors {factors} over {duration:g}s "
        f"(ADF and general DF lanes share identical mobility)...\n"
    )
    result = run_experiment(config)

    header = (
        f"{'policy':<10} {'reduction':>9} | {'road tx':>8} {'bldg tx':>8} | "
        f"{'rmse':>6} {'road rmse':>9} {'bldg rmse':>9}"
    )
    print(header)
    print("-" * len(header))
    for factor in factors:
        for prefix in ("adf", "gdf"):
            name = f"{prefix}-{factor:g}"
            lane = result.lanes[name]
            rates = result.transmission_rate_by_kind(name)
            errors = lane.region_errors_with_le
            print(
                f"{name:<10} {result.reduction_vs_ideal(name):>9.1%} | "
                f"{rates['road']:>8.1%} {rates['building']:>8.1%} | "
                f"{lane.mean_rmse(with_le=True):>6.2f} "
                f"{errors.road_rmse:>9.2f} {errors.building_rmse:>9.2f}"
            )
        print("-" * len(header))

    print(
        "\nReading: the general DF gets its reduction almost entirely from "
        "the buildings — its global threshold exceeds what slow indoor "
        "nodes move per interval — while road traffic passes nearly "
        "unfiltered (the paper: an unsuitable DTH 'will fail to reduce "
        "communication traffic effectively').  The ADF spreads the "
        "reduction across both kinds because each cluster's threshold "
        "tracks its members' velocity, keeping every node's staleness "
        "proportional to its own mobility rather than to the fleet average."
    )


if __name__ == "__main__":
    main()
