"""A tour of the telemetry subsystem, standalone and on a full run.

Part 1 uses the instruments directly — registry, tracer, event log — the
way an instrumented component does.  Part 2 runs the real experiment with
telemetry enabled and mines the snapshot: which layer executed what, how
the distance filter's suppression splits across clusters, and how queue
depths evolved over sim-time.

Usage::

    python examples/telemetry_tour.py [duration-seconds]
"""

import sys

from repro import ExperimentConfig
from repro.experiments.harness import MobileGridExperiment
from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    Severity,
    TelemetryConfig,
    Tracer,
)


def part1_instruments() -> None:
    print("=== Part 1: instruments, standalone ===\n")
    registry = MetricsRegistry()

    sent = registry.counter("demo.sent", link="uplink-a")
    depth = registry.gauge("demo.depth", link="uplink-a")
    latency = registry.histogram("demo.latency")
    for i in range(1, 101):
        sent.inc()
        depth.set(i % 7)
        latency.observe(0.001 * i)
    print(f"{sent.full_name} = {sent.value:.0f}")
    print(f"{depth.full_name} = {depth.value:.0f}")
    print(
        f"{latency.full_name}: n={latency.count} "
        f"p50={latency.quantile(0.5) * 1e3:.1f}ms "
        f"p99={latency.quantile(0.99) * 1e3:.1f}ms"
    )

    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            sum(range(10_000))
    for name, stats in tracer.stats().items():
        print(f"span {name}: n={stats.count} wall={stats.wall_total * 1e6:.0f}us")

    log = EventLog(capacity=4)
    for i in range(6):  # capacity 4: the first two records are evicted
        log.info(f"step {i}", time=float(i), source="demo")
    log.warning("queue saturated", time=6.0, source="demo", depth=256)
    print(
        f"events: logged={log.total_logged} dropped={log.dropped} "
        f"retained={[r.message for r in log.records()]}"
    )


def part2_full_run(duration: float) -> None:
    print("\n=== Part 2: an instrumented experiment run ===\n")
    config = ExperimentConfig(
        duration=duration,
        dth_factors=(1.0,),
        telemetry=TelemetryConfig(enabled=True, sample_interval=10.0),
    )
    experiment = MobileGridExperiment(config)
    experiment.run()
    snapshot = experiment.telemetry.snapshot()

    metrics = snapshot["metrics"]
    by_layer: dict[str, int] = {}
    for name in metrics:
        by_layer[name.split(".", 1)[0]] = by_layer.get(name.split(".", 1)[0], 0) + 1
    print("metrics per layer:", dict(sorted(by_layer.items())))

    suppressions = {
        name: data["value"]
        for name, data in metrics.items()
        if name.startswith("adf.suppressions_by_cluster")
    }
    top = sorted(suppressions.items(), key=lambda kv: kv[1], reverse=True)[:3]
    print("\nbusiest clusters by suppressed LUs:")
    for name, value in top:
        print(f"  {name} = {value:.0f}")

    samples = snapshot["samples"]
    received = samples["broker.lu_received{broker=adf-1/le-on}"]
    print("\nbroker.lu_received{broker=adf-1/le-on} every 10 sim-seconds:")
    print("  times :", [f"{t:.0f}" for t in received["times"]])
    print("  values:", [f"{v:.0f}" for v in received["values"]])

    print("\nfull summary table:\n")
    print(experiment.telemetry.summary())


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    part1_instruments()
    part2_full_run(duration)


if __name__ == "__main__":
    main()
