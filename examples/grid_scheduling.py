"""Why the broker needs locations at all: proximity-aware grid scheduling.

The mobile grid's purpose is harvesting MN compute.  This script runs the
campus population, lets the broker track (filtered + estimated) locations,
registers every MN's device capability, and schedules a bag-of-tasks job to
the nodes believed nearest the chemistry building.  It then measures how
often the broker's belief picked a node that was *actually* among the
nearest — i.e. how location error propagates into scheduling quality.

Usage::

    python examples/grid_scheduling.py
"""

from repro import ExperimentConfig
from repro.broker import GridScheduler, Job, ResourceRegistry, SchedulingPolicy
from repro.experiments.harness import MobileGridExperiment
from repro.geometry import Vec2


def main() -> None:
    config = ExperimentConfig(duration=120.0, dth_factors=(1.25,))
    experiment = MobileGridExperiment(config)
    print(f"Running {len(experiment.nodes)} MNs for {config.duration:g}s ...")
    experiment.run()

    lane = experiment.lanes[1]  # the adf-1.25 lane
    broker = lane.broker_with_le
    registry = ResourceRegistry()
    for node in experiment.nodes:
        registry.register(node.node_id, node.device)

    anchor = experiment.campus.region("B3").bounds.center
    now = config.duration
    scheduler = GridScheduler(broker, registry, policy=SchedulingPolicy.PROXIMITY)

    job = Job.uniform(n_tasks=20, mega_instructions=5000.0, submitted_at=now)
    assigned = scheduler.schedule(job, now, anchor=anchor)
    print(f"\nAssigned {assigned} tasks near B3 (chemistry building).")

    # Score: of the chosen nodes, how many are truly among the 20 closest?
    truly_nearest = {
        n.node_id
        for n in sorted(
            experiment.nodes, key=lambda n: n.position.distance_to(anchor)
        )[:20]
    }
    chosen = {t.assigned_to for t in job.assigned_tasks()}
    overlap = len(chosen & truly_nearest)
    print(
        f"{overlap}/{len(chosen)} chosen nodes are genuinely among the 20 "
        f"closest — the residual is the cost of filtered/estimated locations."
    )

    # Drive the job to completion.
    makespan = scheduler.run_job(job, start=now, anchor=anchor)
    print(f"Job completed; makespan {makespan:.0f} s "
          f"({scheduler.tasks_completed} tasks).")

    sample = experiment.nodes[0]
    believed = broker.believed_position(sample.node_id, now)
    assert believed is not None
    print(
        f"\nExample belief: {sample.node_id} is at "
        f"({sample.position.x:.0f}, {sample.position.y:.0f}), broker believes "
        f"({believed.x:.0f}, {believed.y:.0f}) — error "
        f"{sample.position.distance_to(believed):.1f} m."
    )


if __name__ == "__main__":
    main()
