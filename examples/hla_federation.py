"""The evaluation as a three-federate HLA federation (paper §3.4).

Runs the MN / ADF / grid-broker decomposition through the simplified RTI:
attribute reflections carry the MN kinematics, LU interactions carry the
filtered updates, and conservative time management (lookahead = one
reporting interval) keeps the federates in lock-step — the broker sees each
LU exactly one interval after the fix was taken.

Usage::

    python examples/hla_federation.py [duration_seconds]
"""

import sys

from repro.experiments.config import ExperimentConfig
from repro.experiments.federation import run_federated_experiment


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    config = ExperimentConfig(duration=duration)
    print(f"Running the federated experiment for {duration:g}s ...")
    result = run_federated_experiment(config, dth_factor=1.0)

    print(f"\nAttribute reflections seen by the ADF federate: {result.reflections}")
    print(f"LU interactions forwarded by the ADF:            {result.lus_forwarded}")
    print(f"LU interactions delivered to the broker:         "
          f"{result.lus_received_by_broker}")
    print(f"Traffic reduction vs ideal:                      "
          f"{result.reduction_vs_ideal:.1%}")
    print(f"Mean broker-side RMSE:                           "
          f"{result.rmse_series.mean():.2f} m")
    in_flight = result.lus_forwarded - result.lus_received_by_broker
    print(
        f"\n{in_flight} LUs are still in flight at the end of the run — the "
        f"one-interval lookahead means the broker always trails the ADF by "
        f"one granted step, exactly as HLA's conservative TSO delivery "
        f"prescribes."
    )


if __name__ == "__main__":
    main()
