"""Serving walkthrough: record a trace, then find the ingest knee.

The broker-as-a-service path (docs/serving.md) decouples workload from
service: record the LU stream one experiment lane actually transmitted,
then replay it open-loop at increasing rates against a small ingest
service and watch where latency gives way to shedding.

Usage::

    python examples/serving_replay.py
"""

from repro import ExperimentConfig
from repro.serving import ReplayConfig, ServingConfig, record_trace, replay_trace


def main() -> None:
    config = ExperimentConfig(duration=60.0, seed=7, dth_factors=(1.0,))
    meta, records = record_trace(config)
    print(
        f"recorded {len(records)} LUs from lane {meta['lane']} "
        f"({meta['node_count']} nodes, {meta['duration']:.0f} s)\n"
    )

    # A deliberately small service: 2 shards x 256 msgs per 50 ms flush
    # caps the drain rate at ~10k msg/s.
    serving = ServingConfig(
        shards=2, queue_capacity=512, batch_size=256, flush_interval=0.05
    )
    print(f"service drain ceiling: {serving.drain_rate:,.0f} msg/s\n")

    print(f"{'rate':>10} {'p50':>8} {'p99':>8} {'shed':>7}")
    for rate in (2_000.0, 8_000.0, 12_000.0, 20_000.0):
        report = replay_trace(
            records,
            ReplayConfig(rate=rate, serving=serving),
            trace_meta=meta,
        )
        print(
            f"{rate:>10,.0f} {report.latency_p50 * 1000:>6.1f}ms "
            f"{report.latency_p99 * 1000:>6.1f}ms {report.shed_rate:>7.1%}"
        )

    print(
        "\nBelow the drain ceiling the p99 sits near the flush interval; "
        "beyond it the bounded queues shed instead of buffering without "
        "bound, so the knee appears in the shed column, not as a melted "
        "tail latency."
    )


if __name__ == "__main__":
    main()
