"""Deeper analysis: replication statistics, classifier quality, energy.

Goes beyond the paper's single-run numbers:

1. replicates the headline experiment across seeds and reports the
   traffic reduction and RMSE with 95 % confidence intervals;
2. scores the Fig. 2 mobility classifier per class (confusion matrix);
3. converts the saved LUs into battery watt-hours per device class — the
   "low battery capacity" motivation, made measurable;
4. renders the Fig. 4 curves as an ASCII chart.

Usage::

    python examples/analysis_report.py [duration_seconds]
"""

import sys

from repro.analysis import (
    energy_report,
    evaluate_classifier,
    replicate,
    summarize_metric,
)
from repro.experiments import ExperimentConfig, fig4_lus_per_second
from repro.experiments.harness import MobileGridExperiment
from repro.viz import line_chart


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 90.0
    config = ExperimentConfig(duration=duration, dth_factors=(1.0,))

    print(f"1) Replication across seeds (3 x {duration:g}s) ...")
    results = replicate(config, seeds=[1, 2, 3])
    for metric, extractor in (
        ("LU reduction (adf-1)", lambda r: r.reduction_vs_ideal("adf-1")),
        ("mean RMSE w/ LE (m)", lambda r: r.lanes["adf-1"].mean_rmse(with_le=True)),
        ("classifier accuracy", lambda r: r.classification_accuracy),
    ):
        print(f"   {summarize_metric(results, extractor, metric=metric)}")

    print("\n2) Mobility classifier confusion matrix:")
    matrix = evaluate_classifier(config, duration=min(duration, 120.0))
    for line in matrix.render().splitlines():
        print(f"   {line}")

    print("\n3) Transmission energy (one run):")
    experiment = MobileGridExperiment(config)
    result = experiment.run()
    report = energy_report(result, experiment.nodes)
    for line in report.render().splitlines():
        print(f"   {line}")

    print("\n4) Fig. 4 as an ASCII chart:")
    print(line_chart(fig4_lus_per_second(result), height=10))


if __name__ == "__main__":
    main()
