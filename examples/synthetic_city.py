"""Beyond the paper's campus: the ADF on a generated city.

Builds a parameterised grid city (blocks of roads with buildings), renders
it, populates it Table-1 style, and runs the ADF — then contrasts the
result with fleets driven by the literature's classic mobility models
(Random Waypoint, Gauss-Markov, Manhattan).  If the paper's numbers only
held on its one campus, this is where it would show.

Usage::

    python examples/synthetic_city.py
"""

import numpy as np

from repro.campus import generate_grid_campus
from repro.experiments import ExperimentConfig
from repro.experiments.generality import generality_study
from repro.experiments.harness import MobileGridExperiment
from repro.mobility.population import PopulationSpec
from repro.viz import render_campus


def main() -> None:
    city = generate_grid_campus(
        blocks_x=4, blocks_y=3, block_size=140.0,
        building_probability=0.8, rng=np.random.default_rng(11),
    )
    n_roads = len(city.roads())
    n_buildings = len(city.buildings())
    print(f"Generated a city with {n_roads} roads and {n_buildings} buildings:\n")
    print(render_campus(city, width=72, height=24))

    spec = PopulationSpec(
        road_humans_per_road=2,
        road_vehicles_per_road=2,
        building_stop=2,
        building_random=2,
        building_linear=2,
    )
    config = ExperimentConfig(duration=120.0, population=spec)
    experiment = MobileGridExperiment(config, campus=city)
    print(f"\nRunning {len(experiment.nodes)} MNs for {config.duration:g}s ...")
    result = experiment.run()

    print(f"\n{'lane':<10} {'reduction':>10} {'rmse w/ LE':>11}")
    for lane in result.adf_lanes():
        print(
            f"{lane.name:<10} {result.reduction_vs_ideal(lane.name):>10.1%} "
            f"{lane.mean_rmse(with_le=True):>11.2f}"
        )
    print(f"(gateway handoffs during the run: {result.handoffs})")

    print("\nSame pipeline under classic mobility generators (open field):")
    print(f"{'model':<18} {'reduction':>10} {'LE error ratio':>15}")
    for r in generality_study(n_nodes=30, duration=90.0):
        print(f"{r.model:<18} {r.reduction:>10.1%} {r.le_ratio:>15.1%}")

    print(
        "\nThe reduction bands and the estimator's error cut match the "
        "paper's campus results on every geometry and generator — the "
        "ADF's behaviour is a property of the algorithm, not of the map."
    )


if __name__ == "__main__":
    main()
