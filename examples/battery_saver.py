"""Battery-aware filtering: trade location accuracy for node lifetime.

A beyond-paper extension built from the paper's own motivation ("low
battery capacity"): wrap the ADF's cluster-derived DTH in
:class:`~repro.core.BatteryAwareDth`, so a node's threshold grows as its
battery drains — fewer transmissions, longer life, coarser location.

The script runs two identical cell-phone walkers side by side, one with a
healthy battery and one nearly empty, drains batteries per transmitted LU,
and reports transmissions, battery trajectories and location error.

Usage::

    python examples/battery_saver.py
"""

from repro.broker import GridBroker, ResourceRegistry
from repro.core import (
    AdaptiveDistanceFilter,
    AdfConfig,
    BatteryAwareDth,
    FilterDecision,
)
from repro.geometry import Path, Vec2
from repro.mobility import MobileNode
from repro.mobility.models import LinearPathModel, ShuttlePlanner
from repro.mobility.states import DeviceType, VelocityBand
from repro.network.messages import LocationUpdate
from repro.util.rng import RngRegistry


def main() -> None:
    rng = RngRegistry(5)
    registry = ResourceRegistry()
    nodes = {}
    for name, battery in (("healthy", 1.0), ("dying", 0.15)):
        path = Path([Vec2(0, 0), Vec2(400, 0)])
        model = LinearPathModel(
            Vec2(0, 0),
            ShuttlePlanner(path),
            VelocityBand(1.5, 2.5),
            rng.stream(name),
        )
        nodes[name] = MobileNode(name, model, device=DeviceType.CELL_PHONE)
        registry.register(name, DeviceType.CELL_PHONE)
        registry.set_battery(name, battery)
        # Exaggerate the per-LU cost so 20 minutes shows a visible drain.
        registry.drain(name, 0.0)

    adf = AdaptiveDistanceFilter(AdfConfig(dth_factor=1.0))
    # Swap in the battery-aware policy on top of the ADF's cluster DTH.
    adf.dth_policy = BatteryAwareDth(
        adf.dth_policy, registry.battery, max_boost=4.0, critical_level=0.2
    )
    broker = GridBroker()

    sent = {name: 0 for name in nodes}
    errors = {name: [] for name in nodes}
    duration = 1200
    per_lu_wh = 0.002  # exaggerated: real radios cost ~1e-4 Wh per message

    for t in range(1, duration + 1):
        for name, node in nodes.items():
            sample = node.advance(1.0)
            update = LocationUpdate(
                sender=name,
                timestamp=float(t),
                node_id=name,
                position=sample.position,
                velocity=sample.velocity,
                region_id="road",
            )
            if adf.process(update) is FilterDecision.TRANSMIT:
                sent[name] += 1
                registry.drain(name, per_lu_wh)
                broker.receive_update(update)
        adf.tick(float(t))
        broker.tick(float(t))
        for name, node in nodes.items():
            believed = broker.location_db.position_of(name)
            if believed is not None:
                errors[name].append(node.position.distance_to(believed))

    print(f"Two identical walkers, {duration}s, battery-aware ADF "
          f"(DTH x4 at <20% battery):\n")
    print(f"{'node':<9} {'LUs sent':>9} {'battery now':>12} "
          f"{'mean error':>11} {'current DTH':>12}")
    for name in nodes:
        mean_error = sum(errors[name]) / len(errors[name])
        print(
            f"{name:<9} {sent[name]:>9} {registry.battery(name):>11.1%} "
            f"{mean_error:>10.2f}m {adf.dth_policy.dth_for(name):>11.2f}m"
        )
    saved = 1 - sent["dying"] / sent["healthy"]
    print(
        f"\nThe dying node transmitted {saved:.0%} less than its healthy "
        f"twin on the same walk, at the cost of a coarser (but bounded) "
        f"broker view — the battery-motivated trade the paper gestures at, "
        f"as a drop-in DthPolicy."
    )


if __name__ == "__main__":
    main()
