"""Quickstart: run the paper's evaluation and print the full report.

Usage::

    python examples/quickstart.py [duration_seconds]

The paper uses 1800 s; the default here is 300 s, which already shows every
qualitative result (LU reduction per DTH, road-vs-building split, and the
Location Estimator's error reduction).
"""

import sys

from repro import ExperimentConfig, render_report, run_experiment


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 300.0
    config = ExperimentConfig(duration=duration)
    print(
        f"Simulating {config.population.total_for(5, 6)} mobile nodes "
        f"for {duration:g} s ..."
    )
    result = run_experiment(config)
    print(render_report(result))

    best = max(result.adf_lanes(), key=lambda lane: result.reduction_vs_ideal(lane.name))
    print(
        f"Headline: the ADF at {best.dth_factor:g}x average velocity cut "
        f"location-update traffic by {result.reduction_vs_ideal(best.name):.0%} "
        f"while the Location Estimator kept mean location error at "
        f"{best.mean_rmse(with_le=True):.2f} m "
        f"(vs {best.mean_rmse(with_le=False):.2f} m without estimation)."
    )


if __name__ == "__main__":
    main()
