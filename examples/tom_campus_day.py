"""Tom's day (paper §3.1): one student's itinerary through the ADF.

Replays the paper's 11-case scenario — bus stop, library, lecture, coffee
break, chemistry lab, part-time job — with the day compressed 60x so it runs
in seconds.  For each itinerary phase the script reports the ground-truth
mobility pattern, what the ADF's classifier said, and how many of Tom's
location updates the distance filter suppressed.

Usage::

    python examples/tom_campus_day.py
"""

from collections import Counter

from repro import AdaptiveDistanceFilter, AdfConfig, default_campus
from repro.core.distance_filter import FilterDecision
from repro.mobility import MobileNode, ItineraryModel, tom_itinerary
from repro.network.messages import LocationUpdate
from repro.util.rng import RngRegistry


def main() -> None:
    campus = default_campus()
    rng = RngRegistry(seed=7)
    itinerary = tom_itinerary(compressed=True)
    model = ItineraryModel(campus, itinerary, rng.stream("tom"))
    tom = MobileNode("tom", model, home_region="B4")

    adf = AdaptiveDistanceFilter(AdfConfig(dth_factor=1.0, recluster_interval=10.0))

    per_state: Counter[str] = Counter()
    transmitted_per_state: Counter[str] = Counter()
    agreement = 0
    observations = 0

    t = 0.0
    dt = 1.0
    print(f"Walking Tom through '{itinerary.name}' ({len(itinerary.steps)} steps)...")
    while not model.finished:
        t += dt
        sample = tom.advance(dt)
        truth = model.current_state
        update = LocationUpdate(
            sender="tom",
            timestamp=t,
            node_id="tom",
            position=sample.position,
            velocity=sample.velocity,
            region_id="",
        )
        decision = adf.process(update)
        adf.tick(t)
        per_state[truth.value] += 1
        if decision is FilterDecision.TRANSMIT:
            transmitted_per_state[truth.value] += 1
        label = adf.label_of("tom")
        if label is not None:
            observations += 1
            if label is truth:
                agreement += 1
        if t > 36000:
            raise RuntimeError("itinerary failed to finish")

    print(f"\nDay finished after {t:.0f} simulated seconds (60x compressed).")
    print(f"Classifier agreed with ground truth {agreement / observations:.0%} "
          f"of the time.\n")
    print(f"{'pattern':<8} {'seconds':>8} {'LUs sent':>9} {'suppressed':>11}")
    for state in ("SS", "RMS", "LMS"):
        total = per_state.get(state, 0)
        sent = transmitted_per_state.get(state, 0)
        if total == 0:
            continue
        print(f"{state:<8} {total:>8d} {sent:>9d} {1 - sent / total:>10.0%}")
    print(
        "\nNote how the filter suppresses nearly everything while Tom sits "
        "in the library (SS), most updates while he mills about the lab "
        "(RMS), and the fewest while he walks between buildings (LMS)."
    )


if __name__ == "__main__":
    main()
