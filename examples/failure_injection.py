"""Robustness: lossy channels and gateway outages.

The paper's motivation — "frequent disconnectivity" — deserves a stress
test.  This script runs the experiment with increasing channel loss, then
with a mid-run gateway outage in the library (B4), and reports how the
broker's location error degrades.  The Location Estimator is exactly the
mechanism that cushions both: a lost LU looks identical to a filtered one.

Usage::

    python examples/failure_injection.py
"""

from repro import ExperimentConfig
from repro.experiments.harness import MobileGridExperiment


def run_with_loss(loss: float) -> tuple[float, float]:
    config = ExperimentConfig(
        duration=120.0, dth_factors=(1.0,), channel_loss=loss
    )
    result = MobileGridExperiment(config).run()
    lane = result.lanes["adf-1"]
    return lane.mean_rmse(with_le=True), lane.mean_rmse(with_le=False)


def run_with_outage() -> tuple[float, float]:
    config = ExperimentConfig(duration=120.0, dth_factors=(1.0,))
    experiment = MobileGridExperiment(config)
    lane = experiment.lane("adf-1")
    # Take the library's access point down for the middle third of the run.
    experiment.sim.schedule_at(40.0, lane.gateways["B4"].fail)
    experiment.sim.schedule_at(80.0, lane.gateways["B4"].restore)
    result = experiment.run()
    out = result.lanes["adf-1"]
    return out.mean_rmse(with_le=True), out.mean_rmse(with_le=False)


def main() -> None:
    print("Channel loss sweep (ADF at 1.0 av, 120 s):\n")
    print(f"{'loss':>6} {'rmse w/ LE':>11} {'rmse w/o LE':>12}")
    for loss in (0.0, 0.05, 0.15, 0.30):
        with_le, without_le = run_with_loss(loss)
        print(f"{loss:>6.0%} {with_le:>11.2f} {without_le:>12.2f}")

    print("\nGateway outage: library AP (B4) down from t=40s to t=80s:")
    with_le, without_le = run_with_outage()
    print(f"  mean RMSE w/ LE  {with_le:.2f} m")
    print(f"  mean RMSE w/o LE {without_le:.2f} m")
    print(
        "\nThe estimator absorbs silent periods regardless of their cause "
        "(filtering, loss, or a dead AP); without it every lost update "
        "freezes the node at a stale fix."
    )


if __name__ == "__main__":
    main()
