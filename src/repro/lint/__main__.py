"""``python -m repro.lint`` dispatch."""

from __future__ import annotations

import sys

from repro.lint.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
