"""File loading, the rule registry, and the single-pass AST visitor.

Every rule declares the AST node types it cares about; the engine parses
each file once and dispatches nodes to the interested rules in a single
pre-order walk (parents before children, which rules such as DET004's
``json.loads(json.dumps(...))`` exemption rely on).  Findings are
filtered through the file's inline suppressions before being returned.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.suppressions import Suppressions

__all__ = [
    "LintRule",
    "LintEngine",
    "FileContext",
    "register_rule",
    "rule_catalog",
    "find_repo_root",
    "iter_python_files",
    "lint_paths",
]

#: Code used for files the engine cannot parse at all.
PARSE_ERROR_CODE = "LINT000"


class FileContext:
    """Everything a rule may need about the file under analysis."""

    def __init__(self, path: Path, rel_path: str, source: str, tree: ast.Module):
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def source_line(self, lineno: int) -> str:
        """The stripped text of 1-based *lineno* ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class LintRule:
    """Base class for one lint rule.

    Subclasses set :attr:`code`, :attr:`title`, :attr:`hint` and
    :attr:`node_types`, override :meth:`visit` (and optionally
    :meth:`begin_file` / :meth:`end_file`), and register themselves with
    :func:`register_rule`.  Rules are instantiated fresh for every run,
    so per-file state in ``begin_file`` is safe.
    """

    code: str = ""
    title: str = ""
    hint: str = ""
    #: AST node classes dispatched to :meth:`visit` (isinstance match).
    node_types: tuple[type[ast.AST], ...] = ()

    def applies_to(self, rel_path: str) -> bool:
        """Whether this rule runs on the file at repo-relative *rel_path*."""
        return True

    def begin_file(self, ctx: FileContext) -> None:
        """Reset per-file state; called once before the walk."""

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        return iter(())

    def end_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings that need the whole file to have been walked."""
        return iter(())

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding for *node* carrying this rule's code and hint."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=ctx.rel_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            hint=self.hint,
            source_line=ctx.source_line(line),
        )


_RULES: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the global registry (by code)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    _RULES[cls.code] = cls
    return cls


def rule_catalog() -> tuple[LintRule, ...]:
    """Fresh instances of every registered rule, ordered by code."""
    import repro.lint.rules  # noqa: F401  (registers the built-in rules)

    return tuple(_RULES[code]() for code in sorted(_RULES))


def find_repo_root(start: Path) -> Path:
    """The nearest ancestor of *start* holding a ``pyproject.toml``.

    Falls back to *start* itself so the engine still produces stable
    relative paths when run outside a checkout (e.g. on a temp dir).
    """
    start = start.resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """All ``.py`` files under *paths*, deterministically ordered.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.
    """
    seen: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = (path,)
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = ()
        for candidate in candidates:
            resolved = candidate.resolve()
            parts = resolved.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts[1:]):
                continue
            if resolved not in seen:
                seen.add(resolved)
                yield resolved


class LintEngine:
    """Runs a rule set over files and returns suppression-filtered findings."""

    def __init__(
        self,
        root: Path | None = None,
        rules: Sequence[LintRule] | None = None,
        select: Sequence[str] | None = None,
    ) -> None:
        self.root = (root or find_repo_root(Path.cwd())).resolve()
        catalog = tuple(rules) if rules is not None else rule_catalog()
        if select:
            wanted = set(select)
            unknown = wanted - {rule.code for rule in catalog}
            if unknown:
                raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
            catalog = tuple(r for r in catalog if r.code in wanted)
        self.rules = catalog

    def rel_path(self, path: Path) -> str:
        """Repo-relative ``/``-separated path (absolute when outside root)."""
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def lint_file(self, path: Path) -> list[Finding]:
        """All (non-suppressed) findings for one file."""
        rel = self.rel_path(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            line = exc.lineno or 1
            ctx_lines = source.splitlines()
            src_line = ctx_lines[line - 1].strip() if line <= len(ctx_lines) else ""
            return [
                Finding(
                    path=rel,
                    line=line,
                    col=(exc.offset or 1) - 1,
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {exc.msg}",
                    hint="fix the syntax error; unparseable files are unchecked",
                    source_line=src_line,
                )
            ]
        ctx = FileContext(path, rel, source, tree)
        active = [rule for rule in self.rules if rule.applies_to(rel)]
        if not active:
            return []
        findings: list[Finding] = []
        for rule in active:
            rule.begin_file(ctx)
        for node in ast.walk(tree):  # BFS: parents always precede children
            for rule in active:
                if isinstance(node, rule.node_types):
                    findings.extend(rule.visit(node, ctx))
        for rule in active:
            findings.extend(rule.end_file(ctx))
        suppressions = Suppressions.parse(source)
        kept = [f for f in findings if not suppressions.covers(f.code, f.line)]
        return sorted(kept, key=Finding.sort_key)

    def lint(self, paths: Sequence[Path]) -> list[Finding]:
        """All findings across *paths* (files or directories), sorted."""
        findings: list[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings, key=Finding.sort_key)


def lint_paths(
    paths: Sequence[str | Path],
    *,
    root: Path | None = None,
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Convenience wrapper: lint *paths* with the full built-in rule set."""
    engine = LintEngine(root=root, select=select)
    return engine.lint([Path(p) for p in paths])
