"""File loading, the rule registry, and the two-phase analysis driver.

Phase 1 — **per-file rules**: every rule declares the AST node types it
cares about; the engine parses each file once and dispatches nodes to
the interested rules in a single pre-order walk (parents before
children, which rules such as DET004's ``json.loads(json.dumps(...))``
exemption rely on).  The :class:`FileContext` a rule sees now carries
the file's :class:`~repro.lint.project.ModuleInfo` summary, so import
resolution is shared with the whole-program model instead of each rule
re-walking the tree.  Per-file results are a pure function of the
file's bytes and the rule set, which makes two accelerations sound:
a content-hash result cache (:mod:`repro.lint.cache`) and
multiprocessing fan-out across files (``jobs > 1``).

Phase 2 — **project rules**: rules with :attr:`LintRule.project_wide`
set run once in the main process against a repo-wide
:class:`~repro.lint.project.ProjectModel` (itself content-hash cached),
regardless of how few files were selected for phase 1 — a cross-module
check needs the whole repo as context even when linting one file.

Findings from both phases are filtered through each file's inline
suppressions before being returned.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path
from typing import Callable

from repro.lint.cache import CACHE_VERSION, ResultCache
from repro.lint.findings import Finding
from repro.lint.project import (
    ModelCache,
    ModuleInfo,
    ProjectModel,
    content_hash,
    extract_module,
)
from repro.lint.suppressions import Suppressions

__all__ = [
    "LintRule",
    "LintEngine",
    "FileContext",
    "register_rule",
    "rule_catalog",
    "find_repo_root",
    "iter_python_files",
    "lint_paths",
    "resolve_jobs",
]

#: Code used for files the engine cannot parse at all.
PARSE_ERROR_CODE = "LINT000"

#: Directory (under the repo root) holding the model and result caches.
CACHE_DIR_NAME = ".lint-cache"

#: Directories (relative to the repo root) the project model always
#: covers, so cross-module checks see the whole repo even when only a
#: subset of files is being linted.
MODEL_SCOPE = ("src", "tests", "examples", "benchmarks", "scripts")


class FileContext:
    """Everything a per-file rule may need about the file under analysis."""

    def __init__(
        self, path: Path, rel_path: str, source: str, tree: ast.Module
    ) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._module_info: ModuleInfo | None = None

    @property
    def module_info(self) -> ModuleInfo:
        """The file's whole-program summary (computed once, on demand).

        Import edges here are resolved to absolute dotted modules —
        including relative imports — which is what
        ``_ImportTrackingRule`` and the project model both consume.
        """
        if self._module_info is None:
            self._module_info = extract_module(
                self.rel_path, self.source, self.tree
            )
        return self._module_info

    def source_line(self, lineno: int) -> str:
        """The stripped text of 1-based *lineno* ('' when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class LintRule:
    """Base class for one lint rule.

    Per-file rules set :attr:`code`, :attr:`title`, :attr:`hint` and
    :attr:`node_types`, override :meth:`visit` (and optionally
    :meth:`begin_file` / :meth:`end_file`), and register themselves with
    :func:`register_rule`.  Rules are instantiated fresh for every run,
    so per-file state in ``begin_file`` is safe.

    Whole-program rules set :attr:`project_wide` and override
    :meth:`check_project` instead; they run once per engine run, in the
    main process, after the per-file phase.
    """

    code: str = ""
    title: str = ""
    hint: str = ""
    #: AST node classes dispatched to :meth:`visit` (isinstance match).
    node_types: tuple[type[ast.AST], ...] = ()
    #: True for rules that run once against the whole project model.
    project_wide: bool = False

    def applies_to(self, rel_path: str) -> bool:
        """Whether this rule runs on the file at repo-relative *rel_path*."""
        return True

    def begin_file(self, ctx: FileContext) -> None:
        """Reset per-file state; called once before the walk."""

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        return iter(())

    def end_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings that need the whole file to have been walked."""
        return iter(())

    def check_project(
        self,
        project: ProjectModel,
        lint_files: frozenset[str],
        source_line_for: Callable[[str, int], str],
    ) -> Iterator[Finding]:
        """Yield whole-program findings (``project_wide`` rules only).

        *lint_files* is the set of repo-relative paths in this run;
        findings must stay within it so ``--changed`` runs do not blame
        files the user never asked about.  *source_line_for* fetches the
        stripped source text for fingerprints.
        """
        return iter(())

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding for *node* carrying this rule's code and hint."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=ctx.rel_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            hint=self.hint,
            source_line=ctx.source_line(line),
        )


_RULES: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the global registry (by code)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    _RULES[cls.code] = cls
    return cls


def rule_catalog() -> tuple[LintRule, ...]:
    """Fresh instances of every registered rule, ordered by code."""
    import repro.lint.rules  # noqa: F401  (registers the built-in rules)
    import repro.lint.rules_program  # noqa: F401  (whole-program rules)

    return tuple(_RULES[code]() for code in sorted(_RULES))


def find_repo_root(start: Path) -> Path:
    """The nearest ancestor of *start* holding a ``pyproject.toml``.

    Falls back to *start* itself so the engine still produces stable
    relative paths when run outside a checkout (e.g. on a temp dir).
    """
    start = start.resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """All ``.py`` files under *paths*, deterministically ordered.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.
    """
    seen: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = (path,)
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = ()
        for candidate in candidates:
            resolved = candidate.resolve()
            parts = resolved.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts[1:]):
                continue
            if resolved not in seen:
                seen.add(resolved)
                yield resolved


def resolve_jobs(value: str | int) -> int:
    """``--jobs`` semantics: a positive int, or ``auto`` = CPU count."""
    if isinstance(value, int):
        return max(1, value)
    if value.strip().lower() == "auto":
        return os.cpu_count() or 1
    return max(1, int(value))


# -- worker-process plumbing -------------------------------------------------
#
# Each worker builds one engine at pool start (initializer) and reuses
# it for every file it lints; results cross the pipe as plain dicts.

_WORKER_ENGINE: "LintEngine | None" = None


def _worker_init(root: str, select: tuple[str, ...] | None) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = LintEngine(
        root=Path(root), select=list(select) if select else None
    )


def _worker_lint(task: tuple[str, str]) -> tuple[str, list[dict[str, object]]]:
    path_str, rel = task
    assert _WORKER_ENGINE is not None
    findings = _WORKER_ENGINE.lint_file(Path(path_str))
    return rel, [finding.to_payload() for finding in findings]


class LintEngine:
    """Runs a rule set over files and returns suppression-filtered findings."""

    def __init__(
        self,
        root: Path | None = None,
        rules: Sequence[LintRule] | None = None,
        select: Sequence[str] | None = None,
        *,
        jobs: int = 1,
        cache_dir: Path | None = None,
    ) -> None:
        self.root = (root or find_repo_root(Path.cwd())).resolve()
        catalog = tuple(rules) if rules is not None else rule_catalog()
        if select:
            wanted = set(select)
            unknown = wanted - {rule.code for rule in catalog}
            if unknown:
                raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
            catalog = tuple(r for r in catalog if r.code in wanted)
        self.rules = catalog
        self.jobs = max(1, jobs)
        self.cache_dir = cache_dir
        self._select = tuple(sorted(select)) if select else None

    def rel_path(self, path: Path) -> str:
        """Repo-relative ``/``-separated path (absolute when outside root)."""
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def rules_signature(self) -> str:
        """Cache signature: engine cache version + active rule codes."""
        codes = ",".join(sorted(rule.code for rule in self.rules))
        return f"{CACHE_VERSION}:{codes}"

    def lint_file(self, path: Path) -> list[Finding]:
        """All (non-suppressed) per-file findings for one file."""
        rel = self.rel_path(path)
        source = path.read_text(encoding="utf-8")
        return self._lint_source(path, rel, source)

    def _lint_source(self, path: Path, rel: str, source: str) -> list[Finding]:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            line = exc.lineno or 1
            ctx_lines = source.splitlines()
            src_line = ctx_lines[line - 1].strip() if line <= len(ctx_lines) else ""
            return [
                Finding(
                    path=rel,
                    line=line,
                    col=(exc.offset or 1) - 1,
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {exc.msg}",
                    hint="fix the syntax error; unparseable files are unchecked",
                    source_line=src_line,
                )
            ]
        ctx = FileContext(path, rel, source, tree)
        active = [
            rule
            for rule in self.rules
            if not rule.project_wide and rule.applies_to(rel)
        ]
        if not active:
            return []
        findings: list[Finding] = []
        for rule in active:
            rule.begin_file(ctx)
        for node in ast.walk(tree):  # BFS: parents always precede children
            for rule in active:
                if isinstance(node, rule.node_types):
                    findings.extend(rule.visit(node, ctx))
        for rule in active:
            findings.extend(rule.end_file(ctx))
        suppressions = Suppressions.parse(source)
        kept = [f for f in findings if not suppressions.covers(f.code, f.line)]
        return sorted(kept, key=Finding.sort_key)

    # -- the two-phase driver ------------------------------------------------
    def lint(self, paths: Sequence[Path]) -> list[Finding]:
        """All findings across *paths* (files or directories), sorted."""
        files = list(iter_python_files(paths))
        sources: dict[str, str] = {}
        hashes: dict[str, str] = {}
        order: list[tuple[Path, str]] = []
        for path in files:
            rel = self.rel_path(path)
            if rel in sources:
                continue
            source = path.read_text(encoding="utf-8")
            sources[rel] = source
            hashes[rel] = content_hash(source)
            order.append((path, rel))

        cache: ResultCache | None = None
        if self.cache_dir is not None:
            cache = ResultCache(
                self.cache_dir / "results.json", self.rules_signature()
            )

        findings: list[Finding] = []
        pending: list[tuple[Path, str]] = []
        for path, rel in order:
            cached = cache.get(rel, hashes[rel]) if cache is not None else None
            if cached is not None:
                findings.extend(cached)
            else:
                pending.append((path, rel))

        if self.jobs > 1 and len(pending) > 1:
            results = self._lint_parallel(pending)
        else:
            results = {
                rel: self._lint_source(path, rel, sources[rel])
                for path, rel in pending
            }
        for path, rel in pending:
            file_findings = results[rel]
            findings.extend(file_findings)
            if cache is not None:
                cache.put(rel, hashes[rel], file_findings)
        if cache is not None:
            cache.save()

        findings.extend(self._project_findings(files, sources))
        return sorted(findings, key=Finding.sort_key)

    def _lint_parallel(
        self, pending: Sequence[tuple[Path, str]]
    ) -> dict[str, list[Finding]]:
        from concurrent.futures import ProcessPoolExecutor

        tasks = [(str(path), rel) for path, rel in pending]
        workers = min(self.jobs, len(tasks))
        chunksize = max(1, len(tasks) // (workers * 4))
        results: dict[str, list[Finding]] = {}
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(str(self.root), self._select),
        ) as pool:
            for rel, payloads in pool.map(_worker_lint, tasks, chunksize=chunksize):
                results[rel] = [Finding.from_payload(p) for p in payloads]
        return results

    def _project_findings(
        self, files: Sequence[Path], sources: dict[str, str]
    ) -> list[Finding]:
        project_rules = [rule for rule in self.rules if rule.project_wide]
        if not project_rules:
            return []
        model = self._build_model(files)
        lint_files = frozenset(sources)

        def source_line_for(rel: str, lineno: int) -> str:
            lines = sources.get(rel, "").splitlines()
            if 1 <= lineno <= len(lines):
                return lines[lineno - 1].strip()
            return ""

        suppressions: dict[str, Suppressions] = {}
        kept: list[Finding] = []
        for rule in project_rules:
            for finding in rule.check_project(model, lint_files, source_line_for):
                supp = suppressions.get(finding.path)
                if supp is None:
                    supp = Suppressions.parse(sources.get(finding.path, ""))
                    suppressions[finding.path] = supp
                if not supp.covers(finding.code, finding.line):
                    kept.append(finding)
        return kept

    def _build_model(self, lint_targets: Sequence[Path]) -> ProjectModel:
        """The repo-wide model: standard scope dirs plus the linted files."""
        scope = [
            self.root / name
            for name in MODEL_SCOPE
            if (self.root / name).is_dir()
        ]
        model_files = list(iter_python_files(scope))
        known = set(model_files)
        model_files.extend(p for p in lint_targets if p not in known)
        model_cache = (
            ModelCache(self.cache_dir / "model.json")
            if self.cache_dir is not None
            else None
        )
        return ProjectModel.build(self.root, model_files, cache=model_cache)


def lint_paths(
    paths: Sequence[str | Path],
    *,
    root: Path | None = None,
    select: Sequence[str] | None = None,
    jobs: int = 1,
    cache_dir: Path | None = None,
) -> list[Finding]:
    """Convenience wrapper: lint *paths* with the full built-in rule set."""
    engine = LintEngine(root=root, select=select, jobs=jobs, cache_dir=cache_dir)
    return engine.lint([Path(p) for p in paths])
