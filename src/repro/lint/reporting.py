"""Text, JSON and SARIF reporters for lint runs.

All reporters are deterministic: findings arrive pre-sorted from the
engine and the JSON/SARIF forms are emitted with sorted keys, so a lint
report can itself be diffed byte-for-byte across runs (the same
discipline DET004 demands of the simulator's own exports).

The SARIF output targets GitHub code scanning: one run, the rule
catalog under ``tool.driver.rules``, new findings at level ``error``
and baselined ones carried along with an ``external`` suppression so
the annotation history stays complete without failing the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence
from typing import Any, TYPE_CHECKING

from repro.lint.findings import Finding

if TYPE_CHECKING:
    from repro.lint.engine import LintRule

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale: Sequence[str],
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in new]
    if new:
        by_code = Counter(finding.code for finding in new)
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(f"{len(new)} finding(s): {breakdown}")
    else:
        lines.append("no findings")
    if grandfathered:
        lines.append(f"{len(grandfathered)} baselined finding(s) not shown")
    for fingerprint in stale:
        lines.append(f"stale baseline entry (prune it): {fingerprint}")
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale: Sequence[str],
) -> str:
    """Machine-readable report (stable field ordering, sorted keys)."""
    payload = {
        "findings": [finding.to_dict() for finding in new],
        "counts": {
            "new": len(new),
            "grandfathered": len(grandfathered),
            "stale_baseline_entries": len(stale),
        },
        "stale_baseline_entries": list(stale),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_result(finding: Finding, *, suppressed: bool) -> dict[str, Any]:
    message = finding.message
    if finding.hint:
        message += f" — fix: {finding.hint}"
    result: dict[str, Any] = {
        "ruleId": finding.code,
        "level": "note" if suppressed else "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "grandfathered in lint-baseline.json"}
        ]
    return result


def render_sarif(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    rules: Sequence["LintRule"],
) -> str:
    """SARIF 2.1.0 document for CI code-scanning upload.

    New findings are ``error``-level results; baselined ones ride along
    as suppressed ``note``-level results so the full picture reaches the
    code-scanning UI without turning the gate red.
    """
    rule_entries = [
        {
            "id": rule.code,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title or rule.code},
            "help": {"text": rule.hint or rule.title or rule.code},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in sorted(rules, key=lambda r: r.code)
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rule_entries,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": (
                    [_sarif_result(f, suppressed=False) for f in new]
                    + [_sarif_result(f, suppressed=True) for f in grandfathered]
                ),
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
