"""Text and JSON reporters for lint runs.

Both reporters are deterministic: findings arrive pre-sorted from the
engine and the JSON form is emitted with sorted keys, so a lint report
can itself be diffed byte-for-byte across runs (the same discipline
DET004 demands of the simulator's own exports).
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence

from repro.lint.findings import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale: Sequence[str],
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in new]
    if new:
        by_code = Counter(finding.code for finding in new)
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(f"{len(new)} finding(s): {breakdown}")
    else:
        lines.append("no findings")
    if grandfathered:
        lines.append(f"{len(grandfathered)} baselined finding(s) not shown")
    for fingerprint in stale:
        lines.append(f"stale baseline entry (prune it): {fingerprint}")
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale: Sequence[str],
) -> str:
    """Machine-readable report (stable field ordering, sorted keys)."""
    payload = {
        "findings": [finding.to_dict() for finding in new],
        "counts": {
            "new": len(new),
            "grandfathered": len(grandfathered),
            "stale_baseline_entries": len(stale),
        },
        "stale_baseline_entries": list(stale),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
