"""`repro.lint` — AST-based determinism & invariant checker.

The repository's headline guarantees — byte-reproducible chaos/sweep
reports, bit-identical no-fault runs, the fused network fast path
staying honest under mutable channels — all rest on a handful of code
invariants (seeded RNG only, no wall clock in simulation paths, derived
flags never hand-set, sorted-key JSON export).  This package checks
those invariants statically on every source file so they are enforced
by the lint gate instead of rediscovered by debugging.

Since PR 10 the checker is whole-program: a cached cross-file project
model (symbol table, import graph, class attribute inventory) and a
per-function dataflow layer (CFG + held-locks lattice) power the
RACE001/RACE002 lock-discipline analyses on the serving path, the
DET005 order-taint check, and the API001 cross-module symbol check.

Usage::

    python -m repro.lint src tests
    python -m repro.lint --jobs auto           # multiprocess file fan-out
    python -m repro.lint --format json src
    python -m repro.lint --sarif-file lint.sarif src tests   # CI annotations
    python -m repro.lint --write-baseline      # grandfather current findings
    python -m repro.lint --prune-baseline      # drop stale baseline entries
    python -m repro.lint --changed             # only git-modified files
    python -m repro.lint --changed=origin/main # only files in this PR

Architecture (one module each):

- :mod:`repro.lint.findings`      — the :class:`Finding` record + fingerprints
- :mod:`repro.lint.engine`        — two-phase driver: cached/parallel
  per-file pass, then whole-program rules over the project model
- :mod:`repro.lint.project`       — cross-file symbol/import/class model
- :mod:`repro.lint.dataflow`      — per-function CFGs, held-locks lattice,
  self-alias reaching definitions
- :mod:`repro.lint.rules`         — the per-file rule catalog
- :mod:`repro.lint.rules_program` — dataflow/project rules (RACE*, DET005,
  API001)
- :mod:`repro.lint.cache`         — content-hash per-file result cache
- :mod:`repro.lint.suppressions`  — ``# lint: disable=CODE`` comment handling
- :mod:`repro.lint.baseline`      — committed grandfathered-findings file
- :mod:`repro.lint.reporting`     — text, JSON and SARIF reporters
- :mod:`repro.lint.cli`           — the ``python -m repro.lint`` front-end

See ``docs/static-analysis.md`` for the rule catalog and the
suppression/baseline policy.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.cli import main
from repro.lint.engine import LintEngine, LintRule, lint_paths, rule_catalog
from repro.lint.findings import Finding
from repro.lint.project import ProjectModel

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "LintRule",
    "ProjectModel",
    "lint_paths",
    "main",
    "rule_catalog",
]
