"""`repro.lint` — AST-based determinism & invariant checker.

The repository's headline guarantees — byte-reproducible chaos/sweep
reports, bit-identical no-fault runs, the fused network fast path
staying honest under mutable channels — all rest on a handful of code
invariants (seeded RNG only, no wall clock in simulation paths, derived
flags never hand-set, sorted-key JSON export).  This package checks
those invariants statically on every source file so they are enforced
by the lint gate instead of rediscovered by debugging.

Usage::

    python -m repro.lint src tests
    python -m repro.lint --format json src
    python -m repro.lint --write-baseline      # grandfather current findings
    python -m repro.lint --changed             # only git-modified files

Architecture (one module each):

- :mod:`repro.lint.findings`     — the :class:`Finding` record + fingerprints
- :mod:`repro.lint.engine`       — file loading, the single-pass AST visitor
- :mod:`repro.lint.rules`        — the repo-specific rule catalog
- :mod:`repro.lint.suppressions` — ``# lint: disable=CODE`` comment handling
- :mod:`repro.lint.baseline`     — committed grandfathered-findings file
- :mod:`repro.lint.reporting`    — text and JSON reporters
- :mod:`repro.lint.cli`          — the ``python -m repro.lint`` front-end

See ``docs/static-analysis.md`` for the rule catalog and the
suppression/baseline policy.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.cli import main
from repro.lint.engine import LintEngine, LintRule, lint_paths, rule_catalog
from repro.lint.findings import Finding

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "LintRule",
    "lint_paths",
    "main",
    "rule_catalog",
]
