"""Inline suppression comments.

Two forms, both explicit about *which* rule they silence:

- ``# lint: disable=DET001`` (or ``=DET001,INV001``) on the offending
  line suppresses those codes for that line only.
- ``# lint: disable-file=TEL001`` anywhere in a file suppresses the code
  for the whole file (conventionally placed right below the docstring).

A suppression must name rule codes; there is deliberately no blanket
``disable=all`` — silencing everything is what baselines are for, and
those live in one reviewable committed file instead of being scattered
through the source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Suppressions"]

_LINE_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=([A-Za-z0-9_,\s]+)")


def _codes(raw: str) -> set[str]:
    return {token.strip().upper() for token in raw.split(",") if token.strip()}


@dataclass(frozen=True)
class Suppressions:
    """Parsed suppression state for one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    whole_file: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        """Extract suppression comments from *source*."""
        by_line: dict[int, set[str]] = {}
        whole_file: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "lint:" not in text:  # fast path: most lines have none
                continue
            match = _FILE_RE.search(text)
            if match:
                whole_file |= _codes(match.group(1))
            match = _LINE_RE.search(text)
            if match:
                by_line.setdefault(lineno, set()).update(_codes(match.group(1)))
        return cls(by_line=by_line, whole_file=whole_file)

    def covers(self, code: str, line: int) -> bool:
        """Whether a finding of *code* at *line* is suppressed."""
        if code in self.whole_file:
            return True
        return code in self.by_line.get(line, ())
