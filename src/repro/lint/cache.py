"""The per-file lint result cache.

Re-linting a 230+-file repo on every pre-commit is wasted work when
almost nothing changed: a file's findings are a pure function of its
bytes and the active rule set (every per-file rule — including the
dataflow-powered RACE/DET005 analyses — is deliberately file-local, so
this holds by construction; the one whole-program rule, API001, runs in
the main process every time and is never cached).  The cache therefore
keys results by ``rel_path -> (content hash, findings)`` under a
*signature* of the engine version plus the sorted active rule codes;
any mismatch — engine upgrade, different ``--select`` — drops the whole
cache rather than risking stale findings.

Stored findings are post-suppression: identical bytes imply identical
suppression comments, so the filtered result is cacheable as-is.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.lint.findings import Finding

__all__ = ["ResultCache"]

#: Bump whenever cached payload semantics change.
CACHE_VERSION = 1


class ResultCache:
    """Content-hash keyed findings per file, bound to a rule signature."""

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        if path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                data = {}
            if (
                data.get("version") == CACHE_VERSION
                and data.get("signature") == signature
                and isinstance(data.get("entries"), dict)
            ):
                self._entries = data["entries"]

    def get(self, rel_path: str, file_hash: str) -> list[Finding] | None:
        """Cached findings for *rel_path* at *file_hash*, or None."""
        entry = self._entries.get(rel_path)
        if entry is None or entry.get("hash") != file_hash:
            return None
        try:
            return [Finding.from_payload(raw) for raw in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            return None

    def put(
        self, rel_path: str, file_hash: str, findings: Iterable[Finding]
    ) -> None:
        self._entries[rel_path] = {
            "hash": file_hash,
            "findings": [finding.to_payload() for finding in findings],
        }
        self._dirty = True

    def save(self) -> None:
        """Persist (sorted keys: reruns rewrite byte-identical files)."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "entries": {
                rel: self._entries[rel] for rel in sorted(self._entries)
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        self._dirty = False
