"""The intraprocedural dataflow layer: per-function CFGs and lattices.

The race/determinism analyses need more than a syntax walk: *where* a
write happens matters less than *what is known on every path reaching
it* — which locks are held, which local names alias which ``self``
attributes.  This module provides the shared machinery:

- :func:`build_cfg` — a control-flow graph over a function's ``ast``
  statements.  Nodes are simple statements plus explicit
  ``with_enter``/``with_exit`` events (so a ``with lock:`` body is a
  region between an acquire and a release node) and ``assume`` nodes on
  conditional edges (so a branch guarded by ``if self._lock is None:``
  can refine the lock state on its true arm).
- :func:`solve_forward` — a worklist fixpoint solver for any forward
  analysis expressed as ``initial``/``transfer``/``join``.
- :class:`HeldLocks` — the lock-discipline lattice: the set of lock
  expressions held on *every* path into each node.  ``with lock:``,
  ``lock.acquire()``/``lock.release()`` and the repo's conditional-lock
  idiom are all understood: code dominated by ``self._lock is None``
  runs in declared single-threaded mode, which the lattice models as
  the lock being (vacuously) held.
- :class:`SelfAliases` — reaching-definition tracking of local names
  that alias ``self`` attributes (``gates = self._gates``), so a write
  through the alias is attributed to the attribute it mutates.

Everything here is pure-stdlib and per-function: whole-program context
(which classes are threaded, which attributes matter) is supplied by
the rules in :mod:`repro.lint.rules_program`.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

__all__ = [
    "CFG",
    "CFGNode",
    "build_cfg",
    "solve_forward",
    "HeldLocks",
    "SelfAliases",
    "dotted_expr",
    "SELF_VALUE_OTHER",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def dotted_expr(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class CFGNode:
    """One event in the flow graph.

    ``kind`` is one of ``entry``, ``exit``, ``stmt``, ``with_enter``,
    ``with_exit`` or ``assume``.  ``stmt`` carries the statement for
    ``stmt`` nodes, the context-manager expression for with events, and
    the test expression for assumes (with :attr:`polarity` telling which
    arm the edge enters).
    """

    kind: str
    stmt: ast.AST | None = None
    polarity: bool = True


@dataclass
class CFG:
    """A per-function control-flow graph (indices into :attr:`nodes`)."""

    nodes: list[CFGNode] = field(default_factory=list)
    succs: list[list[int]] = field(default_factory=list)
    entry: int = 0
    exit: int = 1

    def add(self, node: CFGNode) -> int:
        self.nodes.append(node)
        self.succs.append([])
        return len(self.nodes) - 1

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)

    def stmt_nodes(self) -> Iterator[tuple[int, ast.AST]]:
        """Every ``stmt`` node with its statement, in creation order."""
        for index, node in enumerate(self.nodes):
            if node.kind == "stmt" and node.stmt is not None:
                yield index, node.stmt

    def reachable_from(self, start: int) -> set[int]:
        """Node indices reachable from *start* (excluding *start* itself
        unless it lies on a cycle)."""
        seen: set[int] = set()
        work = deque(self.succs[start])
        while work:
            current = work.popleft()
            if current in seen:
                continue
            seen.add(current)
            work.extend(self.succs[current])
        return seen


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.add(CFGNode("entry"))
        self.cfg.add(CFGNode("exit"))
        #: (continue_target, break_target) per enclosing loop
        self.loops: list[tuple[int, int]] = []

    # Each build method threads a frontier: the set of node ids whose
    # control falls through to whatever comes next.
    def body(self, stmts: list[ast.stmt], frontier: list[int]) -> list[int]:
        for stmt in stmts:
            frontier = self.statement(stmt, frontier)
            if not frontier:
                break  # unreachable code after return/raise/break
        return frontier

    def _link(self, frontier: list[int], node: int) -> None:
        for src in frontier:
            self.cfg.edge(src, node)

    def statement(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            true_in = cfg.add(CFGNode("assume", stmt.test, True))
            false_in = cfg.add(CFGNode("assume", stmt.test, False))
            self._link(frontier, true_in)
            self._link(frontier, false_in)
            out = self.body(stmt.body, [true_in])
            out += self.body(stmt.orelse, [false_in])
            return out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.add(CFGNode("stmt", stmt))
            after = cfg.add(CFGNode("stmt", None))  # join placeholder
            after_node = after
            self._link(frontier, header)
            self.loops.append((header, after_node))
            body_out = self.body(stmt.body, [header])
            self.loops.pop()
            self._link(body_out, header)
            else_out = self.body(stmt.orelse, [header])
            self._link(else_out, after_node)
            cfg.edge(header, after_node)
            return [after_node]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner: list[int] = list(frontier)
            enters: list[ast.expr] = []
            for item in stmt.items:
                enter = cfg.add(CFGNode("with_enter", item.context_expr))
                self._link(inner, enter)
                inner = [enter]
                enters.append(item.context_expr)
            out = self.body(stmt.body, inner)
            for expr in reversed(enters):
                leave = cfg.add(CFGNode("with_exit", expr))
                self._link(out, leave)
                out = [leave]
            return out
        if isinstance(stmt, ast.Try):
            body_in = cfg.add(CFGNode("stmt", None))
            self._link(frontier, body_in)
            body_out = self.body(stmt.body, [body_in])
            outs = self.body(stmt.orelse, body_out) if stmt.orelse else body_out
            for handler in stmt.handlers:
                handler_in = cfg.add(CFGNode("stmt", None))
                # An exception may fire before or after the body ran:
                # approximate with edges from both ends.
                cfg.edge(body_in, handler_in)
                self._link(body_out, handler_in)
                outs = outs + self.body(handler.body, [handler_in])
            if stmt.finalbody:
                outs = self.body(stmt.finalbody, outs)
            return outs
        if isinstance(stmt, ast.Match):
            outs: list[int] = []
            for case in stmt.cases:
                case_in = cfg.add(CFGNode("stmt", None))
                self._link(frontier, case_in)
                outs += self.body(case.body, [case_in])
            return outs + list(frontier)  # cases may not be exhaustive
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = cfg.add(CFGNode("stmt", stmt))
            self._link(frontier, node)
            cfg.edge(node, cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            node = cfg.add(CFGNode("stmt", stmt))
            self._link(frontier, node)
            if self.loops:
                cfg.edge(node, self.loops[-1][1])
            return []
        if isinstance(stmt, ast.Continue):
            node = cfg.add(CFGNode("stmt", stmt))
            self._link(frontier, node)
            if self.loops:
                cfg.edge(node, self.loops[-1][0])
            return []
        # Simple statement (incl. nested def/class, treated opaquely).
        node = cfg.add(CFGNode("stmt", stmt))
        self._link(frontier, node)
        return [node]


def build_cfg(fn: FunctionNode) -> CFG:
    """The statement-level control-flow graph of *fn*'s body."""
    builder = _Builder()
    out = builder.body(fn.body, [builder.cfg.entry])
    builder._link(out, builder.cfg.exit)
    return builder.cfg


def solve_forward(
    cfg: CFG,
    *,
    initial: object,
    transfer: Callable[[CFGNode, object], object],
    join: Callable[[object, object], object],
) -> dict[int, object]:
    """Worklist fixpoint: the state flowing *into* every node.

    ``None`` is the unreachable top element: ``join(None, s) == s`` and
    ``transfer`` is never called on it.  *initial* seeds the entry node.
    """
    states: dict[int, object] = {cfg.entry: initial}
    work: deque[int] = deque([cfg.entry])
    while work:
        index = work.popleft()
        state_in = states.get(index)
        if state_in is None:
            continue
        state_out = transfer(cfg.nodes[index], state_in)
        for succ in cfg.succs[index]:
            old = states.get(succ)
            merged = state_out if old is None else join(old, state_out)
            if merged != old:
                states[succ] = merged
                work.append(succ)
    return states


# -- the held-locks lattice --------------------------------------------------

class HeldLocks:
    """Forward analysis: which lock expressions are held at each node.

    State is a frozenset of dotted lock expressions (``self._lock``);
    the join over paths is set intersection, so a lock counts as held
    only when *every* path into the node holds it.  *is_lock* decides
    which expressions are locks (the race rule passes the class's
    inventory of ``threading.Lock``-assigned attributes).
    """

    def __init__(self, is_lock: Callable[[str], bool]) -> None:
        self._is_lock = is_lock

    def _lock_key(self, expr: ast.AST | None) -> str | None:
        if expr is None:
            return None
        key = dotted_expr(expr)
        if key is not None and self._is_lock(key):
            return key
        return None

    def transfer(self, node: CFGNode, state: object) -> object:
        held: frozenset[str] = state  # type: ignore[assignment]
        if node.kind == "with_enter":
            key = self._lock_key(node.stmt)
            if key is not None:
                return held | {key}
            return held
        if node.kind == "with_exit":
            key = self._lock_key(node.stmt)
            if key is not None:
                return held - {key}
            return held
        if node.kind == "assume":
            refined = self._refine(node.stmt, node.polarity)
            if refined is not None:
                return held | {refined}
            return held
        if node.kind == "stmt" and node.stmt is not None:
            return self._transfer_stmt(node.stmt, held)
        return held

    def _refine(self, test: ast.AST | None, polarity: bool) -> str | None:
        """``self._lock is None`` (true arm) declares single-threaded
        mode: the lock is vacuously held there.  The inverted test's
        false arm is the same region."""
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        op = test.ops[0]
        right = test.comparators[0]
        if not (isinstance(right, ast.Constant) and right.value is None):
            return None
        wants_true = isinstance(op, ast.Is)
        wants_false = isinstance(op, ast.IsNot)
        if (wants_true and polarity) or (wants_false and not polarity):
            return self._lock_key(test.left)
        return None

    def _transfer_stmt(self, stmt: ast.AST, held: frozenset[str]) -> object:
        # Loop headers are CFG nodes carrying the whole compound
        # statement; only their header expression executes at the node.
        if isinstance(stmt, ast.While):
            stmt = stmt.test
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            stmt = stmt.iter
        for call in _calls_in(stmt):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "acquire",
                "release",
            ):
                key = self._lock_key(func.value)
                if key is None:
                    continue
                held = held | {key} if func.attr == "acquire" else held - {key}
        return held

    def solve(self, cfg: CFG, *, entry: frozenset[str] = frozenset()) -> dict[int, frozenset[str]]:
        states = solve_forward(
            cfg,
            initial=entry,
            transfer=self.transfer,
            join=lambda a, b: a & b,  # type: ignore[operator]
        )
        return {index: state for index, state in states.items()}  # type: ignore[misc]


def _calls_in(stmt: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            yield node


# -- reaching self-attribute aliases ----------------------------------------

#: Abstract value for "anything that is not a tracked self attribute".
SELF_VALUE_OTHER = "<other>"


class SelfAliases:
    """Reaching definitions restricted to ``local = self.attr`` aliases.

    The state maps each local name to the set of ``self`` attributes it
    may currently alias (or :data:`SELF_VALUE_OTHER`).  The join is a
    pointwise union, so a name aliasing ``self._gates`` on one path and
    something else on another still reports the attribute — writes
    through a *possible* alias count.
    """

    @staticmethod
    def _eval(value: ast.AST, state: Mapping[str, frozenset[str]]) -> frozenset[str]:
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            return frozenset({value.attr})
        if isinstance(value, ast.Name):
            return state.get(value.id, frozenset({SELF_VALUE_OTHER}))
        return frozenset({SELF_VALUE_OTHER})

    def transfer(self, node: CFGNode, state: object) -> object:
        if node.kind != "stmt" or not isinstance(node.stmt, ast.Assign):
            return state
        bindings: dict[str, frozenset[str]] = dict(state)  # type: ignore[arg-type]
        value = SelfAliases._eval(node.stmt.value, bindings)
        for target in node.stmt.targets:
            if isinstance(target, ast.Name):
                bindings[target.id] = value
        return bindings

    @staticmethod
    def _join(
        a: object, b: object
    ) -> dict[str, frozenset[str]]:
        left: dict[str, frozenset[str]] = dict(a)  # type: ignore[arg-type]
        right: Mapping[str, frozenset[str]] = b  # type: ignore[assignment]
        for name, values in right.items():
            left[name] = left.get(name, frozenset()) | values
        return left

    def solve(self, cfg: CFG) -> dict[int, dict[str, frozenset[str]]]:
        states = solve_forward(
            cfg,
            initial={},
            transfer=self.transfer,
            join=self._join,
        )
        return {index: dict(state) for index, state in states.items()}  # type: ignore[arg-type]
