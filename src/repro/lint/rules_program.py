"""Dataflow- and project-powered analyses: RACE*, DET005, API001.

These rules are what the whole-program engine exists for:

- ``RACE001`` — lock-discipline race detection on the serving path.
  For every class in ``serving/`` / ``experiments/runner.py`` that is
  *concurrency-involved* (creates threads, registers executor
  callbacks, or owns a ``threading.Lock``), every instance-attribute
  write in a method reachable from a concurrent entry point (a thread
  target, an executor-submitted method, or any public method — all of
  which arbitrary threads may call) must happen with a lock held on
  every path.  The :mod:`repro.lint.dataflow` lattice supplies the held
  set, including the repo's conditional-lock idiom (``if self._lock is
  None:`` declares single-threaded mode) and interprocedural entry
  states (a private helper only ever called under the lock inherits it).
- ``RACE002`` — handoff escape check: an object passed to a worker
  (``executor.submit(fn, obj)``, ``threading.Thread(args=(obj,))``)
  must not also be mutated by the submitting thread afterwards outside
  a lock; the worker may be reading it concurrently (threads) or
  pickling it lazily (process pools).
- ``DET005`` — order-sensitive export detection.  DET003 flags raw
  set/``.keys()`` iteration syntactically; DET005 follows the *value*:
  a list built by iterating an unordered container (sets,
  ``.keys()``/``.values()``/``.items()`` without ``sorted()``) that
  flows — directly or through a same-module function's return value —
  into a JSON sink bakes iteration order into exported bytes, which
  ``sort_keys=True`` cannot repair for lists.
- ``API001`` — cross-module symbol hygiene over the project model:
  ``from``-imports of names the source module does not define, and
  ``__all__`` exports no other file in the repo ever references.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from typing import Mapping

from repro.lint.dataflow import (
    CFG,
    SELF_VALUE_OTHER,
    FunctionNode,
    HeldLocks,
    SelfAliases,
    build_cfg,
    dotted_expr,
)
from repro.lint.engine import FileContext, LintRule, register_rule
from repro.lint.findings import Finding
from repro.lint.project import ProjectModel

# Deliberately no __all__: rule classes are reached through the
# register_rule registry (rule_catalog), never imported by name —
# exporting them here is exactly the dead surface API001 flags.


def _under(rel: str, *prefixes: str) -> bool:
    return any(rel == p or rel.startswith(p + "/") for p in prefixes)


#: Method names whose call mutates the receiver in place.  Writes
#: through these count exactly like attribute/subscript stores.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "Lock",
        "RLock",
        "Condition",
    }
)


def _lock_call_in(expr: ast.AST) -> bool:
    """Whether *expr* constructs a lock (incl. ``Lock() if x else None``)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            dotted = dotted_expr(node.func)
            if dotted in _LOCK_FACTORIES:
                return True
    return False


class _ClassModel:
    """Everything RACE001 needs about one class definition."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.methods: dict[str, FunctionNode] = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.lock_attrs: set[str] = set()
        self.thread_targets: set[str] = set()
        self.registers_callbacks = False
        self.creates_threads = False
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                value = sub.value
                targets = (
                    list(sub.targets) if isinstance(sub, ast.Assign) else [sub.target]
                )
                if value is not None and _lock_call_in(value):
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self.lock_attrs.add(target.attr)
            if isinstance(sub, ast.Call):
                dotted = dotted_expr(sub.func)
                if dotted in ("threading.Thread", "Thread"):
                    self.creates_threads = True
                    for keyword in sub.keywords:
                        if keyword.arg == "target":
                            self._note_target(keyword.value)
                elif isinstance(sub.func, ast.Attribute):
                    if sub.func.attr == "submit" and sub.args:
                        self._note_target(sub.args[0])
                    elif sub.func.attr == "add_done_callback":
                        self.registers_callbacks = True
                        if sub.args:
                            self._note_target(sub.args[0])

    def _note_target(self, expr: ast.AST) -> None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.methods
        ):
            self.thread_targets.add(expr.attr)

    @property
    def concurrent(self) -> bool:
        """Whether instances see genuine thread concurrency.

        Creating threads or registering executor callbacks obviously
        qualifies; owning a lock does too — the lock *is* the author's
        declaration that methods race, so the discipline is checkable.
        A class that only submits to a process pool synchronously stays
        out of scope (no shared memory on the far side).
        """
        return bool(
            self.creates_threads or self.registers_callbacks or self.lock_attrs
        )

    def entry_points(self) -> set[str]:
        """Methods arbitrary threads may invoke concurrently."""
        entries = set(self.thread_targets)
        for name in self.methods:
            if not name.startswith("_"):
                entries.add(name)
        return entries


class _MethodFacts:
    """Solved dataflow for one method under one entry lock state."""

    def __init__(
        self,
        fn: FunctionNode,
        is_lock: Callable[[str], bool],
        entry_held: frozenset[str],
    ) -> None:
        self.fn = fn
        self.cfg: CFG = build_cfg(fn)
        self.locks = HeldLocks(is_lock).solve(self.cfg, entry=entry_held)
        self.aliases = SelfAliases().solve(self.cfg)
        #: intra-class call sites: method name -> held sets observed
        self.calls: dict[str, list[frozenset[str]]] = {}
        for index, stmt in self.cfg.stmt_nodes():
            held = self.locks.get(index)
            if held is None:
                continue
            for call in (
                node for node in ast.walk(stmt) if isinstance(node, ast.Call)
            ):
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    self.calls.setdefault(func.attr, []).append(held)


def _attr_written(
    stmt: ast.AST, aliases: Mapping[str, frozenset[str]]
) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(self_attribute, offending_node)`` for writes in *stmt*.

    Covers direct stores (``self.a = ...``, ``self.a.b = ...``,
    ``self.a[k] = ...``), deletes, augmented stores, stores through
    local aliases of self attributes, and in-place mutator calls
    (``self.a.add(x)``).
    """
    if isinstance(stmt, (ast.While,)):
        stmt = stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        stmt = stmt.iter

    def owner_attrs(expr: ast.AST) -> Iterator[str]:
        """Self attributes that *expr* may denote (as a mutation base)."""
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self":
                yield expr.attr
                return
        if isinstance(expr, ast.Name):
            for value in aliases.get(expr.id, frozenset()):
                if value != SELF_VALUE_OTHER:
                    yield value
        if isinstance(expr, ast.Subscript):
            yield from owner_attrs(expr.value)

    targets: list[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                yield target.attr, target
            else:
                for attr in owner_attrs(base):
                    yield attr, target
        elif isinstance(target, ast.Subscript):
            for attr in owner_attrs(target.value):
                yield attr, target
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from _attr_written(
                    ast.Assign(targets=[element], value=ast.Constant(value=None)),
                    aliases,
                )
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
        ):
            for attr in owner_attrs(node.func.value):
                yield attr, node


@register_rule
class LockDisciplineRule(LintRule):
    """RACE001: shared attributes of serving-path classes need their lock.

    A class that owns a lock or spawns threads has declared that its
    instances are shared across threads; from then on *every* write to
    an instance attribute from a method a foreign thread can reach must
    hold a lock on every path.  Reachability is interprocedural within
    the class (a private helper called only under the lock inherits the
    held set), and ``if self._lock is None:`` branches count as locked —
    that is the repo's declared single-threaded mode.  ``__init__`` is
    exempt: the instance has not escaped yet.
    """

    code = "RACE001"
    title = "unlocked write to a shared attribute"
    hint = (
        "hold the class lock (with self._lock:) around the write, or "
        "confine the attribute to the conditional-lock single-thread mode"
    )
    node_types = ()

    _SCOPE = ("src/repro/serving",)
    _SCOPE_FILES = ("src/repro/experiments/runner.py",)

    def applies_to(self, rel_path: str) -> bool:
        return _under(rel_path, *self._SCOPE) or rel_path in self._SCOPE_FILES

    def end_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, ctx)

    def _check_class(
        self, node: ast.ClassDef, ctx: FileContext
    ) -> Iterator[Finding]:
        model = _ClassModel(node)
        if not model.concurrent:
            return
        lock_attrs = model.lock_attrs
        is_lock = lambda key: (  # noqa: E731
            key.startswith("self.") and key[5:] in lock_attrs
        )
        entries = model.entry_points()
        entries.discard("__init__")

        # Fixpoint over entry lock states: an entry point starts bare; a
        # helper's entry state is the intersection over its call sites.
        entry_held: dict[str, frozenset[str]] = {
            name: frozenset() for name in entries
        }
        facts: dict[str, _MethodFacts] = {}
        for _ in range(8):
            changed = False
            facts = {
                name: _MethodFacts(model.methods[name], is_lock, held)
                for name, held in entry_held.items()
                if name in model.methods
            }
            callee_states: dict[str, list[frozenset[str]]] = {}
            for fact in facts.values():
                for callee, states in fact.calls.items():
                    if callee in model.methods:
                        callee_states.setdefault(callee, []).extend(states)
            new_entry: dict[str, frozenset[str]] = {
                name: frozenset() for name in entries
            }
            for callee, states in callee_states.items():
                if callee in entries or callee == "__init__":
                    continue
                merged = states[0]
                for state in states[1:]:
                    merged = merged & state
                new_entry[callee] = merged
            if new_entry.keys() != entry_held.keys() or any(
                new_entry[k] != entry_held.get(k) for k in new_entry
            ):
                entry_held = new_entry
                changed = True
            if not changed:
                break

        for name in sorted(facts):
            fact = facts[name]
            for index, stmt in fact.cfg.stmt_nodes():
                held = fact.locks.get(index)
                if held is None or held:
                    continue  # unreachable, or some lock held
                aliases = fact.aliases.get(index, {})
                for attr, offender in _attr_written(stmt, aliases):
                    if attr in lock_attrs:
                        continue
                    yield self.finding(
                        ctx,
                        offender if hasattr(offender, "lineno") else stmt,
                        f"attribute .{attr} of {node.name} written without "
                        f"a held lock in thread-reachable method {name}()",
                    )


@register_rule
class HandoffEscapeRule(LintRule):
    """RACE002: objects handed to workers must not be mutated afterwards.

    ``executor.submit(fn, obj)`` / ``threading.Thread(args=(obj,))``
    gives another thread (or a lazily-pickling process-pool feeder) a
    reference to ``obj``; the submitting function mutating the same
    object afterwards outside a lock is a data race with its own worker.
    Rebinding the local to a fresh object ends the hazard.
    """

    code = "RACE002"
    title = "mutation of an object already handed to a worker"
    hint = (
        "finish mutating before the handoff, hand over a copy, or guard "
        "both sides with one lock"
    )
    node_types = ()

    _SCOPE = ("src/repro/serving", "src/repro/experiments")

    def applies_to(self, rel_path: str) -> bool:
        return _under(rel_path, *self._SCOPE)

    def end_file(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(fn, ctx)

    @staticmethod
    def _handoff_args(call: ast.Call) -> list[ast.expr]:
        func = call.func
        dotted = dotted_expr(func)
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            return list(call.args[1:]) + [
                kw.value for kw in call.keywords if kw.arg is not None
            ]
        if dotted in ("threading.Thread", "Thread"):
            shipped: list[ast.expr] = []
            for keyword in call.keywords:
                if keyword.arg == "args" and isinstance(
                    keyword.value, (ast.Tuple, ast.List)
                ):
                    shipped.extend(keyword.value.elts)
                elif keyword.arg == "kwargs" and isinstance(
                    keyword.value, ast.Dict
                ):
                    shipped.extend(v for v in keyword.value.values)
            return shipped
        return []

    def _check_function(
        self, fn: FunctionNode, ctx: FileContext
    ) -> Iterator[Finding]:
        cfg = build_cfg(fn)
        lock_states = HeldLocks(lambda key: "lock" in key.lower()).solve(cfg)
        handoffs: list[tuple[int, set[str], set[str]]] = []
        for index, stmt in cfg.stmt_nodes():
            for call in (
                node for node in ast.walk(stmt) if isinstance(node, ast.Call)
            ):
                shipped = self._handoff_args(call)
                if not shipped:
                    continue
                names: set[str] = set()
                attrs: set[str] = set()
                for arg in shipped:
                    if isinstance(arg, ast.Name):
                        names.add(arg.id)
                    elif (
                        isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id == "self"
                    ):
                        attrs.add(arg.attr)
                if names or attrs:
                    handoffs.append((index, names, attrs))
        if not handoffs:
            return
        for start, names, attrs in handoffs:
            reachable = cfg.reachable_from(start)
            # A rebind of the local anywhere downstream means the name no
            # longer denotes the shipped object; drop it entirely rather
            # than risk flagging the fresh one.
            live_names = set(names)
            for index in reachable:
                node = cfg.nodes[index]
                if node.kind != "stmt" or not isinstance(node.stmt, ast.Assign):
                    continue
                for target in node.stmt.targets:
                    if isinstance(target, ast.Name) and target.id in live_names:
                        live_names.discard(target.id)
            for index in sorted(reachable):
                node = cfg.nodes[index]
                if node.kind != "stmt" or node.stmt is None:
                    continue
                held = lock_states.get(index)
                if held is None or held:
                    continue
                yield from self._writes_to(
                    node.stmt, live_names, attrs, ctx
                )

    def _writes_to(
        self,
        stmt: ast.AST,
        names: set[str],
        attrs: set[str],
        ctx: FileContext,
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.While):
            stmt = stmt.test
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            stmt = stmt.iter

        def hits(base: ast.AST) -> str | None:
            if isinstance(base, ast.Name) and base.id in names:
                return base.id
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in attrs
            ):
                return f"self.{base.attr}"
            if isinstance(base, ast.Subscript):
                return hits(base.value)
            return None

        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                owner = hits(target.value)
                if owner is not None:
                    yield self.finding(
                        ctx,
                        target,
                        f"{owner} was handed to a worker above and is "
                        "mutated here by the submitting thread",
                    )
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
            ):
                owner = hits(node.func.value)
                if owner is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"{owner} was handed to a worker above and is "
                        f"mutated here via .{node.func.attr}()",
                    )


# -- DET005 ------------------------------------------------------------------

def _unordered_origin(expr: ast.AST) -> str | None:
    """Describe *expr* when iterating it has no guaranteed stable order."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("keys", "values", "items")
            and not expr.args
        ):
            return f".{func.attr}()"
    return None


@register_rule
class OrderSensitiveExportRule(LintRule):
    """DET005: unordered iteration must not flow into JSON exports.

    DET003 polices the loop syntactically; DET005 follows the value.  A
    list built by iterating a set or a dict view (``.keys()`` /
    ``.values()`` / ``.items()``) without ``sorted()`` carries its
    iteration order as data.  When that list reaches ``json.dump(s)``
    or ``write_json_atomic`` — directly, through a local, or through
    the return value of another function in the same module —
    ``sort_keys=True`` cannot fix it: key sorting orders dict keys, not
    list elements.  Dicts built the same way are exempt (DET004 already
    forces sorted keys on export).
    """

    code = "DET005"
    title = "order-tainted value reaches a JSON export"
    hint = (
        "iterate sorted(...) when building anything that feeds an "
        "export, or sort the list before serialising it"
    )
    node_types = ()

    def applies_to(self, rel_path: str) -> bool:
        return _under(
            rel_path,
            "src/repro/experiments",
            "src/repro/faults",
            "src/repro/network",
            "src/repro/serving",
        )

    def end_file(self, ctx: FileContext) -> Iterator[Finding]:
        functions: dict[str, FunctionNode] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)

        # Pass 1 (to fixpoint): which module functions return
        # order-tainted lists.
        tainted_fns: set[str] = set()
        for _ in range(len(functions) + 1):
            grew = False
            for name, fn in functions.items():
                if name in tainted_fns:
                    continue
                tainted, _sinks = self._analyse(fn, tainted_fns)
                if tainted:
                    tainted_fns.add(name)
                    grew = True
            if not grew:
                break

        # Pass 2: report sink hits everywhere.
        for fn in functions.values():
            _tainted, sinks = self._analyse(fn, tainted_fns)
            for offender, origin in sinks:
                yield self.finding(
                    ctx,
                    offender,
                    f"value built from unordered iteration ({origin}) "
                    "flows into a JSON export",
                )

    @staticmethod
    def _is_sink(call: ast.Call) -> bool:
        dotted = dotted_expr(call.func)
        if dotted in ("json.dump", "json.dumps"):
            return True
        if dotted is not None and dotted.split(".")[-1] == "write_json_atomic":
            return True
        return False

    def _analyse(
        self, fn: FunctionNode, tainted_fns: set[str]
    ) -> tuple[bool, list[tuple[ast.AST, str]]]:
        """(returns-tainted-list?, sink hits) for one function."""
        tainted_locals: dict[str, str] = {}
        returns_tainted = False
        sink_hits: list[tuple[ast.AST, str]] = []

        def expr_taint(expr: ast.AST) -> str | None:
            """Why *expr* is an order-tainted list, if it is."""
            if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
                for gen in expr.generators:
                    origin = _unordered_origin(gen.iter)
                    if origin is not None:
                        return origin
                return None
            if isinstance(expr, ast.Call):
                func = expr.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("list", "tuple")
                    and len(expr.args) == 1
                ):
                    origin = _unordered_origin(expr.args[0])
                    if origin is not None:
                        return origin
                    return expr_taint(expr.args[0])
                if isinstance(func, ast.Name) and func.id in tainted_fns:
                    return f"{func.id}() (order-tainted in this module)"
                return None
            if isinstance(expr, ast.Name):
                return tainted_locals.get(expr.id)
            return None

        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    origin = expr_taint(node.value)
                    if origin is not None:
                        tainted_locals[target.id] = origin
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                origin = _unordered_origin(node.iter)
                if origin is None:
                    continue
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in ("append", "extend", "insert")
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        tainted_locals[sub.func.value.id] = origin

        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                if expr_taint(node.value) is not None:
                    returns_tainted = True
            elif isinstance(node, ast.Call) and self._is_sink(node):
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords if kw.arg is not None
                ]:
                    origin = expr_taint(arg)
                    if origin is not None:
                        sink_hits.append((arg, origin))
        return returns_tainted, sink_hits


# -- API001 ------------------------------------------------------------------

class ProjectRule(LintRule):
    """Base class for rules that run once over the whole project model."""

    project_wide = True

    def check_project(
        self,
        project: ProjectModel,
        lint_files: frozenset[str],
        source_line_for: Callable[[str, int], str],
    ) -> Iterator[Finding]:
        """Yield findings across the model (only for files being linted)."""
        return iter(())


@register_rule
class CrossModuleSymbolRule(ProjectRule):
    """API001: imports must resolve; exports must be used somewhere.

    Two whole-program checks joined on the symbol table: (1) a
    ``from repro.x import name`` whose source module defines no such
    name (nor a submodule of that name) is a latent ImportError that
    per-file linting cannot see; (2) a name a module lists in
    ``__all__`` that no other file in the repo references is dead
    public surface — either the feature lost its callers or the export
    was never wired up.  Package ``__init__`` re-export lists are
    exempt from the dead-export check (they are the external API).
    """

    code = "API001"
    title = "cross-module symbol mismatch"
    hint = (
        "fix the import to a name the module defines, or remove the "
        "unused name from __all__ (and delete the dead code it exports)"
    )

    def check_project(
        self,
        project: ProjectModel,
        lint_files: frozenset[str],
        source_line_for: Callable[[str, int], str],
    ) -> Iterator[Finding]:
        for rel_path in sorted(lint_files):
            info = project.files.get(rel_path)
            if info is None:
                continue
            for edge in info.imports:
                if edge.name in (None, "*"):
                    continue
                if edge.module not in project.modules:
                    continue
                if not project.module_defines(edge.module, edge.name):
                    yield self._make(
                        rel_path,
                        edge.lineno,
                        f"import of {edge.name!r} from {edge.module}, "
                        "which defines no such name",
                        source_line_for,
                    )
            if (
                info.exports
                and _under(rel_path, "src/repro")
                and not rel_path.endswith("__init__.py")
            ):
                for name, lineno in info.exports:
                    if name not in info.defined:
                        continue  # re-export of an import: used by definition
                    if name in info.refs:
                        # A def/class definition does not put its own name
                        # into refs, so this means the module itself uses
                        # the name (constructs it, returns it, annotates
                        # with it) — the export is wired to used code.
                        continue
                    if project.referenced_anywhere_except(name, rel_path):
                        continue
                    yield self._make(
                        rel_path,
                        lineno,
                        f"{name!r} is exported in __all__ but never "
                        "referenced anywhere else in the repo",
                        source_line_for,
                    )

    def _make(
        self,
        rel_path: str,
        lineno: int,
        message: str,
        source_line_for: Callable[[str, int], str],
    ) -> Finding:
        return Finding(
            path=rel_path,
            line=lineno,
            col=0,
            code=self.code,
            message=message,
            hint=self.hint,
            source_line=source_line_for(rel_path, lineno),
        )
