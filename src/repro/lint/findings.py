"""The lint finding record and its baseline fingerprint.

A finding pins a rule violation to a file position.  Its *fingerprint*
deliberately excludes the line number: baselines key findings by
``path::code::normalised-source-line`` so that unrelated edits above a
grandfathered finding do not un-baseline it, while editing the offending
line itself does.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    """Repo-relative, ``/``-separated path of the offending file."""
    line: int
    """1-based line of the offending node."""
    col: int
    """0-based column of the offending node."""
    code: str
    """Rule code, e.g. ``DET001``."""
    message: str
    """What is wrong, phrased for the file's author."""
    hint: str = ""
    """How to fix it (the rule's standing fix hint)."""
    source_line: str = field(default="", compare=False)
    """The stripped source text of the offending line (for fingerprints)."""

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file."""
        normalised = " ".join(self.source_line.split())
        return f"{self.path}::{self.code}::{normalised}"

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable report ordering: path, then position, then code."""
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        """``path:line:col: CODE message (hint)`` single-line form."""
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (used by the ``--format json`` reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def to_payload(self) -> dict[str, object]:
        """Lossless form for worker IPC and the on-disk result cache.

        Unlike :meth:`to_dict` this keeps :attr:`source_line`, so a
        finding revived from the cache still fingerprints identically.
        """
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
            "source_line": self.source_line,
        }

    @classmethod
    def from_payload(cls, data: dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_payload`."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            code=str(data["code"]),
            message=str(data["message"]),
            hint=str(data.get("hint", "")),
            source_line=str(data.get("source_line", "")),
        )
