"""The ``python -m repro.lint`` front-end.

Exit codes: 0 — no non-baselined findings; 1 — findings (or a stale
baseline under ``--strict-baseline``); 2 — usage errors.

The default paths (``src tests``) and baseline location
(``lint-baseline.json`` at the repo root, when present) match the CI
lint gate, so a bare ``python -m repro.lint`` reproduces CI locally.
Results are cached under ``.lint-cache/`` keyed by content hash (pass
``--no-cache`` to disable); ``--jobs auto`` fans files out across
worker processes.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import (
    CACHE_DIR_NAME,
    LintEngine,
    find_repo_root,
    resolve_jobs,
    rule_catalog,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based determinism & invariant checker for this repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif-file",
        metavar="PATH",
        default=None,
        help="also write a SARIF report to PATH (independent of --format, "
        "so one run can gate on text output and feed CI code scanning)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE_NAME} at the repo root, if present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline file with stale fingerprints removed",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="lint only files git reports changed against REF "
        "(default HEAD: working-tree changes, for pre-commit; CI passes "
        "the PR base ref to lint exactly the PR's files)",
    )
    parser.add_argument(
        "--jobs",
        metavar="N",
        default="1",
        help="worker processes for the per-file phase: a number, or "
        "'auto' for the CPU count (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"disable the {CACHE_DIR_NAME}/ content-hash result cache",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="also fail when the baseline contains stale entries",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> int:
    for rule in rule_catalog():
        doc = (rule.__doc__ or "").strip().splitlines()[0]
        print(f"{rule.code}  {doc}")
        print(f"        fix: {rule.hint}")
    return 0


def _changed_files(root: Path, ref: str) -> list[Path]:
    """Python files git reports changed against *ref* (plus untracked)."""
    out = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=ACMR", ref],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    names = sorted(set(out.splitlines()) | set(untracked.splitlines()))
    return [
        root / name
        for name in names
        if name.endswith(".py") and (root / name).is_file()
    ]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    anchor = Path(args.paths[0]) if args.paths else Path.cwd()
    root = find_repo_root(anchor if anchor.is_dir() else anchor.parent)
    select = args.select.split(",") if args.select else None
    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError:
        print(f"error: invalid --jobs value {args.jobs!r}", file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else root / CACHE_DIR_NAME
    try:
        engine = LintEngine(root=root, select=select, jobs=jobs, cache_dir=cache_dir)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.changed is not None:
        try:
            paths = _changed_files(root, args.changed)
        except subprocess.CalledProcessError as exc:
            message = (exc.stderr or "").strip() or f"git diff against {args.changed!r} failed"
            print(f"error: {message}", file=sys.stderr)
            return 2
    elif args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [root / "src", root / "tests"]
    findings = engine.lint(paths)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote {baseline_path} ({len(findings)} finding(s) grandfathered)")
        return 0
    baseline = Baseline.load(baseline_path)
    new, grandfathered, stale = baseline.filter(findings)

    if args.prune_baseline and stale:
        for fingerprint in stale:
            del baseline.fingerprints[fingerprint]
        baseline.save(baseline_path)
        print(
            f"pruned {len(stale)} stale entr{'y' if len(stale) == 1 else 'ies'} "
            f"from {baseline_path}",
            file=sys.stderr,
        )
        stale = []

    from repro.lint.reporting import render_json, render_sarif, render_text

    if args.sarif_file:
        sarif = render_sarif(new, grandfathered, engine.rules)
        Path(args.sarif_file).write_text(sarif + "\n", encoding="utf-8")
    if args.format == "sarif":
        print(render_sarif(new, grandfathered, engine.rules))
    elif args.format == "json":
        print(render_json(new, grandfathered, stale))
    else:
        print(render_text(new, grandfathered, stale))
    if new:
        return 1
    if stale and args.strict_baseline:
        return 1
    return 0
