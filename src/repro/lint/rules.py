"""The repo-specific rule catalog.

Each rule encodes one invariant the reproduction's guarantees rest on;
the rule docstring is the normative statement, the ``hint`` the standing
fix.  Codes group by family:

- ``DET*`` — determinism (byte-identical reruns under one seed)
- ``INV*`` — derived-state invariants of the network fast path
- ``TEL*`` — telemetry naming discipline
- ``CFG*`` — config serialisability

See ``docs/static-analysis.md`` for rationale and the suppression
policy.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.engine import FileContext, LintRule, register_rule
from repro.lint.findings import Finding

# Deliberately no __all__: rule classes are reached through the
# register_rule registry (rule_catalog), never imported by name —
# exporting them here is exactly the dead surface API001 flags.


def _under(rel: str, *prefixes: str) -> bool:
    """Whether *rel* lies at or below any of the given directory prefixes."""
    return any(rel == p or rel.startswith(p + "/") for p in prefixes)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTrackingRule(LintRule):
    """Base for rules that must resolve names through the file's imports.

    The alias maps are read off the file's
    :class:`~repro.lint.project.ModuleInfo` summary — the same import
    resolution the whole-program model uses — so relative imports
    arrive pre-resolved to absolute dotted modules and every
    import-aware rule agrees with the project graph.
    """

    def begin_file(self, ctx: FileContext) -> None:
        #: local alias -> imported module path ("np" -> "numpy")
        self.module_alias: dict[str, str] = {}
        #: local name -> (module path, original name) for from-imports
        self.from_names: dict[str, tuple[str, str]] = {}
        for edge in ctx.module_info.imports:
            if edge.name is None:
                self.module_alias[edge.alias] = edge.module
            elif edge.name != "*":
                self.from_names[edge.alias] = (edge.module, edge.name)

    def resolve_call(self, func: ast.AST) -> tuple[str, str] | None:
        """Resolve a call's func to ``(module, dotted_tail)`` via imports.

        ``time.monotonic()`` -> ("time", "monotonic"); with ``import
        datetime as dt``, ``dt.datetime.now()`` -> ("datetime",
        "datetime.now"); with ``from datetime import datetime``,
        ``datetime.now()`` -> ("datetime", "datetime.now").  Returns
        None when the root is not an imported module or class.
        """
        dotted = _dotted(func)
        if dotted is None:
            return None
        root, _, tail = dotted.partition(".")
        if root in self.module_alias:
            module = self.module_alias[root]
            if "." in module and not tail:
                return None
            if "." in module:  # e.g. import numpy.random as nr
                mod_root, _, mod_tail = module.partition(".")
                return mod_root, f"{mod_tail}.{tail}"
            return module, tail
        if root in self.from_names:
            module, original = self.from_names[root]
            tail_full = original if not tail else f"{original}.{tail}"
            return module, tail_full
        return None


@register_rule
class WallClockRule(_ImportTrackingRule):
    """DET001: no wall-clock reads outside ``telemetry/``.

    Simulation state must be a pure function of the seed and the config.
    ``time.time``/``time.monotonic``/``datetime.now`` smuggle the host
    clock into that state and break bit-identical replay.  Wall-clock
    profiling belongs to the telemetry subsystem (tracer spans), which
    keeps it out of seed-stable data.  ``time.perf_counter`` is audited
    too: it is allowed in benchmark harnesses (outside ``src/``) and in
    the explicitly declared wall-measurement sites
    (:data:`_PERF_COUNTER_ALLOWED` — the scaling sweep's throughput
    timers and the serving recovery lane's recovery-time measurement),
    but nowhere else — in particular not in the serving durability
    write paths, which must stay virtual-clock only.
    """

    code = "DET001"
    title = "wall-clock read in a simulation path"
    hint = (
        "derive times from the simulation clock (Simulator.now); "
        "wall-clock spans belong in repro.telemetry"
    )
    node_types = (ast.Call,)

    _FORBIDDEN = {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("datetime", "datetime.now"),
        ("datetime", "datetime.utcnow"),
        ("datetime", "datetime.today"),
        ("datetime", "date.today"),
    }

    #: perf_counter is wall-clock too — these call sites are forbidden
    #: except in the declared measurement modules below.
    _PROFILING = {
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
    }

    #: Modules allowed to read perf_counter: wall-time *measurement*
    #: that decorates reports without feeding simulation state.
    _PERF_COUNTER_ALLOWED = {
        "src/repro/experiments/scaling.py",
        "src/repro/serving/recovery.py",
    }

    def applies_to(self, rel_path: str) -> bool:
        return _under(rel_path, "src/repro") and not _under(
            rel_path, "src/repro/telemetry"
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = self.resolve_call(node.func)
        if resolved in self._FORBIDDEN:
            module, tail = resolved
            yield self.finding(
                ctx, node, f"wall-clock call {module}.{tail}() in a sim path"
            )
        elif (
            resolved in self._PROFILING
            and ctx.rel_path not in self._PERF_COUNTER_ALLOWED
        ):
            module, tail = resolved
            yield self.finding(
                ctx,
                node,
                f"wall-clock call {module}.{tail}() outside the declared "
                "measurement sites",
            )


@register_rule
class GlobalRandomRule(_ImportTrackingRule):
    """DET002: no global-state RNG calls, anywhere.

    ``random.random()`` and ``numpy.random.rand()`` draw from hidden
    process-global state, so any new caller perturbs every stream drawn
    after it and reruns stop being comparable.  All randomness must come
    from seeded constructors — :class:`repro.util.rng.RngRegistry`
    streams (named, independent per component) or an explicit
    ``numpy.random.default_rng(seed)`` / ``random.Random(seed)``.
    """

    code = "DET002"
    title = "global-state RNG call"
    hint = (
        "draw from a named RngRegistry stream (repro.util.rng) or a "
        "seeded random.Random / numpy.random.default_rng instance"
    )
    node_types = (ast.Call,)

    #: Instance/seeded constructors that are fine to reference.
    _NUMPY_ALLOWED = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
    _STDLIB_ALLOWED = {"Random"}

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = self.resolve_call(node.func)
        if resolved is None:
            return
        module, tail = resolved
        if module == "random":
            if "." not in tail and tail not in self._STDLIB_ALLOWED:
                yield self.finding(
                    ctx, node, f"global-state RNG call random.{tail}()"
                )
        elif module == "numpy":
            prefix, _, leaf = tail.rpartition(".")
            if prefix == "random" and leaf not in self._NUMPY_ALLOWED:
                yield self.finding(
                    ctx, node, f"global-state RNG call numpy.random.{leaf}()"
                )


@register_rule
class UnsortedIterationRule(LintRule):
    """DET003: no unordered-container iteration in report-feeding packages.

    ``experiments/``, ``faults/``, ``network/`` and ``serving/`` produce
    the data that lands in reports and exported JSON (for ``serving/``,
    the byte-compared trace files and replay reports).  Iterating a set
    (or a raw ``.keys()`` view) there makes row order an accident of
    hashing or insertion history; an explicit ``sorted()`` makes the
    ordering part of the contract.
    """

    code = "DET003"
    title = "unordered iteration in a report path"
    hint = "wrap the iterable in sorted(...) to pin the ordering"
    node_types = (ast.For, ast.ListComp, ast.SetComp, ast.DictComp,
                  ast.GeneratorExp, ast.Call)

    def applies_to(self, rel_path: str) -> bool:
        return _under(
            rel_path,
            "src/repro/experiments",
            "src/repro/faults",
            "src/repro/network",
            "src/repro/serving",
        )

    @staticmethod
    def _unordered(expr: ast.AST) -> str | None:
        """Describe *expr* when it is an unordered/view iterable."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id in (
                "set",
                "frozenset",
            ):
                return f"{expr.func.id}(...)"
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "keys"
                and not expr.args
            ):
                return ".keys()"
        return None

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        sources: list[ast.AST] = []
        if isinstance(node, ast.For):
            sources.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            sources.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
            ):
                sources.append(node.args[0])
        for expr in sources:
            what = self._unordered(expr)
            if what is not None:
                yield self.finding(
                    ctx,
                    expr,
                    f"iterating {what} without sorted() in a report path",
                )


@register_rule
class UnsortedJsonRule(_ImportTrackingRule):
    """DET004: JSON exports must pass ``sort_keys=True``.

    Every artifact the repo ships (run summaries, sweep checkpoints,
    resilience reports, telemetry snapshots) is compared byte-for-byte
    across reruns; an export without ``sort_keys=True`` ties the byte
    stream to dict construction order.  ``json.loads(json.dumps(x))``
    round-trips are exempt — the intermediate string is never persisted.
    """

    code = "DET004"
    title = "JSON export without sort_keys=True"
    hint = "pass sort_keys=True so exported artifacts are byte-stable"
    node_types = (ast.Call,)

    def applies_to(self, rel_path: str) -> bool:
        return _under(rel_path, "src/repro")

    def begin_file(self, ctx: FileContext) -> None:
        super().begin_file(ctx)
        self._exempt: set[int] = set()

    def _is_json_call(self, func: ast.AST, names: tuple[str, ...]) -> bool:
        resolved = self.resolve_call(func)
        return resolved is not None and resolved[0] == "json" and resolved[1] in names

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        # Parents are visited before children (pre-order walk), so mark
        # round-tripped dumps before the dumps node itself is dispatched.
        if self._is_json_call(node.func, ("loads",)) and node.args:
            inner = node.args[0]
            if isinstance(inner, ast.Call) and self._is_json_call(
                inner.func, ("dumps",)
            ):
                self._exempt.add(id(inner))
        if not self._is_json_call(node.func, ("dump", "dumps")):
            return
        if id(node) in self._exempt:
            return
        for keyword in node.keywords:
            if keyword.arg is None:  # **kwargs splat: cannot see inside
                return
            if keyword.arg == "sort_keys":
                value = keyword.value
                if isinstance(value, ast.Constant) and value.value is False:
                    break  # explicit False: flag it
                return
        yield self.finding(
            ctx, node, "json export without sort_keys=True"
        )


@register_rule
class DerivedFlagRule(LintRule):
    """INV001: ``_transparent`` / ``_fused_uplink`` are derived, never set.

    The fused network fast path is only sound because these flags are
    recomputed from channel parameters by ``WirelessChannel`` and
    ``WirelessGateway._refresh_fused``.  Hand-assigning them elsewhere
    re-introduces the stale-flag bug the PR-4 regression tests guard
    against.  Tests that force the slow path on purpose must carry an
    inline ``# lint: disable=INV001`` stating why.
    """

    code = "INV001"
    title = "assignment to a derived fast-path flag"
    hint = (
        "mutate the channel via configure()/degrade()/restore() and let "
        "channel.py/gateway.py recompute the flag"
    )
    node_types = (ast.Assign, ast.AnnAssign, ast.AugAssign)

    _FLAGS = ("_transparent", "_fused_uplink")
    _OWNERS = (
        "src/repro/network/channel.py",
        "src/repro/network/gateway.py",
    )

    def applies_to(self, rel_path: str) -> bool:
        return rel_path not in self._OWNERS

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            targets: list[ast.AST] = list(node.targets)
        else:
            targets = [node.target]  # type: ignore[attr-defined]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr in self._FLAGS:
                yield self.finding(
                    ctx,
                    target,
                    f"assignment to derived flag .{target.attr} outside "
                    "network/channel.py / network/gateway.py",
                )


@register_rule
class PrivatePeekRule(LintRule):
    """INV002: no reads of another module's private attributes.

    A ``_name`` attribute is a contract between a class and its own
    module; code elsewhere that peeks at it (``obj._serving``,
    ``channel._burst``) couples itself to internals that are free to
    change without notice — the harness's old ``associations._serving``
    read is the motivating bug.  Reads of ``self._x``/``cls._x`` are
    fine, as is touching any ``_name`` the *current* module itself
    defines (module-level privacy: helper classes in one file may share
    internals).  The few deliberate peeks on the network fast path are
    grandfathered in ``lint-baseline.json``; new ones need a public
    accessor instead.
    """

    code = "INV002"
    title = "cross-module private-attribute peek"
    hint = (
        "expose a public accessor/property on the owning class instead "
        "of reading its _private attribute from outside its module"
    )
    node_types = (ast.Attribute,)

    def applies_to(self, rel_path: str) -> bool:
        return _under(rel_path, "src/repro")

    def begin_file(self, ctx: FileContext) -> None:
        #: every _name this module itself defines: self/cls attribute
        #: assignments plus anything bound in a class body (methods,
        #: class attributes, annotations).
        defined: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    list(node.targets)
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in ("self", "cls")
                    ):
                        defined.add(target.attr)
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        defined.add(stmt.name)
                    elif isinstance(stmt, ast.Assign):
                        for t in stmt.targets:
                            if isinstance(t, ast.Name):
                                defined.add(t.id)
                    elif isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        defined.add(stmt.target.id)
        self._module_private = defined

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Attribute)
        if not isinstance(node.ctx, ast.Load):
            return
        name = node.attr
        if not name.startswith("_") or name.startswith("__"):
            return
        receiver = node.value
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            return
        if name in self._module_private:
            return
        yield self.finding(
            ctx,
            node,
            f"read of private attribute .{name} on an object from "
            "another module",
        )


@register_rule
class MetricNameRule(_ImportTrackingRule):
    """TEL001: telemetry metric names are literal, dotted, lowercase.

    Dashboards, docs and grep all key on metric names; a name built with
    an f-string or a variable cannot be found by reading the code, and a
    camel-cased one breaks the ``net.arq.retransmits`` convention every
    exporter assumes.  Per-entity variation belongs in labels
    (``counter("net.channel.sent", channel=name)``), not the name.
    """

    code = "TEL001"
    title = "non-literal or badly-formed metric name"
    hint = (
        "use a literal dotted lowercase name (e.g. 'net.queue.depth') "
        "and put variable parts into labels"
    )
    node_types = (ast.Call,)

    _METHODS = ("counter", "gauge", "histogram")
    _NAME_RE = re.compile(r"[a-z0-9_]+(\.[a-z0-9_]+)+")

    def applies_to(self, rel_path: str) -> bool:
        return _under(rel_path, "src/repro") and not _under(
            rel_path, "src/repro/telemetry"
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._METHODS:
            return
        # Module-level functions that merely share a method name (e.g.
        # numpy.histogram) are not telemetry instruments: skip calls whose
        # receiver is an imported module.
        if isinstance(func.value, ast.Name) and func.value.id in self.module_alias:
            return
        name_expr: ast.AST | None = node.args[0] if node.args else None
        if name_expr is None:
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_expr = keyword.value
                    break
        if name_expr is None:
            return
        if not isinstance(name_expr, ast.Constant) or not isinstance(
            name_expr.value, str
        ):
            yield self.finding(
                ctx,
                name_expr,
                f"metric name passed to .{func.attr}() is not a string "
                "literal (not greppable)",
            )
        elif not self._NAME_RE.fullmatch(name_expr.value):
            yield self.finding(
                ctx,
                name_expr,
                f"metric name {name_expr.value!r} is not dotted lowercase",
            )


@register_rule
class ConfigDefaultRule(LintRule):
    """CFG001: config dataclass defaults must be config_io-serialisable.

    ``*Config`` / ``*Spec`` dataclasses round-trip through TOML/JSON
    (``experiments.config_io``) and are embedded in sweep checkpoints.
    A default that is an arbitrary import-time expression — a direct
    call, a lambda factory, a mutable literal — either breaks the
    round-trip or silently shares state between instances.  Allowed:
    literals, tuples of literals, named constants, enum members, and
    ``field(default_factory=<named callable>)``.
    """

    code = "CFG001"
    title = "non-serialisable config dataclass default"
    hint = (
        "use a literal/named-constant default, or "
        "field(default_factory=SomeCallable) for structured fields"
    )
    node_types = (ast.ClassDef,)

    def applies_to(self, rel_path: str) -> bool:
        return _under(rel_path, "src/repro")

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            dotted = _dotted(target)
            if dotted in ("dataclass", "dataclasses.dataclass"):
                return True
        return False

    def _default_ok(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Constant):
            return True
        if isinstance(expr, ast.UnaryOp) and isinstance(
            expr.op, (ast.USub, ast.UAdd)
        ):
            return self._default_ok(expr.operand)
        if isinstance(expr, ast.Tuple):
            return all(self._default_ok(el) for el in expr.elts)
        if isinstance(expr, ast.Attribute):
            return _dotted(expr) is not None  # enum member / namespaced const
        if isinstance(expr, ast.Name):
            return expr.id.isupper() or expr.id[:1].isupper()
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted not in ("field", "dataclasses.field"):
                return False
            for keyword in expr.keywords:
                if keyword.arg == "default":
                    if not self._default_ok(keyword.value):
                        return False
                elif keyword.arg == "default_factory":
                    if _dotted(keyword.value) is None:
                        return False  # lambda or computed factory
            return True
        return False

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        if not node.name.endswith(("Config", "Spec")):
            return
        if not self._is_dataclass(node):
            return
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                continue
            if not self._default_ok(stmt.value):
                target = stmt.target
                field_name = target.id if isinstance(target, ast.Name) else "?"
                yield self.finding(
                    ctx,
                    stmt.value,
                    f"default of {node.name}.{field_name} is not a "
                    "config_io-serialisable expression",
                )
