"""The whole-program project model: symbols, imports, class attributes.

Per-file rules see one tree at a time; the analyses added with the
whole-program engine (``API001`` cross-module symbol checks, the
project-aware import resolution every ``_ImportTrackingRule`` now rides
on) need a repo-wide view.  :class:`ProjectModel` provides it as a
*summary* — one :class:`ModuleInfo` per file holding the module's
defined names, ``__all__`` exports, resolved import edges, class
attribute inventory and the set of identifiers it references — rather
than retained ASTs, so the model is cheap to hold for a 230+-file repo,
JSON-serialisable, and cacheable by content hash (a file whose bytes
did not change is never re-parsed; see :class:`ModelCache`).

Import edges resolve ``from``-imports, aliases and relative imports the
same way DET002's per-file tracker always has, but to *absolute dotted
module names*, so the import graph can be joined against the symbol
table: ``from ..broker import GridBroker`` inside
``repro.serving.store`` becomes an edge to module ``repro.broker``
importing name ``GridBroker``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "ImportEdge",
    "ClassSummary",
    "ModuleInfo",
    "ProjectModel",
    "ModelCache",
    "module_name_for",
    "extract_module",
    "content_hash",
]

#: Bump when the extracted summary shape changes: stale cache entries
#: from older engine versions must never be reused.
MODEL_VERSION = 1


def content_hash(source: str) -> str:
    """Stable identity of one file's bytes (sha256 hex, truncated)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:24]


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/``-rooted files resolve to their importable name
    (``src/repro/a/b.py`` -> ``repro.a.b``); everything else keeps its
    directory chain (``tests/lint/test_cli.py`` -> ``tests.lint.test_cli``)
    so test/bench modules still get unique graph nodes.
    """
    parts = list(Path(rel_path).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class ImportEdge:
    """One imported binding: *alias* in this module names *name* of *module*.

    ``name`` is ``None`` for plain ``import X [as alias]`` (the binding
    is the module object itself) and ``"*"`` for star imports.
    """

    module: str
    name: str | None
    alias: str
    lineno: int

    def to_list(self) -> list[Any]:
        return [self.module, self.name, self.alias, self.lineno]

    @classmethod
    def from_list(cls, row: Sequence[Any]) -> "ImportEdge":
        return cls(row[0], row[1], row[2], int(row[3]))


@dataclass
class ClassSummary:
    """Attribute inventory of one class definition."""

    name: str
    lineno: int
    bases: tuple[str, ...]
    #: methods defined directly in the class body
    methods: tuple[str, ...]
    #: every attribute the class binds: ``self.x = ...`` in any method
    #: plus class-level assignments/annotations
    attributes: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attributes": list(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClassSummary":
        return cls(
            name=data["name"],
            lineno=int(data["lineno"]),
            bases=tuple(data["bases"]),
            methods=tuple(data["methods"]),
            attributes=tuple(data["attributes"]),
        )


@dataclass
class ModuleInfo:
    """The whole-program summary of one python file."""

    rel_path: str
    module: str
    hash: str
    #: every top-level binding (defs, classes, assignments, imports),
    #: including those under top-level ``if``/``try`` arms
    defined: frozenset[str]
    #: ``__all__`` entries with the lineno of each string constant, or
    #: None when the module has no statically-resolvable ``__all__``
    exports: tuple[tuple[str, int], ...] | None
    imports: tuple[ImportEdge, ...]
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: every identifier the module mentions (Name ids + Attribute attrs);
    #: the usage side of the cross-module dead-symbol check
    refs: frozenset[str] = frozenset()
    #: a module-level ``__getattr__`` makes its exports dynamic — the
    #: undefined-import check must not second-guess it
    dynamic: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "rel_path": self.rel_path,
            "module": self.module,
            "hash": self.hash,
            "defined": sorted(self.defined),
            "exports": (
                None
                if self.exports is None
                else [[name, line] for name, line in self.exports]
            ),
            "imports": [edge.to_list() for edge in self.imports],
            "classes": {
                name: cls.to_dict() for name, cls in sorted(self.classes.items())
            },
            "refs": sorted(self.refs),
            "dynamic": self.dynamic,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleInfo":
        exports = data["exports"]
        return cls(
            rel_path=data["rel_path"],
            module=data["module"],
            hash=data["hash"],
            defined=frozenset(data["defined"]),
            exports=(
                None
                if exports is None
                else tuple((name, int(line)) for name, line in exports)
            ),
            imports=tuple(ImportEdge.from_list(row) for row in data["imports"]),
            classes={
                name: ClassSummary.from_dict(raw)
                for name, raw in data["classes"].items()
            },
            refs=frozenset(data["refs"]),
            dynamic=bool(data["dynamic"]),
        )


def _resolve_relative(package_parts: list[str], level: int, module: str | None) -> str:
    """Absolute dotted module for a level-*level* relative import."""
    if level <= 0:
        return module or ""
    base = package_parts[: len(package_parts) - (level - 1)]
    if module:
        base = base + module.split(".")
    return ".".join(base)


def _dotted_name(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _top_level_bindings(body: Iterable[ast.stmt], into: set[str]) -> None:
    """Collect names bound by *body*, descending into if/try/with arms.

    Function and class bodies are *not* descended: a name bound there is
    not a module attribute.
    """
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            into.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                _binding_names(target, into)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            _binding_names(stmt.target, into)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                into.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name != "*":
                    into.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            _top_level_bindings(stmt.body, into)
            _top_level_bindings(stmt.orelse, into)
        elif isinstance(stmt, ast.Try):
            _top_level_bindings(stmt.body, into)
            for handler in stmt.handlers:
                _top_level_bindings(handler.body, into)
            _top_level_bindings(stmt.orelse, into)
            _top_level_bindings(stmt.finalbody, into)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            _top_level_bindings(stmt.body, into)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            _binding_names(stmt.target, into)
            _top_level_bindings(stmt.body, into)
            _top_level_bindings(stmt.orelse, into)


def _binding_names(target: ast.AST, into: set[str]) -> None:
    if isinstance(target, ast.Name):
        into.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _binding_names(element, into)
    elif isinstance(target, ast.Starred):
        _binding_names(target.value, into)


def _extract_exports(
    body: Iterable[ast.stmt],
) -> tuple[tuple[str, int], ...] | None:
    """``__all__`` entries (with linenos) when statically resolvable."""
    for stmt in body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None  # computed __all__: give up, stay silent
        entries: list[tuple[str, int]] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                entries.append((element.value, element.lineno))
            else:
                return None
        return tuple(entries)
    return None


def _extract_class(node: ast.ClassDef) -> ClassSummary:
    methods: list[str] = []
    attributes: set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.append(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    attributes.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            attributes.add(stmt.target.id)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            raw_targets = (
                list(sub.targets) if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in raw_targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attributes.add(target.attr)
    bases = tuple(
        name for name in (_dotted_name(base) for base in node.bases) if name
    )
    return ClassSummary(
        name=node.name,
        lineno=node.lineno,
        bases=bases,
        methods=tuple(methods),
        attributes=tuple(sorted(attributes)),
    )


def extract_module(rel_path: str, source: str, tree: ast.Module) -> ModuleInfo:
    """Summarise one parsed file into a :class:`ModuleInfo`."""
    module = module_name_for(rel_path)
    # Package context for relative imports: a plain module resolves
    # level-1 against its containing package, an __init__ against itself.
    if rel_path.endswith("__init__.py"):
        containing = module.split(".") if module else []
    else:
        containing = module.split(".")[:-1]

    defined: set[str] = set()
    _top_level_bindings(tree.body, defined)
    exports = _extract_exports(tree.body)

    imports: list[ImportEdge] = []
    classes: dict[str, ClassSummary] = {}
    refs: set[str] = set()
    dynamic = False
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__getattr__":
            dynamic = True
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports.append(
                    ImportEdge(
                        module=target, name=None, alias=local, lineno=node.lineno
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            target = (
                _resolve_relative(containing, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            if not target:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                imports.append(
                    ImportEdge(
                        module=target,
                        name=alias.name,
                        alias=local,
                        lineno=node.lineno,
                    )
                )
        elif isinstance(node, ast.ClassDef):
            classes.setdefault(node.name, _extract_class(node))
        elif isinstance(node, ast.Name):
            refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            refs.add(node.attr)
    return ModuleInfo(
        rel_path=rel_path,
        module=module,
        hash=content_hash(source),
        defined=frozenset(defined),
        exports=exports,
        imports=tuple(imports),
        classes=classes,
        refs=frozenset(refs),
        dynamic=dynamic,
    )


class ModelCache:
    """Content-hash keyed persistence for :class:`ModuleInfo` summaries.

    One JSON document (sorted keys, so reruns rewrite identical bytes)
    maps ``hash -> summary``.  Entries are re-keyed on every save to
    exactly the hashes still in use, so the file cannot grow without
    bound as the repo churns.
    """

    def __init__(self, path: Path | None) -> None:
        self.path = path
        self._entries: dict[str, dict[str, Any]] = {}
        self._used: set[str] = set()
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                data = {}
            if data.get("version") == MODEL_VERSION and isinstance(
                data.get("entries"), dict
            ):
                self._entries = data["entries"]

    def get(self, file_hash: str, rel_path: str) -> ModuleInfo | None:
        raw = self._entries.get(file_hash)
        if raw is None or raw.get("rel_path") != rel_path:
            return None
        self._used.add(file_hash)
        try:
            return ModuleInfo.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, info: ModuleInfo) -> None:
        self._entries[info.hash] = info.to_dict()
        self._used.add(info.hash)

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "version": MODEL_VERSION,
            "entries": {
                key: self._entries[key]
                for key in sorted(self._used)
                if key in self._entries
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )


class ProjectModel:
    """Repo-wide symbol table, import graph and attribute inventory."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        #: rel_path -> summary
        self.files = modules
        #: dotted module name -> summary (first writer wins on collision)
        self.modules: dict[str, ModuleInfo] = {}
        for info in modules.values():
            self.modules.setdefault(info.module, info)

    @classmethod
    def build(
        cls,
        root: Path,
        files: Sequence[Path],
        *,
        cache: ModelCache | None = None,
    ) -> "ProjectModel":
        """Summarise *files* (skipping unparseable ones) into a model."""
        modules: dict[str, ModuleInfo] = {}
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError:
                continue
            rel = _rel_path(root, path)
            file_hash = content_hash(source)
            if cache is not None:
                cached = cache.get(file_hash, rel)
                if cached is not None:
                    modules[rel] = cached
                    continue
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            info = extract_module(rel, source, tree)
            modules[rel] = info
            if cache is not None:
                cache.put(info)
        if cache is not None:
            cache.save()
        return cls(modules)

    # -- the joins the cross-module rules run on ---------------------------
    def module_defines(self, module: str, name: str) -> bool:
        """Whether *module* (or a submodule of that name) binds *name*."""
        info = self.modules.get(module)
        if info is None:
            return True  # outside the model: stay silent
        if info.dynamic or name in info.defined:
            return True
        if any(edge.name == "*" for edge in info.imports):
            return True  # star import: definitions unknowable
        return f"{module}.{name}" in self.modules

    def import_graph(self) -> dict[str, frozenset[str]]:
        """Module -> imported in-project modules (the dependency graph)."""
        graph: dict[str, frozenset[str]] = {}
        for info in self.files.values():
            targets = {
                edge.module
                for edge in info.imports
                if edge.module in self.modules
            }
            graph[info.module] = frozenset(targets)
        return graph

    def referenced_anywhere_except(self, name: str, rel_path: str) -> bool:
        """Whether *name* is mentioned in any file other than *rel_path*.

        Both reference forms count: identifier/attribute mentions
        (``info.refs``) and ``from``-imports of the name — an importing
        ``__init__.py`` re-export never mentions the name as an
        expression, only as an ``import`` alias.
        """
        for other_rel, info in self.files.items():
            if other_rel == rel_path:
                continue
            if name in info.refs:
                return True
            for edge in info.imports:
                if edge.name == name or edge.alias == name:
                    return True
        return False


def _rel_path(root: Path, path: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()
