"""The committed baseline of grandfathered findings.

A baseline lets the lint gate go strict *now* while pre-existing
findings are burned down over time: fingerprints listed in the baseline
file do not fail the run, everything else does.  Fingerprints are
line-number independent (see :class:`repro.lint.findings.Finding`), so
edits elsewhere in a file do not churn the baseline; editing the
offending line itself removes its protection, which is the point.

The file is JSON with sorted keys so diffs stay reviewable::

    {
      "version": 1,
      "fingerprints": {
        "src/repro/foo.py::DET004::json.dumps(data)": 1
      }
    }

Counts allow several identical offending lines in one file.  Stale
entries (baselined findings that no longer occur) are reported by the
CLI so the file shrinks monotonically.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.lint.findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "lint-baseline.json"
_VERSION = 1


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: dict[str, int] | None = None) -> None:
        self.fingerprints = Counter(
            {fp: int(n) for fp, n in (fingerprints or {}).items() if n > 0}
        )

    # -- persistence -------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != _VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {_VERSION})"
            )
        fingerprints = data.get("fingerprints", {})
        if not isinstance(fingerprints, dict):
            raise ValueError(f"malformed baseline file {path}")
        return cls(fingerprints)

    def save(self, path: str | Path) -> Path:
        """Write this baseline as sorted-key JSON; returns the path."""
        path = Path(path)
        payload = {
            "version": _VERSION,
            "fingerprints": dict(sorted(self.fingerprints.items())),
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline that grandfathers exactly *findings*."""
        baseline = cls()
        baseline.fingerprints = Counter(f.fingerprint for f in findings)
        return baseline

    # -- filtering ---------------------------------------------------------
    def filter(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding], list[str]]:
        """Split *findings* into (new, grandfathered) and list stale entries.

        Each baseline entry absorbs at most its count of matching
        findings; surplus matches are new.  Entries with no matching
        finding at all are *stale* and should be pruned from the file.
        """
        budget = Counter(self.fingerprints)
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            if budget[finding.fingerprint] > 0:
                budget[finding.fingerprint] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        matched = self.fingerprints - budget
        stale = sorted(fp for fp in self.fingerprints if matched[fp] == 0)
        return new, grandfathered, stale

    def __len__(self) -> int:
        return sum(self.fingerprints.values())
