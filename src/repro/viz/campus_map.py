"""Top-down ASCII rendering of the campus and (optionally) node positions.

Buildings draw as ``#`` outlines labelled with their id, roads as ``.``
along their centerlines, gates as ``G``; mobile nodes overlay as ``o``
(human) / ``v`` (vehicle).  Useful for eyeballing mobility in examples and
for debugging region attribution.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.campus import Campus
from repro.geometry import Vec2
from repro.mobility.node import MobileNode
from repro.mobility.states import NodeKind

__all__ = ["render_campus"]


def _bounds_of(campus: Campus) -> tuple[float, float, float, float]:
    xs: list[float] = []
    ys: list[float] = []
    for region in campus.regions.values():
        xs.extend((region.bounds.x_min, region.bounds.x_max))
        ys.extend((region.bounds.y_min, region.bounds.y_max))
    return min(xs), min(ys), max(xs), max(ys)


class _Canvas:
    def __init__(
        self, campus: Campus, width: int, height: int
    ) -> None:
        self.width = width
        self.height = height
        x_min, y_min, x_max, y_max = _bounds_of(campus)
        margin = 10.0
        self.x_min, self.y_min = x_min - margin, y_min - margin
        self.x_span = (x_max - x_min) + 2 * margin
        self.y_span = (y_max - y_min) + 2 * margin
        self.cells = [[" "] * width for _ in range(height)]

    def to_cell(self, point: Vec2) -> tuple[int, int]:
        cx = int((point.x - self.x_min) / self.x_span * (self.width - 1))
        # The y-axis is flipped: row 0 is the campus's north edge.
        cy = int((1.0 - (point.y - self.y_min) / self.y_span) * (self.height - 1))
        return (
            min(max(cx, 0), self.width - 1),
            min(max(cy, 0), self.height - 1),
        )

    def plot(self, point: Vec2, char: str) -> None:
        cx, cy = self.to_cell(point)
        self.cells[cy][cx] = char

    def text(self, point: Vec2, label: str) -> None:
        cx, cy = self.to_cell(point)
        for i, char in enumerate(label):
            if 0 <= cx + i < self.width:
                self.cells[cy][cx + i] = char

    def render(self) -> str:
        return "\n".join("".join(row) for row in self.cells)


def render_campus(
    campus: Campus,
    nodes: Iterable[MobileNode] = (),
    *,
    width: int = 78,
    height: int = 30,
) -> str:
    """Render the campus (and node markers) as a text block."""
    canvas = _Canvas(campus, width, height)

    for region in campus.roads():
        centerline = region.centerline
        assert centerline is not None
        steps = max(int(centerline.length), 2)
        for i in range(steps + 1):
            canvas.plot(centerline.point_at(centerline.length * i / steps), ".")

    for region in campus.buildings():
        b = region.bounds
        corners = [
            Vec2(b.x_min, b.y_min),
            Vec2(b.x_max, b.y_min),
            Vec2(b.x_max, b.y_max),
            Vec2(b.x_min, b.y_max),
        ]
        for a, c in zip(corners, corners[1:] + corners[:1]):
            steps = max(int(a.distance_to(c) / 4), 1)
            for i in range(steps + 1):
                canvas.plot(a.lerp(c, i / steps), "#")

    for node in nodes:
        marker = "v" if node.kind is NodeKind.VEHICLE else "o"
        canvas.plot(node.position, marker)

    # Labels go last so node markers never make a region unreadable.
    for region in campus.buildings():
        canvas.text(region.bounds.center, region.region_id)
    for name in ("gateA", "gateB"):
        try:
            canvas.text(campus.node_pos(name), "G")
        except KeyError:
            continue

    return canvas.render()
