"""ASCII charts: sparklines, multi-series line charts, bar charts."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.util.timeseries import TimeSeries

__all__ = ["sparkline", "line_chart", "bar_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _resample(values: np.ndarray, width: int) -> np.ndarray:
    """Average *values* into *width* equal buckets (last may be short)."""
    if values.size <= width:
        return values
    edges = np.linspace(0, values.size, width + 1).astype(int)
    return np.array(
        [values[a:b].mean() if b > a else values[min(a, values.size - 1)]
         for a, b in zip(edges[:-1], edges[1:])]
    )


def sparkline(values: Iterable[float], *, width: int = 60) -> str:
    """A one-line unicode sparkline of *values* (resampled to *width*)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    arr = _resample(arr, width)
    low, high = float(arr.min()), float(arr.max())
    if high == low:
        return _SPARK_LEVELS[0] * arr.size
    scaled = (arr - low) / (high - low) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def line_chart(
    series: dict[str, TimeSeries],
    *,
    width: int = 64,
    height: int = 12,
    title: str = "",
) -> str:
    """A multi-series ASCII line chart.

    Each series gets a distinct marker; the y-axis is shared and labelled
    with its min/max.  Designed for the paper's per-second LU and RMSE
    curves.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*o+x#@%&"
    resampled: dict[str, np.ndarray] = {}
    for name, ts in series.items():
        values = ts.values if isinstance(ts, TimeSeries) else np.asarray(ts, float)
        if values.size == 0:
            continue
        resampled[name] = _resample(values, width)
    if not resampled:
        raise ValueError("all series are empty")
    low = min(float(v.min()) for v in resampled.values())
    high = max(float(v.max()) for v in resampled.values())
    span = high - low if high > low else 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(resampled.items()):
        marker = markers[index % len(markers)]
        for x, value in enumerate(values[:width]):
            y = int(round((value - low) / span * (height - 1)))
            grid[height - 1 - y][x] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{high:>10.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{low:>10.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(resampled)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def bar_chart(
    rows: Sequence[tuple[str, float]],
    *,
    width: int = 48,
    unit: str = "",
    title: str = "",
) -> str:
    """A horizontal ASCII bar chart for per-category values (Figs. 6/8/9)."""
    if not rows:
        raise ValueError("need at least one row")
    top = max(value for _, value in rows)
    label_width = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        filled = int(round(value / top * width)) if top > 0 else 0
        bar = "█" * filled
        lines.append(f"{label:<{label_width}} │{bar:<{width}} {value:.2f}{unit}")
    return "\n".join(lines)
