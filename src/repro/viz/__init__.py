"""Terminal visualisation: ASCII charts and campus maps.

The paper's figures are line charts (Figs. 4, 5, 7) and bar charts
(Figs. 6, 8, 9).  This package renders both as plain text so the CLI and
examples can show figure *shapes* without any plotting dependency, plus a
top-down ASCII map of the campus with live node positions.
"""

from repro.viz.ascii_chart import bar_chart, line_chart, sparkline
from repro.viz.campus_map import render_campus

__all__ = ["sparkline", "line_chart", "bar_chart", "render_campus"]
