"""A thread-pool ingest front end for genuinely concurrent clients.

The deterministic replay path (:mod:`repro.serving.loadgen`) is
single-threaded on the simulation kernel so its reports are
byte-reproducible.  :class:`ThreadedFrontEnd` is the other half of the
tentpole: real OS threads accepting submissions from many concurrent
producers into one bounded queue, with worker threads draining batches
into a lock-guarded :class:`~repro.serving.store.ShardedLocationStore`.

Interleavings here are scheduler-dependent by nature, so this path is
validated by conservation laws rather than byte-stability::

    offered == accepted + shed
    accepted == store.applied + store.duplicates + store.reordered
              + store.broker_stale_dropped

No wall clock is read (DET001): the front end measures *what* happened
(counts), never *when*; latency SLOs belong to the deterministic replay
path where time is virtual and reproducible.
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from repro.network.messages import LocationUpdate
from repro.serving.store import ShardedLocationStore
from repro.telemetry import NULL_TELEMETRY

__all__ = ["ThreadedFrontEnd"]

#: Internal sentinel telling a worker thread to exit its drain loop.
_STOP = object()


class ThreadedFrontEnd:
    """Bounded-queue, worker-thread ingest front end over a shared store."""

    def __init__(
        self,
        store: ShardedLocationStore | None = None,
        *,
        workers: int = 2,
        queue_capacity: int = 4096,
        shards: int = 4,
        telemetry: Any = None,
        name: str = "frontend",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        # A caller-provided store must already be lock-guarded; the
        # default store is built thread-safe here.
        self.store = store or ShardedLocationStore(
            shards, thread_safe=True, telemetry=telemetry, name=name
        )
        self.name = name
        self._queue: queue.Queue[Any] = queue.Queue(maxsize=queue_capacity)
        self._workers = [
            threading.Thread(
                target=self._drain,
                name=f"{name}-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        self._counter_lock = threading.Lock()
        self.offered = 0
        self.accepted = 0
        self.shed = 0
        self._started = False
        self._stopped = False
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_offered = tm.counter("serving.frontend.offered", frontend=name)
        self._t_shed = tm.counter("serving.frontend.shed", frontend=name)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Launch the worker threads (idempotent, thread-safe)."""
        with self._counter_lock:
            if self._started:
                return
            self._started = True
        # Thread.start() happens outside the lock: only the winner of
        # the flag flip above reaches this point.
        for worker in self._workers:
            worker.start()

    def stop(self) -> None:
        """Drain everything queued, then join the workers.

        One sentinel per worker is enqueued *behind* the backlog, so every
        accepted submission is applied before the threads exit.
        """
        with self._counter_lock:
            if self._stopped:
                return
            self._stopped = True
            started = self._started
        if not started:
            return
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "ThreadedFrontEnd":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- intake ---------------------------------------------------------------
    def submit(self, update: LocationUpdate) -> bool:
        """Offer one LU from any thread; False when the queue sheds it."""
        with self._counter_lock:
            self.offered += 1
        if self._instrumented:
            self._t_offered.inc()
        try:
            self._queue.put_nowait(update)
        except queue.Full:
            with self._counter_lock:
                self.shed += 1
            if self._instrumented:
                self._t_shed.inc()
            return False
        with self._counter_lock:
            self.accepted += 1
        return True

    # -- the drain loop (worker threads) --------------------------------------
    def _drain(self) -> None:
        store_apply = self.store.apply
        get = self._queue.get
        while True:
            item = get()
            if item is _STOP:
                return
            store_apply(item)

    @property
    def backlog(self) -> int:
        """Approximate submissions accepted but not yet applied."""
        return self._queue.qsize()
