"""Broker-as-a-service: online LU ingest + trace record/replay workloads.

The serving layer lifts the paper's in-loop broker into a service shape:

* :mod:`repro.serving.trace` — record one harness lane's transmitted LU
  stream into a compact replayable log (``repro-lu-trace``);
* :mod:`repro.serving.store` — a region-sharded location store whose
  shards are PR 4 degraded-mode :class:`~repro.broker.broker.GridBroker`
  instances (staleness, extrapolation, quarantine for free);
* :mod:`repro.serving.service` — the bounded-queue, batch-draining
  ingest front door with explicit shed-based backpressure;
* :mod:`repro.serving.client` — an ARQ client adapter that turns shed
  into sender-side retry via the accept gate;
* :mod:`repro.serving.frontend` — a thread-pool front end for genuinely
  concurrent producers (validated by conservation laws);
* :mod:`repro.serving.loadgen` / :mod:`repro.serving.report` — open-loop
  replay at configurable rates with a byte-reproducible SLO report.
"""

from repro.serving.client import ReliableIngestClient
from repro.serving.frontend import ThreadedFrontEnd
from repro.serving.loadgen import ReplayConfig, replay_trace
from repro.serving.report import ServingReport
from repro.serving.service import IngestService, ServingConfig
from repro.serving.store import IngestOutcome, ShardedLocationStore, shard_for
from repro.serving.trace import (
    ColumnarTraceRecorder,
    TraceError,
    TraceRecord,
    TraceRecorder,
    read_trace,
    record_columnar_trace,
    record_trace,
    write_trace,
)

__all__ = [
    "ColumnarTraceRecorder",
    "IngestOutcome",
    "IngestService",
    "ReliableIngestClient",
    "ReplayConfig",
    "ServingConfig",
    "ServingReport",
    "ShardedLocationStore",
    "ThreadedFrontEnd",
    "TraceError",
    "TraceRecord",
    "TraceRecorder",
    "read_trace",
    "record_columnar_trace",
    "record_trace",
    "replay_trace",
    "shard_for",
    "write_trace",
]
