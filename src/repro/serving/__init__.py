"""Broker-as-a-service: online LU ingest + trace record/replay workloads.

The serving layer lifts the paper's in-loop broker into a service shape:

* :mod:`repro.serving.trace` — record one harness lane's transmitted LU
  stream into a compact replayable log (``repro-lu-trace``);
* :mod:`repro.serving.store` — a region-sharded location store whose
  shards are PR 4 degraded-mode :class:`~repro.broker.broker.GridBroker`
  instances (staleness, extrapolation, quarantine for free);
* :mod:`repro.serving.service` — the bounded-queue, batch-draining
  ingest front door with explicit shed-based backpressure;
* :mod:`repro.serving.client` — an ARQ client adapter that turns shed
  into sender-side retry via the accept gate;
* :mod:`repro.serving.frontend` — a thread-pool front end for genuinely
  concurrent producers (validated by conservation laws);
* :mod:`repro.serving.loadgen` / :mod:`repro.serving.report` — open-loop
  replay at configurable rates with a byte-reproducible SLO report;
* :mod:`repro.serving.durability` — per-shard write-ahead log +
  snapshots + compaction, so a killed shard is reconstructible as
  snapshot state plus WAL tail replay;
* :mod:`repro.serving.recovery` — the crash-recovery convergence gate:
  a mid-replay ``ShardCrash``/restart must reproduce the uncrashed
  store byte-identically outside the explicitly-accounted shed window.
"""

from repro.serving.client import ReliableIngestClient
from repro.serving.durability import (
    DurabilityConfig,
    DurabilityManager,
    WriteAheadLog,
    read_wal,
)
from repro.serving.frontend import ThreadedFrontEnd
from repro.serving.loadgen import ReplayConfig, replay_trace, replay_trace_full
from repro.serving.recovery import (
    RecoveryGateReport,
    run_recovery_gate,
    write_filtered_export,
)
from repro.serving.report import ServingReport
from repro.serving.service import IngestService, RecoveryStats, ServingConfig
from repro.serving.store import (
    IngestOutcome,
    IngestTally,
    ShardedLocationStore,
    shard_for,
)
from repro.serving.trace import (
    ColumnarTraceRecorder,
    TraceError,
    TraceRecord,
    TraceRecorder,
    read_trace,
    record_columnar_trace,
    record_trace,
    write_trace,
)

__all__ = [
    "ColumnarTraceRecorder",
    "DurabilityConfig",
    "DurabilityManager",
    "IngestOutcome",
    "IngestService",
    "IngestTally",
    "RecoveryGateReport",
    "RecoveryStats",
    "ReliableIngestClient",
    "ReplayConfig",
    "ServingConfig",
    "ServingReport",
    "ShardedLocationStore",
    "ThreadedFrontEnd",
    "TraceError",
    "TraceRecord",
    "TraceRecorder",
    "WriteAheadLog",
    "read_trace",
    "read_wal",
    "record_columnar_trace",
    "record_trace",
    "replay_trace",
    "replay_trace_full",
    "run_recovery_gate",
    "shard_for",
    "write_filtered_export",
    "write_trace",
]
