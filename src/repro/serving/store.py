"""The serving layer's region-sharded location store.

Each shard owns one :class:`~repro.broker.broker.GridBroker` running the
PR 4 graceful-degradation policy (bounded extrapolation + quarantine +
reconnect resync), so the store inherits the broker's tolerant ingest
semantics instead of re-inventing them:

* an LU strictly older than the node's last applied fix is dropped as
  stale (the broker's ``stale_lus_dropped`` path);
* an LU older than a just-made *estimate* still feeds the tracker but
  skips the DB write (``skip_db``), keeping every shard's
  :class:`~repro.broker.location_db.LocationDB` time-monotonic;
* nodes silent past the quarantine age are excluded from estimates
  until an LU resyncs them.

On top of that the store adds what a transport-facing service needs:

* deterministic region sharding (CRC32 of the region id — stable across
  processes and ``PYTHONHASHSEED``);
* per-node duplicate suppression by sequence number (an ARQ retransmit
  whose ack was lost arrives twice; replay across shards can reorder) —
  a seq at or below the node's last applied one is never new
  information, because traces order each node's seqs by time;
* a store-level per-node latest pointer, because a moving node's records
  land in whichever shard serves the reporting region.

``thread_safe=True`` guards every mutation with one lock for the
threaded front end; the deterministic replay path runs single-threaded
and skips the lock entirely.
"""

from __future__ import annotations

import enum
import threading
import zlib
from typing import Any

from repro.broker.broker import BrokerConfig, GridBroker
from repro.broker.location_db import LocationRecord
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.telemetry import NULL_TELEMETRY
from repro.util.validation import check_positive

__all__ = ["IngestOutcome", "ShardedLocationStore", "shard_for"]


def shard_for(region_id: str, shard_count: int) -> int:
    """The shard index serving *region_id* (CRC32 — seed/process stable)."""
    return zlib.crc32(region_id.encode("utf-8")) % shard_count


class IngestOutcome(enum.Enum):
    """What became of one submitted LU."""

    APPLIED = "applied"
    DUPLICATE = "duplicate"
    STALE = "stale"


class ShardedLocationStore:
    """Region-sharded, reorder/duplicate-tolerant location store."""

    def __init__(
        self,
        shard_count: int = 4,
        *,
        report_interval: float = 1.0,
        max_extrapolation_intervals: float = 10.0,
        quarantine_intervals: float = 30.0,
        smoothing_alpha: float = 0.4,
        use_location_estimator: bool = True,
        thread_safe: bool = False,
        telemetry: Any = None,
        name: str = "serving",
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        check_positive(report_interval, "report_interval")
        check_positive(max_extrapolation_intervals, "max_extrapolation_intervals")
        check_positive(quarantine_intervals, "quarantine_intervals")
        self.shard_count = shard_count
        self.name = name
        broker_config = BrokerConfig(
            use_location_estimator=use_location_estimator,
            smoothing_alpha=smoothing_alpha,
            report_interval=report_interval,
            # Both ages set => the brokers run in degraded mode, which is
            # what makes receive_update absorb reordered/late LUs (stale
            # drop + skip_db) instead of raising on them.
            max_extrapolation_age=max_extrapolation_intervals * report_interval,
            quarantine_age=quarantine_intervals * report_interval,
        )
        self._shards: list[GridBroker] = [
            GridBroker(
                broker_config,
                telemetry=telemetry,
                name=f"{name}/shard-{index}",
            )
            for index in range(shard_count)
        ]
        #: node -> seq of the last applied LU (duplicate gate).
        self._last_seq: dict[str, int] = {}
        #: node -> timestamp of the last applied LU (reorder gate).
        self._last_time: dict[str, float] = {}
        #: node -> shard index holding the node's freshest record.
        self._node_shard: dict[str, int] = {}
        self.applied = 0
        self.duplicates = 0
        self.reordered = 0
        self._lock = threading.Lock() if thread_safe else None
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_applied = tm.counter("serving.store.applied", store=name)
        self._t_duplicates = tm.counter("serving.store.duplicates", store=name)
        self._t_reordered = tm.counter("serving.store.reordered", store=name)
        self._t_nodes = tm.gauge("serving.store.nodes", store=name)

    # -- ingest ---------------------------------------------------------------
    def apply(self, update: LocationUpdate) -> IngestOutcome:
        """Ingest one LU; returns what the store did with it."""
        if self._lock is None:
            return self._apply(update)
        with self._lock:
            return self._apply(update)

    def _apply(self, update: LocationUpdate) -> IngestOutcome:
        node_id = update.node_id
        last_seq = self._last_seq.get(node_id)
        if last_seq is not None and update.seq <= last_seq:
            # Retransmit or cross-shard reorder of something already
            # applied: per node, trace seqs are issued in time order, so
            # a non-advancing seq cannot carry new information.
            self.duplicates += 1
            if self._instrumented:
                self._t_duplicates.inc()
            return IngestOutcome.DUPLICATE
        timestamp = update.timestamp
        last_time = self._last_time.get(node_id)
        if last_time is not None and timestamp < last_time:
            # A fresher seq with an older timestamp: the stream was
            # re-stamped inconsistently (or clocks regressed).  Mirror
            # the broker's stale-drop rather than corrupting DB order.
            self.reordered += 1
            if self._instrumented:
                self._t_reordered.inc()
            return IngestOutcome.STALE
        shard_index = shard_for(update.region_id, self.shard_count)
        self._shards[shard_index].receive_update(update)
        self._last_seq[node_id] = update.seq
        self._last_time[node_id] = timestamp
        self._node_shard[node_id] = shard_index
        self.applied += 1
        if self._instrumented:
            self._t_applied.inc()
            self._t_nodes.set(len(self._last_seq))
        return IngestOutcome.APPLIED

    def apply_batch(self, updates: list[LocationUpdate]) -> int:
        """Ingest a batch; returns how many were applied (not dropped)."""
        applied = 0
        for update in updates:
            if self.apply(update) is IngestOutcome.APPLIED:
                applied += 1
        return applied

    # -- the estimation sweep -------------------------------------------------
    def tick(self, now: float) -> int:
        """Run every shard broker's estimation sweep; returns estimates made.

        This is the PR 4 machinery doing its serving-side job: silent
        nodes get extrapolated (decaying to the last fix past the
        extrapolation budget) and long-silent ones are quarantined.
        """
        if self._lock is not None:
            with self._lock:
                return sum(shard.tick(now) for shard in self._shards)
        return sum(shard.tick(now) for shard in self._shards)

    # -- queries --------------------------------------------------------------
    def latest(self, node_id: str) -> LocationRecord | None:
        """The node's freshest stored record across shards."""
        shard_index = self._node_shard.get(node_id)
        if shard_index is None:
            return None
        return self._shards[shard_index].location_db.latest(node_id)

    def believed_position(
        self, node_id: str, now: float | None = None
    ) -> Vec2 | None:
        """The owning shard broker's belief (degradation rules included)."""
        shard_index = self._node_shard.get(node_id)
        if shard_index is None:
            return None
        return self._shards[shard_index].believed_position(node_id, now)

    def shard(self, index: int) -> GridBroker:
        """Direct access to one shard's broker (tests and diagnostics)."""
        return self._shards[index]

    @property
    def node_count(self) -> int:
        """Distinct nodes with at least one applied LU."""
        return len(self._last_seq)

    @property
    def estimates_made(self) -> int:
        """Estimated records stored by all shard sweeps."""
        return sum(shard.estimates_made for shard in self._shards)

    @property
    def quarantines(self) -> int:
        """Quarantine transitions across shards."""
        return sum(shard.quarantines for shard in self._shards)

    @property
    def resyncs(self) -> int:
        """Quarantine exits (an LU resynced the node) across shards."""
        return sum(shard.resyncs for shard in self._shards)

    @property
    def broker_stale_dropped(self) -> int:
        """LUs the shard brokers themselves dropped as stale."""
        return sum(shard.stale_lus_dropped for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        """Per-shard DB sizes (distinct nodes per shard), in shard order."""
        return [len(shard.location_db) for shard in self._shards]

    def shard_received(self) -> list[int]:
        """Per-shard RECEIVED record counts, in shard order."""
        return [shard.location_db.stored_received for shard in self._shards]
