"""The serving layer's region-sharded location store.

Each shard owns one :class:`~repro.broker.broker.GridBroker` running the
PR 4 graceful-degradation policy (bounded extrapolation + quarantine +
reconnect resync), so the store inherits the broker's tolerant ingest
semantics instead of re-inventing them:

* an LU strictly older than the node's last applied fix is dropped as
  stale (the broker's ``stale_lus_dropped`` path);
* an LU older than a just-made *estimate* still feeds the tracker but
  skips the DB write (``skip_db``), keeping every shard's
  :class:`~repro.broker.location_db.LocationDB` time-monotonic;
* nodes silent past the quarantine age are excluded from estimates
  until an LU resyncs them.

On top of that the store adds what a transport-facing service needs:

* deterministic region sharding (CRC32 of the region id — stable across
  processes and ``PYTHONHASHSEED``);
* per-node duplicate suppression by sequence number (an ARQ retransmit
  whose ack was lost arrives twice; replay across shards can reorder) —
  a seq at or below the node's last applied one is never new
  information, because traces order each node's seqs by time;
* a store-level per-node latest pointer, because a moving node's records
  land in whichever shard serves the reporting region.

``thread_safe=True`` guards every mutation with one lock for the
threaded front end; the deterministic replay path runs single-threaded
and skips the lock entirely.
"""

from __future__ import annotations

import enum
import threading
import zlib
from dataclasses import dataclass
from typing import Any

from repro.broker.broker import BrokerConfig, GridBroker
from repro.broker.location_db import LocationRecord
from repro.geometry import Vec2
from repro.network.messages import LocationUpdate
from repro.telemetry import NULL_TELEMETRY
from repro.util.validation import check_positive

__all__ = ["IngestOutcome", "IngestTally", "ShardedLocationStore", "shard_for"]


def shard_for(region_id: str, shard_count: int) -> int:
    """The shard index serving *region_id* (CRC32 — seed/process stable)."""
    return zlib.crc32(region_id.encode("utf-8")) % shard_count


def _entry_to_update(entry: list[Any]) -> LocationUpdate:
    """Rebuild the LU a ``["lu", ...]`` WAL entry recorded (bit-exact)."""
    _, time, seq, node_id, x, y, vx, vy, region_id, dth = entry
    return LocationUpdate(
        sender=node_id,
        timestamp=float(time),
        seq=int(seq),
        node_id=node_id,
        position=Vec2(float(x), float(y)),
        velocity=Vec2(float(vx), float(vy)),
        region_id=region_id,
        dth=float(dth),
    )


class IngestOutcome(enum.Enum):
    """What became of one submitted LU."""

    APPLIED = "applied"
    DUPLICATE = "duplicate"
    STALE = "stale"
    #: The owning shard is crashed — the record was refused, not lost
    #: silently; callers shed it (and the recovery gate accounts for it).
    DOWN = "down"


@dataclass
class IngestTally:
    """Per-:class:`IngestOutcome` counts for one applied batch."""

    applied: int = 0
    duplicates: int = 0
    stale: int = 0
    down: int = 0

    @property
    def total(self) -> int:
        """Every record the batch offered, regardless of outcome."""
        return self.applied + self.duplicates + self.stale + self.down

    def add(self, outcome: IngestOutcome) -> None:
        """Count one outcome."""
        if outcome is IngestOutcome.APPLIED:
            self.applied += 1
        elif outcome is IngestOutcome.DUPLICATE:
            self.duplicates += 1
        elif outcome is IngestOutcome.STALE:
            self.stale += 1
        else:
            self.down += 1

    def as_dict(self) -> dict[str, int]:
        """Sorted-key-friendly plain dict (for reports)."""
        return {
            "applied": self.applied,
            "down": self.down,
            "duplicates": self.duplicates,
            "stale": self.stale,
        }


class ShardedLocationStore:
    """Region-sharded, reorder/duplicate-tolerant location store."""

    def __init__(
        self,
        shard_count: int = 4,
        *,
        report_interval: float = 1.0,
        max_extrapolation_intervals: float = 10.0,
        quarantine_intervals: float = 30.0,
        smoothing_alpha: float = 0.4,
        use_location_estimator: bool = True,
        thread_safe: bool = False,
        telemetry: Any = None,
        name: str = "serving",
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        check_positive(report_interval, "report_interval")
        check_positive(max_extrapolation_intervals, "max_extrapolation_intervals")
        check_positive(quarantine_intervals, "quarantine_intervals")
        self.shard_count = shard_count
        self.name = name
        broker_config = BrokerConfig(
            use_location_estimator=use_location_estimator,
            smoothing_alpha=smoothing_alpha,
            report_interval=report_interval,
            # Both ages set => the brokers run in degraded mode, which is
            # what makes receive_update absorb reordered/late LUs (stale
            # drop + skip_db) instead of raising on them.
            max_extrapolation_age=max_extrapolation_intervals * report_interval,
            quarantine_age=quarantine_intervals * report_interval,
        )
        self._broker_config = broker_config
        self._telemetry = telemetry
        self._shards: list[GridBroker] = [
            GridBroker(
                broker_config,
                telemetry=telemetry,
                name=f"{name}/shard-{index}",
            )
            for index in range(shard_count)
        ]
        #: node -> (seq, time, shard, x, y) of the last *applied* LU: the
        #: duplicate gate (seq), the reorder gate (time), the owning-shard
        #: pointer, and the latest received fix — one dict so the hot path
        #: pays a single lookup and a single write, and so crash recovery
        #: and the convergence export read one structure.
        self._gates: dict[str, tuple[int, float, int, float, float]] = {}
        #: Shard indices currently crashed (refusing ingest, skipped by tick).
        self._down: set[int] = set()
        self.applied = 0
        self.duplicates = 0
        self.reordered = 0
        self.down_dropped = 0
        self._lock = threading.Lock() if thread_safe else None
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_applied = tm.counter("serving.store.applied", store=name)
        self._t_duplicates = tm.counter("serving.store.duplicates", store=name)
        self._t_reordered = tm.counter("serving.store.reordered", store=name)
        self._t_nodes = tm.gauge("serving.store.nodes", store=name)

    # -- ingest ---------------------------------------------------------------
    def apply(self, update: LocationUpdate) -> IngestOutcome:
        """Ingest one LU; returns what the store did with it."""
        if self._lock is None:
            return self._apply(update)
        with self._lock:
            return self._apply(update)

    def _apply(self, update: LocationUpdate) -> IngestOutcome:
        node_id = update.node_id
        gate = self._gates.get(node_id)
        if gate is not None and update.seq <= gate[0]:
            # Retransmit or cross-shard reorder of something already
            # applied: per node, trace seqs are issued in time order, so
            # a non-advancing seq cannot carry new information.
            self.duplicates += 1
            if self._instrumented:
                self._t_duplicates.inc()
            return IngestOutcome.DUPLICATE
        timestamp = update.timestamp
        if gate is not None and timestamp < gate[1]:
            # A fresher seq with an older timestamp: the stream was
            # re-stamped inconsistently (or clocks regressed).  Mirror
            # the broker's stale-drop rather than corrupting DB order.
            self.reordered += 1
            if self._instrumented:
                self._t_reordered.inc()
            return IngestOutcome.STALE
        shard_index = shard_for(update.region_id, self.shard_count)
        if shard_index in self._down:
            self.down_dropped += 1
            return IngestOutcome.DOWN
        self._shards[shard_index].receive_update(update)
        position = update.position
        self._gates[node_id] = (
            update.seq,
            timestamp,
            shard_index,
            position.x,
            position.y,
        )
        self.applied += 1
        if self._instrumented:
            self._t_applied.inc()
            self._t_nodes.set(len(self._gates))
        return IngestOutcome.APPLIED

    def apply_batch(self, updates: list[LocationUpdate]) -> IngestTally:
        """Ingest a batch; returns per-outcome tallies.

        Recovery and shed accounting read the tally directly instead of
        re-deriving outcome counts from telemetry deltas.
        """
        tally = IngestTally()
        for update in updates:
            tally.add(self.apply(update))
        return tally

    # -- the estimation sweep -------------------------------------------------
    def tick(self, now: float) -> int:
        """Run every shard broker's estimation sweep; returns estimates made.

        This is the PR 4 machinery doing its serving-side job: silent
        nodes get extrapolated (decaying to the last fix past the
        extrapolation budget) and long-silent ones are quarantined.
        """
        if self._lock is not None:
            with self._lock:
                return self._tick(now)
        return self._tick(now)

    def _tick(self, now: float) -> int:
        if not self._down:
            return sum(shard.tick(now) for shard in self._shards)
        return sum(
            shard.tick(now)
            for index, shard in enumerate(self._shards)
            if index not in self._down
        )

    # -- queries --------------------------------------------------------------
    def latest(self, node_id: str) -> LocationRecord | None:
        """The node's freshest stored record across shards."""
        gate = self._gates.get(node_id)
        if gate is None:
            return None
        return self._shards[gate[2]].location_db.latest(node_id)

    def believed_position(
        self, node_id: str, now: float | None = None
    ) -> Vec2 | None:
        """The owning shard broker's belief (degradation rules included)."""
        gate = self._gates.get(node_id)
        if gate is None:
            return None
        return self._shards[gate[2]].believed_position(node_id, now)

    def shard(self, index: int) -> GridBroker:
        """Direct access to one shard's broker (tests and diagnostics)."""
        return self._shards[index]

    @property
    def node_count(self) -> int:
        """Distinct nodes with at least one applied LU."""
        return len(self._gates)

    # -- durability hooks -----------------------------------------------------
    def shard_gates(self, index: int) -> dict[str, list[Any]]:
        """Snapshot-ready gates of nodes owned by shard *index*.

        ``node -> [seq, time, x, y]`` for every node whose freshest
        applied LU landed in this shard, sorted by node id so snapshot
        bytes are deterministic.
        """
        return {
            node_id: [gate[0], gate[1], gate[3], gate[4]]
            for node_id, gate in sorted(self._gates.items())
            if gate[2] == index
        }

    def export_state(self) -> dict[str, list[Any]]:
        """Per-node latest *applied* fix — the convergence export.

        ``node -> [seq, time, x, y]`` over every node, sorted by id.
        Built from received LUs only (no estimates), so two stores that
        absorbed the same applied stream export byte-identical documents
        even when their estimation sweeps diverged during a down window.
        """
        return {
            node_id: [gate[0], gate[1], gate[3], gate[4]]
            for node_id, gate in sorted(self._gates.items())
        }

    def shard_is_down(self, index: int) -> bool:
        """Whether shard *index* is currently crashed."""
        return index in self._down

    def shard_for_update(self, update: LocationUpdate) -> int:
        """The shard index *update* routes to."""
        return shard_for(update.region_id, self.shard_count)

    def crash_shard(self, index: int) -> list[str]:
        """Kill shard *index*: drop its broker and owned gates.

        Returns the (sorted) node ids whose gates were purged — their
        store-level knowledge now lives only on disk until
        :meth:`restore_shard` replays it back.  Under a thread-safe
        store this must exclude concurrent :meth:`apply` calls: a
        worker mid-apply could otherwise route into the broker being
        replaced or resurrect a gate this crash just purged.
        """
        if self._lock is None:
            return self._crash_shard(index)
        with self._lock:
            return self._crash_shard(index)

    def _crash_shard(self, index: int) -> list[str]:
        if not 0 <= index < self.shard_count:
            raise ValueError(f"no shard {index} in a {self.shard_count}-shard store")
        if index in self._down:
            raise ValueError(f"shard {index} is already down")
        self._down.add(index)
        self._shards[index] = GridBroker(
            self._broker_config,
            telemetry=self._telemetry,
            name=f"{self.name}/shard-{index}",
        )
        purged = sorted(
            node_id for node_id, gate in self._gates.items() if gate[2] == index
        )
        for node_id in purged:
            del self._gates[node_id]
        return purged

    def restore_shard(
        self,
        index: int,
        *,
        state: dict[str, Any] | None,
        gates: dict[str, Any],
        entries: list[Any],
    ) -> int:
        """Rebuild crashed shard *index* from snapshot + WAL tail.

        *state* (the broker ``state_dict`` at the snapshot point, or
        ``None`` for a cold start) is loaded first, then *entries* are
        replayed in append order — ``lu`` rows through
        ``receive_update`` exactly as originally applied (the WAL holds
        the post-dedup stream, so no gate logic runs) and ``tick``
        boundaries through the broker sweep.  Store-level gates are
        restored *conditionally*: a node that reported through another
        shard while this one was down already has a fresher gate, and
        recovery must not regress it.  Returns the replayed entry count.

        Like :meth:`crash_shard`, the whole rebuild holds the store
        lock when one exists: replay mutates the same gate dict the
        ingest hot path writes through.
        """
        if self._lock is None:
            return self._restore_shard(index, state=state, gates=gates, entries=entries)
        with self._lock:
            return self._restore_shard(index, state=state, gates=gates, entries=entries)

    def _restore_shard(
        self,
        index: int,
        *,
        state: dict[str, Any] | None,
        gates: dict[str, Any],
        entries: list[Any],
    ) -> int:
        if index not in self._down:
            raise ValueError(f"shard {index} is not down")
        broker = self._shards[index]
        if state is not None:
            broker.load_state(state)
        store_gates = self._gates
        for node_id, row in gates.items():
            seq, timestamp, x, y = row
            existing = store_gates.get(node_id)
            if existing is None or seq > existing[0]:
                store_gates[node_id] = (int(seq), float(timestamp), index, float(x), float(y))
        replayed = 0
        for entry in entries:
            kind = entry[0]
            if kind == "lu":
                update = _entry_to_update(entry)
                broker.receive_update(update)
                node_id = update.node_id
                existing = store_gates.get(node_id)
                if existing is None or update.seq > existing[0]:
                    position = update.position
                    store_gates[node_id] = (
                        update.seq,
                        update.timestamp,
                        index,
                        position.x,
                        position.y,
                    )
            elif kind == "tick":
                broker.tick(float(entry[1]))
            else:
                raise ValueError(f"unknown WAL entry kind {kind!r}")
            replayed += 1
        self._down.discard(index)
        return replayed

    @property
    def estimates_made(self) -> int:
        """Estimated records stored by all shard sweeps."""
        return sum(shard.estimates_made for shard in self._shards)

    @property
    def quarantines(self) -> int:
        """Quarantine transitions across shards."""
        return sum(shard.quarantines for shard in self._shards)

    @property
    def resyncs(self) -> int:
        """Quarantine exits (an LU resynced the node) across shards."""
        return sum(shard.resyncs for shard in self._shards)

    @property
    def broker_stale_dropped(self) -> int:
        """LUs the shard brokers themselves dropped as stale."""
        return sum(shard.stale_lus_dropped for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        """Per-shard DB sizes (distinct nodes per shard), in shard order."""
        return [len(shard.location_db) for shard in self._shards]

    def shard_received(self) -> list[int]:
        """Per-shard RECEIVED record counts, in shard order."""
        return [shard.location_db.stored_received for shard in self._shards]
