"""Open-loop trace replay: drive the ingest service at a configured rate.

:func:`replay_trace` takes a recorded LU trace and pushes it through a
fresh :class:`~repro.serving.service.IngestService` on a private
simulation clock.  The replay is **open-loop**: arrivals follow the
configured rate regardless of how the service is coping, which is the
regime where bounded queues and shedding matter (a closed-loop client
would implicitly self-throttle and hide saturation).

Nominal arrival times are synthetic — record ``i`` of ``n`` arrives at
``i / rate`` virtual seconds (or at its recorded offset when
``rate == 0``) — while the LUs keep their original *trace* timestamps,
so the store's broker-level semantics (staleness, extrapolation ages)
still reason in trace time.  Arrivals are submitted in windows aligned
with the service's flush interval: one simulator event per window
carries every record whose nominal arrival falls inside it, passing the
exact nominal time as the latency-accounting ``arrival``.  That keeps
the event count proportional to replay *duration*, not message count —
the 100k+ msg/s ceilings cost thousands of events, not hundreds of
thousands.

Everything here is deterministic: same trace + same config ⇒ the same
event sequence, the same shed decisions, the same P² latency estimates,
and a byte-identical :class:`~repro.serving.report.ServingReport`.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.serving.durability import DurabilityManager
from repro.serving.report import ServingReport
from repro.serving.service import IngestService, ServingConfig
from repro.serving.trace import TraceRecord
from repro.simkernel import Simulator

__all__ = ["ReplayConfig", "replay_trace", "replay_trace_full"]


@dataclass(frozen=True)
class ReplayConfig:
    """Replay knobs.

    ``rate`` is the open-loop offered load in messages per virtual
    second; ``0`` replays at the trace's own recorded timing.
    ``sweep_interval`` (in *trace-time* seconds, ``0`` disables) runs the
    store's estimation/quarantine sweep whenever the submitted stream
    crosses a trace-time boundary, exercising the PR 4 degradation
    machinery against replayed gaps.
    """

    rate: float = 10_000.0
    sweep_interval: float = 0.0
    serving: ServingConfig = field(default_factory=ServingConfig)

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.sweep_interval < 0:
            raise ValueError(
                f"sweep_interval must be >= 0, got {self.sweep_interval}"
            )


def _arrival_times(records: list[TraceRecord], rate: float) -> list[float]:
    """Nominal arrival time per record (replay-clock seconds from 0)."""
    if rate > 0:
        return [index / rate for index in range(len(records))]
    base = records[0].time if records else 0.0
    return [record.time - base for record in records]


def replay_trace(
    records: list[TraceRecord],
    config: ReplayConfig | None = None,
    *,
    trace_meta: dict[str, Any] | None = None,
    telemetry: Any = None,
    durability: DurabilityManager | None = None,
    faults: Any = None,
    recovery_clock: Callable[[], float] | None = None,
) -> ServingReport:
    """Replay *records* through a fresh ingest service; returns the report."""
    report, _ = replay_trace_full(
        records,
        config,
        trace_meta=trace_meta,
        telemetry=telemetry,
        durability=durability,
        faults=faults,
        recovery_clock=recovery_clock,
    )
    return report


def replay_trace_full(
    records: list[TraceRecord],
    config: ReplayConfig | None = None,
    *,
    trace_meta: dict[str, Any] | None = None,
    telemetry: Any = None,
    durability: DurabilityManager | None = None,
    faults: Any = None,
    recovery_clock: Callable[[], float] | None = None,
) -> tuple[ServingReport, IngestService]:
    """Like :func:`replay_trace`, but also returns the drained service.

    The recovery gate needs the service after the run — for the store's
    convergence export and the crash's affected-node accounting.
    *durability* attaches a WAL/snapshot manager to the service; *faults*
    (a :class:`~repro.faults.schedule.FaultSchedule`) is bound via a
    :class:`~repro.faults.injector.FaultInjector`, which is how
    ``ShardCrash`` windows reach the service deterministically;
    *recovery_clock* (e.g. ``time.perf_counter``) times recoveries
    without the service itself touching a wall clock.
    """
    config = config or ReplayConfig()
    sim = Simulator()
    service = IngestService(
        sim,
        config.serving,
        telemetry=telemetry,
        durability=durability,
        recovery_clock=recovery_clock,
    )
    if faults is not None and faults:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(faults, telemetry=telemetry)
        injector.attach(sim, service=service)

    arrivals = _arrival_times(records, config.rate)
    window = config.serving.flush_interval
    # Window k (event at time k*window) carries records whose nominal
    # arrival lies in ((k-1)*window, k*window]; arrival 0 lands in k=0.
    batches: dict[int, list[tuple[float, TraceRecord]]] = {}
    for arrival, record in zip(arrivals, records):
        k = math.ceil(arrival / window) if arrival > 0 else 0
        batches.setdefault(k, []).append((arrival, record))

    sweep_interval = config.sweep_interval
    sweep_state = {"next": None}
    if sweep_interval > 0 and records:
        sweep_state["next"] = records[0].time + sweep_interval

    def submit_batch(batch: list[tuple[float, TraceRecord]]) -> None:
        submit = service.submit
        for arrival, record in batch:
            boundary = sweep_state["next"]
            if boundary is not None and record.time >= boundary:
                # The submitted stream crossed a trace-time boundary: run
                # the estimation/quarantine sweep up to it.  Queued (not
                # yet flushed) LUs behind the boundary resync on apply —
                # the broker's skip_db path keeps the DB monotonic.
                while record.time >= boundary:
                    service.tick(boundary)
                    boundary += sweep_interval
                sweep_state["next"] = boundary
            submit(record.to_update(), arrival=arrival)

    for k in sorted(batches):
        sim.schedule_at(
            k * window,
            lambda batch=batches[k]: submit_batch(batch),
            label="loadgen:submit",
        )

    sim.run()  # drains: submissions, then the service's self-scheduled flushes

    metrics = None
    if telemetry is not None and telemetry.enabled:
        metrics = telemetry.registry.snapshot()
    report = ServingReport.from_service(
        service,
        records=len(records),
        rate=config.rate,
        replay_seconds=sim.now,
        trace_meta=trace_meta,
        metrics=metrics,
    )
    return report, service
