"""The broker-as-a-service ingest path.

:class:`IngestService` is the online front door of the serving layer: it
accepts LU submissions from any number of clients, parks them in bounded
per-shard queues, and drains those queues with batched writes into a
:class:`~repro.serving.store.ShardedLocationStore`.

Scheduling runs on the repo's deterministic
:class:`~repro.simkernel.Simulator` — the service never reads a wall
clock (DET001).  "Time" is whatever clock the simulator advances: the
replay load generator drives it with virtual arrival times derived from
the trace and the configured rate, which is what makes a replay's
latency distribution a pure function of (trace, rate, config) and the
exported report byte-reproducible.

Backpressure is explicit and loss is visible:

* a submission that finds its shard queue full is **shed** — counted
  (``serving.ingest.shed``), reported, and rejected back to the caller
  (``submit`` returns False); nothing buffers without bound;
* transport adapters can probe :meth:`has_capacity` *before* accepting
  a message — :class:`~repro.serving.client.ReliableIngestClient` wires
  it into the ARQ accept gate, so a saturated service simply withholds
  acks and clients back off and retry instead of losing LUs.

Ingest latency (enqueue to batched-apply, in virtual seconds) feeds a
telemetry histogram with streaming p50/p90/p99 — the SLO surface the
load generator reports against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.network.messages import LocationUpdate
from repro.serving.durability import DurabilityManager
from repro.serving.store import IngestOutcome, ShardedLocationStore, shard_for
from repro.simkernel import Simulator
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.metrics import Histogram
from repro.util.validation import check_positive

__all__ = ["ServingConfig", "IngestService", "RecoveryStats"]

#: Latency buckets for the ingest histogram (virtual seconds).  Batched
#: drains bound latency by the flush interval under light load, so the
#: default simulation buckets (1 ms .. 10 s) fit unchanged; they are
#: restated here so the serving SLO surface is explicit.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: Quantiles the ingest latency histogram estimates (the SLO points).
LATENCY_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


@dataclass(frozen=True)
class ServingConfig:
    """Ingest-service tunables.

    ``queue_capacity`` bounds each shard's intake queue — the explicit
    backpressure point.  ``batch_size`` caps how many records one flush
    applies per shard, and ``flush_interval`` is the drain period, so a
    single shard's sustainable throughput is
    ``batch_size / flush_interval`` records per (virtual) second; offered
    load beyond ``shards`` times that saturates the queues and sheds.
    Degradation ages are expressed in reporting-interval multiples,
    mirroring :class:`~repro.experiments.chaos.ChaosConfig`.
    """

    shards: int = 4
    queue_capacity: int = 4096
    batch_size: int = 512
    flush_interval: float = 0.05
    report_interval: float = 1.0
    max_extrapolation_intervals: float = 10.0
    quarantine_intervals: float = 30.0
    smoothing_alpha: float = 0.4
    use_location_estimator: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        check_positive(self.flush_interval, "flush_interval")
        check_positive(self.report_interval, "report_interval")
        check_positive(self.smoothing_alpha, "smoothing_alpha")

    @property
    def drain_rate(self) -> float:
        """Aggregate sustainable throughput (records per virtual second)."""
        return self.shards * self.batch_size / self.flush_interval


@dataclass
class IngestStats:
    """Counters accumulated by an ingest service."""

    offered: int = 0
    accepted: int = 0
    shed: int = 0
    batches: int = 0
    max_queue_depth: int = 0
    #: Peak summed depth across all shard queues at any flush boundary.
    max_total_depth: int = 0
    shed_per_shard: list[int] = field(default_factory=list)
    #: Submissions refused because the target shard was crashed (a subset
    #: of ``shed`` — the recovery gate's explicitly-accounted window).
    shed_down: int = 0
    #: Queued-but-unflushed records dropped by shard crashes.
    crash_dropped_queued: int = 0
    crashes: int = 0
    recoveries: int = 0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered submissions rejected for lack of queue room."""
        return self.shed / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class RecoveryStats:
    """One shard recovery, as observed by the service.

    ``affected_nodes`` is the crash's explicitly-accounted loss window:
    nodes whose queued-but-unflushed records died with the shard plus
    nodes shed while it was down.  Everything *outside* that set must
    converge byte-identically with an uncrashed run — the chaos lane's
    correctness gate.  ``wall_s`` is measured by the injected recovery
    clock (zero when none was provided) — the only wall-clock quantity
    in the serving layer, and it never influences simulation behaviour.
    """

    shard: int
    at: float
    snapshot_lsn: int
    replayed: int
    dropped_queued: int
    shed_while_down: int
    affected_nodes: tuple[str, ...]
    wall_s: float


class IngestService:
    """Bounded-queue, batch-draining LU ingest front end."""

    def __init__(
        self,
        sim: Simulator,
        config: ServingConfig | None = None,
        *,
        telemetry: Any = None,
        name: str = "serving",
        durability: DurabilityManager | None = None,
        recovery_clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config or ServingConfig()
        self._sim = sim
        self.name = name
        self.durability = durability
        #: Wall clock for recovery-time measurement only (DET001: the
        #: service itself never reads one; callers inject e.g.
        #: ``time.perf_counter`` from the chaos lane).
        self._recovery_clock = recovery_clock
        self.recoveries: list[RecoveryStats] = []
        #: Per-down-shard accumulation of the crash's loss window.
        self._crash_affected: dict[int, set[str]] = {}
        self._crash_dropped: dict[int, int] = {}
        self._crash_shed: dict[int, int] = {}
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._telemetry = tm
        self._instrumented = tm.enabled
        self.store = ShardedLocationStore(
            self.config.shards,
            report_interval=self.config.report_interval,
            max_extrapolation_intervals=self.config.max_extrapolation_intervals,
            quarantine_intervals=self.config.quarantine_intervals,
            smoothing_alpha=self.config.smoothing_alpha,
            use_location_estimator=self.config.use_location_estimator,
            telemetry=telemetry,
            name=name,
        )
        self._queues: list[deque[tuple[float, LocationUpdate]]] = [
            deque() for _ in range(self.config.shards)
        ]
        if durability is not None:
            durability.bind(self.config.shards)
        self._capacity = self.config.queue_capacity
        self._flush_scheduled = False
        self.stats = IngestStats(shed_per_shard=[0] * self.config.shards)
        self._t_offered = tm.counter("serving.ingest.offered", service=name)
        self._t_accepted = tm.counter("serving.ingest.accepted", service=name)
        self._t_shed = tm.counter("serving.ingest.shed", service=name)
        self._t_batches = tm.counter("serving.ingest.batches", service=name)
        self._t_depth = tm.gauge("serving.queue.depth", service=name)
        # The latency histogram must survive disabled telemetry: the
        # replay report reads p50/p99 from it either way, so fall back to
        # a standalone (unregistered) instrument when telemetry is off.
        if tm.enabled:
            self.latency: Histogram = tm.histogram(
                "serving.ingest.latency",
                buckets=LATENCY_BUCKETS,
                quantiles=LATENCY_QUANTILES,
                service=name,
            )
        else:
            self.latency = Histogram(
                "serving.ingest.latency",
                buckets=LATENCY_BUCKETS,
                quantiles=LATENCY_QUANTILES,
            )

    # -- intake ---------------------------------------------------------------
    def shard_index(self, update: LocationUpdate) -> int:
        """Which shard queue *update* routes to."""
        return shard_for(update.region_id, self.config.shards)

    def has_capacity(self, update: LocationUpdate) -> bool:
        """Whether *update* would currently be accepted (not shed).

        Transport adapters use this as an ARQ accept gate: refusing the
        message *before* acking turns shed into sender-side retry.  A
        crashed shard has no capacity — clients back off (circuit
        breaker) instead of hammering a recovering shard.
        """
        index = self.shard_index(update)
        if self.store.shard_is_down(index):
            return False
        return len(self._queues[index]) < self._capacity

    def submit(
        self, update: LocationUpdate, *, arrival: float | None = None
    ) -> bool:
        """Offer one LU; returns False when backpressure sheds it.

        *arrival* backdates the enqueue time for latency accounting (the
        load generator submits whole windows of nominal arrivals from one
        event); it defaults to the simulator's current time.
        """
        stats = self.stats
        stats.offered += 1
        if self._instrumented:
            self._t_offered.inc()
        index = self.shard_index(update)
        if self.store.shard_is_down(index):
            stats.shed += 1
            stats.shed_down += 1
            stats.shed_per_shard[index] += 1
            self._crash_shed[index] = self._crash_shed.get(index, 0) + 1
            self._crash_affected.setdefault(index, set()).add(update.node_id)
            if self._instrumented:
                self._t_shed.inc()
            return False
        queue = self._queues[index]
        if len(queue) >= self._capacity:
            stats.shed += 1
            stats.shed_per_shard[index] += 1
            if self._instrumented:
                self._t_shed.inc()
            return False
        when = self._sim.now if arrival is None else arrival
        queue.append((when, update))
        stats.accepted += 1
        if self._instrumented:
            self._t_accepted.inc()
        depth = len(queue)
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._sim.schedule_in(
                self.config.flush_interval,
                self._flush,
                label=f"{self.name}:flush",
            )
        return True

    # -- the drain ------------------------------------------------------------
    def _flush(self) -> None:
        """Apply up to ``batch_size`` queued records per shard.

        Self-perpetuating only while backlog remains, so a drained
        service schedules nothing and the simulation can run to
        completion without an explicit end bound.
        """
        self._flush_scheduled = False
        now = self._sim.now
        batch_size = self.config.batch_size
        observe = self.latency.observe
        apply = self.store.apply
        durability = self.durability
        applied_outcome = IngestOutcome.APPLIED
        backlog = 0
        total_before = 0
        for index, queue in enumerate(self._queues):
            total_before += len(queue)
            take = len(queue)
            if take > batch_size:
                take = batch_size
            if durability is None:
                for _ in range(take):
                    arrival, update = queue.popleft()
                    apply(update)
                    observe(now - arrival)
            else:
                # Log-after-apply straight onto the shard WAL (the
                # per-record manager hop costs real throughput at 100k
                # msg/s); bookkeeping settles once per batch below.
                append = durability.wal(index).append_update
                appended = 0
                for _ in range(take):
                    arrival, update = queue.popleft()
                    if apply(update) is applied_outcome:
                        # Made durable before this event ends: the crash
                        # model is event-granular, so WAL contents exactly
                        # track what the shard absorbed.
                        append(update)
                        appended += 1
                    observe(now - arrival)
                if take:
                    if appended:
                        durability.note_appended(index, appended)
                    durability.flush_shard(index)
                    durability.maybe_snapshot(
                        index,
                        lambda index=index: (
                            self.store.shard(index).state_dict(),
                            self.store.shard_gates(index),
                        ),
                    )
            backlog += len(queue)
        stats = self.stats
        stats.batches += 1
        if total_before > stats.max_total_depth:
            stats.max_total_depth = total_before
        if self._instrumented:
            self._t_batches.inc()
            self._t_depth.set(backlog)
        if backlog:
            self._flush_scheduled = True
            self._sim.schedule_in(
                self.config.flush_interval,
                self._flush,
                label=f"{self.name}:flush",
            )

    def tick(self, now: float) -> int:
        """Run the store's estimation/quarantine sweep (PR 4 machinery).

        With durability on, the sweep boundary is WAL-logged per live
        shard *before* it runs, so replay reproduces estimation state
        (extrapolation decay, quarantine timing) bit-exactly.
        """
        durability = self.durability
        if durability is not None:
            for index in range(self.config.shards):
                if not self.store.shard_is_down(index):
                    durability.log_tick(index, now)
                    durability.flush_shard(index)
        return self.store.tick(now)

    # -- crash / recovery -----------------------------------------------------
    def crash_shard(self, index: int) -> int:
        """Kill shard *index* deterministically; returns queued records lost.

        Drops the in-memory broker, the shard's queued-but-unflushed
        window, and any WAL entries not yet flushed — exactly what a
        process crash between flush windows loses.  Requires durability:
        a crash with no disk behind it could never satisfy the recovery
        gate, so it is a configuration error.
        """
        if self.durability is None:
            raise ValueError(
                "crash_shard requires a durability manager — an in-memory "
                "shard with no WAL cannot be recovered"
            )
        queue = self._queues[index]
        dropped = len(queue)
        affected = {update.node_id for _, update in queue}
        queue.clear()
        self.durability.on_crash(index)
        affected.update(self.store.crash_shard(index))
        self._crash_affected[index] = affected
        self._crash_dropped[index] = dropped
        self._crash_shed[index] = 0
        stats = self.stats
        stats.crashes += 1
        stats.crash_dropped_queued += dropped
        return dropped

    def restart_shard(self, index: int) -> RecoveryStats:
        """Recover shard *index* from snapshot + WAL tail replay.

        Rebuilds the broker from disk, conditionally restores store
        gates, then snapshots the recovered state (compacting the WAL)
        so a repeat crash replays a short tail.  Returns the recovery's
        stats, also appended to :attr:`recoveries`.
        """
        if self.durability is None:
            raise ValueError("restart_shard requires a durability manager")
        clock = self._recovery_clock
        started = clock() if clock is not None else 0.0
        recovered = self.durability.recover_shard(index)
        replayed = self.store.restore_shard(
            index,
            state=recovered.state,
            gates=recovered.gates,
            entries=recovered.entries,
        )
        self.durability.snapshot_now(
            index,
            state=self.store.shard(index).state_dict(),
            gates=self.store.shard_gates(index),
        )
        wall_s = (clock() - started) if clock is not None else 0.0
        stats = RecoveryStats(
            shard=index,
            at=self._sim.now,
            snapshot_lsn=recovered.snapshot_lsn,
            replayed=replayed,
            dropped_queued=self._crash_dropped.pop(index, 0),
            shed_while_down=self._crash_shed.pop(index, 0),
            affected_nodes=tuple(sorted(self._crash_affected.pop(index, set()))),
            wall_s=wall_s,
        )
        self.recoveries.append(stats)
        self.stats.recoveries += 1
        return stats

    def affected_nodes(self) -> set[str]:
        """Every node in any crash's explicitly-accounted loss window.

        The union over completed recoveries and still-down shards — the
        set the convergence gate excludes from the byte-compare.
        """
        affected: set[str] = set()
        for recovery in self.recoveries:
            affected.update(recovery.affected_nodes)
        for pending in self._crash_affected.values():
            affected.update(pending)
        return affected

    @property
    def backlog(self) -> int:
        """Records currently queued across all shards."""
        return sum(len(queue) for queue in self._queues)

    def latency_quantile(self, q: float) -> float:
        """Streaming ingest-latency quantile estimate (virtual seconds)."""
        return self.latency.quantile(q)
