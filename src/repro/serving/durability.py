"""Per-shard durability: write-ahead log + snapshots + compaction.

A :class:`~repro.serving.store.ShardedLocationStore` shard is a
:class:`~repro.broker.broker.GridBroker` living entirely in memory — a
crash loses its location DB, tracker states and quarantine sets.  This
module makes that state *reconstructible*: every applied LU and every
estimation sweep is appended to a per-shard write-ahead log before the
flush window ends, and periodic snapshots capture the broker's complete
``state_dict`` so the log can be compacted.  Recovery is then

    snapshot state  +  WAL tail replay (entries past the snapshot LSN)

which reproduces the shard bit-exactly, because a broker is a
deterministic function of its applied-LU/tick sequence and
``GridBroker.load_state`` restores the snapshot point exactly.

WAL format (``repro-shard-wal`` version 1)
------------------------------------------

A flat sequence of length+checksum framed records::

    [u32 length (LE)] [u32 crc32(payload) (LE)] [payload bytes]

Payloads are UTF-8 JSON.  Frame 0 is the file header
``{"base_lsn": N, "format": "repro-shard-wal", "shard": i, "version": 1}``;
every further frame is one entry:

* ``["lu", time, seq, node_id, x, y, vx, vy, region_id, dth]`` — the
  ``repro-lu-trace`` row encoding of one *applied* LU (post-dedup: the
  WAL records what the shard actually absorbed, so replay needs no
  gate logic);
* ``["tick", now]`` — one estimation sweep boundary.

Entries carry implicit log sequence numbers: the first entry frame in a
file has LSN ``base_lsn + 1``.  Compaction rewrites the file with a new
``base_lsn`` (atomically, via a temp file and ``os.replace``), so LSNs
are absolute across the shard's lifetime and a snapshot taken at LSN
``k`` pairs with any WAL whose ``base_lsn <= k``.

Torn tails are expected, not fatal: :func:`read_wal` scans frames and
stops at the first incomplete or checksum-failing one, returning the
longest valid prefix plus how many trailing bytes it discarded —
exactly the contract a killed writer needs.

Durability versus determinism: WAL/snapshot writes happen inside
simulator events and never read a wall clock (DET001); ``fsync`` is
policy (:class:`DurabilityConfig`), batched at flush-window boundaries.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.network.messages import LocationUpdate
from repro.telemetry import NULL_TELEMETRY

__all__ = [
    "WAL_FORMAT",
    "WAL_VERSION",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "WalError",
    "WalContents",
    "RecoveredShard",
    "WriteAheadLog",
    "DurabilityConfig",
    "DurabilityManager",
    "frame",
    "read_wal",
    "scan_frames",
    "load_snapshot",
    "write_snapshot",
]

WAL_FORMAT = "repro-shard-wal"
WAL_VERSION = 1
SNAPSHOT_FORMAT = "repro-shard-snapshot"
SNAPSHOT_VERSION = 1

#: Frame header: little-endian u32 payload length + u32 CRC32(payload).
_FRAME_HEADER = struct.Struct("<II")


class WalError(ValueError):
    """A structurally invalid WAL or snapshot (beyond a torn tail)."""


def frame(payload: bytes) -> bytes:
    """Wrap *payload* in the length+checksum frame."""
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_frames(data: bytes) -> tuple[list[Any], int]:
    """Decode the longest valid frame prefix of *data*.

    Returns ``(payloads, valid_length)`` where *payloads* are the decoded
    JSON documents of every intact frame and *valid_length* is the byte
    offset the scan stopped at — anything past it is a torn or corrupt
    tail.  A frame is intact only when its length fits, its CRC matches
    and its payload decodes as JSON.
    """
    payloads: list[Any] = []
    offset = 0
    header_size = _FRAME_HEADER.size
    total = len(data)
    while offset + header_size <= total:
        length, checksum = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + header_size
        end = start + length
        if end > total:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            break
        try:
            payloads.append(json.loads(payload.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        offset = end
    return payloads, offset


@dataclass(frozen=True)
class WalContents:
    """A WAL file's decoded contents (longest valid prefix)."""

    shard: int
    base_lsn: int
    entries: list[Any]
    torn_bytes: int

    @property
    def next_lsn(self) -> int:
        """The LSN the next appended entry would get."""
        return self.base_lsn + len(self.entries) + 1


def read_wal(path: str | Path) -> WalContents:
    """Read a WAL file from disk, tolerating a torn tail.

    Raises :class:`WalError` when the file has no intact, well-formed
    header frame — that is not a torn write, it is not a WAL.
    """
    data = Path(path).read_bytes()
    payloads, valid = scan_frames(data)
    if not payloads:
        raise WalError(f"{path}: no intact WAL header frame")
    header = payloads[0]
    if not isinstance(header, dict) or header.get("format") != WAL_FORMAT:
        raise WalError(f"{path}: not a {WAL_FORMAT} file")
    if header.get("version") != WAL_VERSION:
        raise WalError(
            f"{path}: unsupported WAL version {header.get('version')!r}"
        )
    return WalContents(
        shard=int(header.get("shard", 0)),
        base_lsn=int(header.get("base_lsn", 0)),
        entries=payloads[1:],
        torn_bytes=len(data) - valid,
    )


class WriteAheadLog:
    """Append-only, length+checksum framed per-shard log.

    Appends are buffered in memory and written on :meth:`flush` — the
    service calls it once per flush window, so one window's records cost
    one ``write`` (and, with ``fsync=True``, one ``fsync``).  The crash
    model matches: anything appended but not yet flushed dies with the
    process, which is exactly the "queued-but-unflushed window" the
    recovery accounting charges to the crash.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        shard: int = 0,
        base_lsn: int = 0,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.shard = shard
        self.base_lsn = base_lsn
        self.fsync = fsync
        self.appended = 0
        self.flushes = 0
        self.fsyncs = 0
        self._entries_in_file = 0
        self._buffer: list[bytes] = []
        #: node/region id -> its JSON string literal.  Ids repeat across
        #: nearly every record, and ``json.dumps`` per append is the
        #: single largest WAL cost — the cache turns the hot path into
        #: one f-string (floats via ``repr``, which is valid JSON for
        #: every finite value, and identical for identical inputs, so
        #: determinism is untouched).
        self._id_cache: dict[str, str] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("wb")
        self._fh.write(frame(self._header_payload()))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
            self.fsyncs += 1

    def _header_payload(self) -> bytes:
        header = {
            "base_lsn": self.base_lsn,
            "format": WAL_FORMAT,
            "shard": self.shard,
            "version": WAL_VERSION,
        }
        return json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @property
    def next_lsn(self) -> int:
        """LSN the next appended entry will get (buffered ones included).

        Entry LSNs start at ``base_lsn + 1`` — the base names the last
        LSN already compacted *into* a snapshot, so "entries strictly
        past LSN k" is always ``entries[k - base_lsn:]``.
        """
        return self.base_lsn + self._entries_in_file + len(self._buffer) + 1

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended entry (``base_lsn`` if none)."""
        return self.next_lsn - 1

    def append(self, entry: list[Any]) -> int:
        """Buffer one entry; returns its LSN (durable only after flush)."""
        payload = json.dumps(
            entry, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        self._buffer.append(frame(payload))
        self.appended += 1
        return self.last_lsn

    def _json_id(self, value: str) -> str:
        cached = self._id_cache.get(value)
        if cached is None:
            cached = self._id_cache[value] = json.dumps(
                value, sort_keys=True
            )
        return cached

    def append_update(self, update: LocationUpdate) -> int:
        """Append one applied LU in the ``repro-lu-trace`` row encoding.

        An update decoded from a recorded source carries its canonical
        row bytes in ``update.wire``; the WAL then logs those received
        bytes (splicing the ``"lu"`` tag in) rather than re-serializing
        — re-encoding full-precision doubles costs more than the rest of
        the append put together.  Both branches produce byte-identical
        frames: ``wire`` is canonical by construction and the fallback's
        ``repr``-formatted floats are exactly ``json.dumps``'s.
        """
        wire = update.wire
        if wire is not None:
            payload = b'["lu",' + wire[1:]
        else:
            position = update.position
            velocity = update.velocity
            payload = (
                f'["lu",{update.timestamp!r},{update.seq},'
                f"{self._json_id(update.node_id)},"
                f"{position.x!r},{position.y!r},"
                f"{velocity.x!r},{velocity.y!r},"
                f"{self._json_id(update.region_id)},{update.dth!r}]"
            ).encode("utf-8")
        self._buffer.append(frame(payload))
        self.appended += 1
        return self.base_lsn + self._entries_in_file + len(self._buffer)

    def append_tick(self, now: float) -> int:
        """Append one estimation-sweep boundary."""
        return self.append(["tick", now])

    def flush(self) -> int:
        """Write buffered frames; returns how many entries became durable."""
        if not self._buffer:
            return 0
        flushed = len(self._buffer)
        self._fh.write(b"".join(self._buffer))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
            self.fsyncs += 1
        self._entries_in_file += flushed
        self._buffer.clear()
        self.flushes += 1
        return flushed

    def drop_buffer(self) -> int:
        """Discard appended-but-unflushed entries (the crash's lost window)."""
        dropped = len(self._buffer)
        self._buffer.clear()
        self.appended -= dropped
        return dropped

    def compact(self, upto_lsn: int) -> int:
        """Drop durable entries with LSN <= *upto_lsn*; returns how many.

        Rewrites the file as header(base_lsn=*upto_lsn*) + surviving
        entries via a temp file and an atomic ``os.replace``, so a crash
        mid-compaction leaves either the old or the new file intact.
        """
        self.flush()
        contents = read_wal(self.path)
        keep_from = upto_lsn - contents.base_lsn
        if keep_from <= 0:
            return 0
        keep_from = min(keep_from, len(contents.entries))
        survivors = contents.entries[keep_from:]
        self._fh.close()
        new_base = contents.base_lsn + keep_from
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self.base_lsn = new_base
        with tmp.open("wb") as out:
            out.write(frame(self._header_payload()))
            for entry in survivors:
                payload = json.dumps(
                    entry, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
                out.write(frame(payload))
            out.flush()
            if self.fsync:
                os.fsync(out.fileno())
                self.fsyncs += 1
        os.replace(tmp, self.path)
        self._entries_in_file = len(survivors)
        self._fh = self.path.open("ab")
        return keep_from

    def close(self) -> None:
        """Flush and close the underlying file."""
        self.flush()
        self._fh.close()


# -- snapshots ----------------------------------------------------------------
def write_snapshot(
    path: str | Path,
    *,
    shard: int,
    lsn: int,
    state: dict[str, Any],
    gates: dict[str, Any],
) -> Path:
    """Atomically write one shard snapshot (sorted-key JSON).

    *state* is the shard broker's ``state_dict()``; *gates* the store's
    per-node dedup/latest-fix gates for nodes owned by this shard
    (``node -> [seq, time, x, y]``).  *lsn* names the last WAL entry the
    snapshot includes — recovery replays strictly-later entries only.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format": SNAPSHOT_FORMAT,
        "gates": gates,
        "lsn": lsn,
        "shard": shard,
        "state": state,
        "version": SNAPSHOT_VERSION,
    }
    tmp = out.with_suffix(out.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    os.replace(tmp, out)
    return out


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Load and validate one shard snapshot document."""
    source = Path(path)
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise WalError(f"{source}: unreadable snapshot") from exc
    if (
        not isinstance(document, dict)
        or document.get("format") != SNAPSHOT_FORMAT
    ):
        raise WalError(f"{source}: not a {SNAPSHOT_FORMAT} file")
    if document.get("version") != SNAPSHOT_VERSION:
        raise WalError(
            f"{source}: unsupported snapshot version "
            f"{document.get('version')!r}"
        )
    return document


@dataclass(frozen=True)
class RecoveredShard:
    """Everything recovery needs to rebuild one shard from disk."""

    shard: int
    #: Broker ``state_dict`` from the snapshot, or None (cold start).
    state: dict[str, Any] | None
    #: Store gates at the snapshot point (``node -> [seq, time, x, y]``).
    gates: dict[str, Any]
    #: WAL tail entries past the snapshot LSN, in append order.
    entries: list[Any]
    snapshot_lsn: int
    torn_bytes: int

    @property
    def replayed(self) -> int:
        """How many WAL entries recovery will replay."""
        return len(self.entries)


@dataclass(frozen=True)
class DurabilityConfig:
    """Durability tunables.

    ``snapshot_every`` snapshots a shard (and compacts its WAL) once
    that many LU entries accumulate past the last snapshot; ``0``
    disables periodic snapshots, leaving recovery to full-log replay.
    ``fsync`` batches an ``os.fsync`` per flush window — off by default
    because the deterministic replay harness cares about write *order*,
    not storage-power-loss semantics.
    """

    snapshot_every: int = 0
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )


@dataclass
class DurabilityStats:
    """Counters accumulated by a durability manager."""

    wal_appended: int = 0
    wal_flushes: int = 0
    snapshots_written: int = 0
    compacted_entries: int = 0
    recoveries: int = 0
    recovered_entries: int = 0
    dropped_unflushed: int = 0
    lsn_per_shard: list[int] = field(default_factory=list)


class DurabilityManager:
    """Owns the per-shard WALs and snapshots under one directory.

    Layout: ``shard-000.wal`` / ``shard-000.snap.json`` (index
    zero-padded to three digits).  Bind to a shard count once (the
    :class:`~repro.serving.service.IngestService` does this at
    construction), then the service drives :meth:`log_applied` /
    :meth:`log_tick` per record, :meth:`flush_window` per flush, and
    :meth:`maybe_snapshot` at window boundaries.
    """

    def __init__(
        self,
        directory: str | Path,
        config: DurabilityConfig | None = None,
        *,
        telemetry: Any = None,
    ) -> None:
        self.directory = Path(directory)
        self.config = config or DurabilityConfig()
        self.stats = DurabilityStats()
        self._wals: list[WriteAheadLog] = []
        self._lus_since_snapshot: list[int] = []
        self._snapshot_lsn: list[int] = []
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_appended = tm.counter("serving.wal.appended")
        self._t_flushes = tm.counter("serving.wal.flushes")
        self._t_snapshots = tm.counter("serving.snapshot.written")
        self._t_recovered = tm.counter("serving.recovery.replayed")

    # -- layout ---------------------------------------------------------------
    def wal_path(self, index: int) -> Path:
        """The shard's WAL file path."""
        return self.directory / f"shard-{index:03d}.wal"

    def snapshot_path(self, index: int) -> Path:
        """The shard's snapshot file path."""
        return self.directory / f"shard-{index:03d}.snap.json"

    @property
    def shard_count(self) -> int:
        """How many shards are bound (0 before :meth:`bind`)."""
        return len(self._wals)

    def bind(self, shard_count: int) -> None:
        """Create fresh WALs for *shard_count* shards."""
        if self._wals:
            raise RuntimeError("DurabilityManager is already bound")
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.directory.mkdir(parents=True, exist_ok=True)
        self._wals = [
            WriteAheadLog(
                self.wal_path(index),
                shard=index,
                fsync=self.config.fsync,
            )
            for index in range(shard_count)
        ]
        self._lus_since_snapshot = [0] * shard_count
        self._snapshot_lsn = [0] * shard_count
        self.stats.lsn_per_shard = [0] * shard_count

    def wal(self, index: int) -> WriteAheadLog:
        """The shard's live WAL (tests and diagnostics)."""
        return self._wals[index]

    # -- the write path -------------------------------------------------------
    def log_applied(self, index: int, update: LocationUpdate) -> int:
        """Append one applied LU to the shard's WAL; returns its LSN."""
        lsn = self._wals[index].append_update(update)
        self.note_appended(index, 1)
        return lsn

    def note_appended(self, index: int, count: int) -> None:
        """Account *count* LU appends made directly on :meth:`wal`.

        The service's drain loop appends on the shard WAL without the
        per-record manager hop (the hop is measurable at 100k msg/s) and
        settles the bookkeeping once per batch through here.
        """
        self._lus_since_snapshot[index] += count
        self.stats.wal_appended += count
        if self._instrumented:
            self._t_appended.inc(count)

    def log_tick(self, index: int, now: float) -> int:
        """Append one estimation-sweep boundary to the shard's WAL."""
        lsn = self._wals[index].append_tick(now)
        self.stats.wal_appended += 1
        if self._instrumented:
            self._t_appended.inc()
        return lsn

    def flush_shard(self, index: int) -> int:
        """Make the shard's buffered entries durable."""
        wal = self._wals[index]
        flushed = wal.flush()
        if flushed:
            self.stats.wal_flushes += 1
            self.stats.lsn_per_shard[index] = wal.last_lsn
            if self._instrumented:
                self._t_flushes.inc()
        return flushed

    def maybe_snapshot(
        self,
        index: int,
        state_fn: Callable[[], tuple[dict[str, Any], dict[str, Any]]],
    ) -> bool:
        """Snapshot + compact the shard if its cadence is due.

        *state_fn* is called only when a snapshot is actually taken; it
        returns ``(broker_state_dict, store_gates)``.
        """
        every = self.config.snapshot_every
        if every <= 0 or self._lus_since_snapshot[index] < every:
            return False
        state, gates = state_fn()
        self.snapshot_now(index, state=state, gates=gates)
        return True

    def snapshot_now(
        self, index: int, *, state: dict[str, Any], gates: dict[str, Any]
    ) -> int:
        """Write the shard's snapshot at its current LSN, then compact."""
        wal = self._wals[index]
        wal.flush()
        lsn = wal.last_lsn
        write_snapshot(
            self.snapshot_path(index),
            shard=index,
            lsn=lsn,
            state=state,
            gates=gates,
        )
        self._snapshot_lsn[index] = lsn
        self._lus_since_snapshot[index] = 0
        self.stats.snapshots_written += 1
        if self._instrumented:
            self._t_snapshots.inc()
        self.stats.compacted_entries += wal.compact(lsn)
        return lsn

    # -- the crash / recovery path --------------------------------------------
    def on_crash(self, index: int) -> int:
        """Drop the shard's unflushed WAL window; returns entries lost."""
        dropped = self._wals[index].drop_buffer()
        self.stats.dropped_unflushed += dropped
        return dropped

    def recover_shard(self, index: int) -> RecoveredShard:
        """Read the shard's snapshot + WAL tail back from disk.

        Reads the *files*, not in-memory state — the recovery path is
        the same whether the shard died in-process (chaos lane) or the
        whole process restarted.
        """
        snapshot_lsn = 0
        state: dict[str, Any] | None = None
        gates: dict[str, Any] = {}
        snap_path = self.snapshot_path(index)
        if snap_path.exists():
            document = load_snapshot(snap_path)
            snapshot_lsn = int(document["lsn"])
            raw_state = document["state"]
            state = raw_state if isinstance(raw_state, dict) else None
            raw_gates = document.get("gates")
            gates = raw_gates if isinstance(raw_gates, dict) else {}
        contents = read_wal(self.wal_path(index))
        skip = snapshot_lsn - contents.base_lsn
        entries = contents.entries[skip:] if skip > 0 else contents.entries
        recovered = RecoveredShard(
            shard=index,
            state=state,
            gates=gates,
            entries=list(entries),
            snapshot_lsn=snapshot_lsn,
            torn_bytes=contents.torn_bytes,
        )
        self.stats.recoveries += 1
        self.stats.recovered_entries += recovered.replayed
        if self._instrumented:
            self._t_recovered.inc(recovered.replayed)
        return recovered

    def close(self) -> None:
        """Flush and close every WAL."""
        for wal in self._wals:
            wal.close()
