"""Client-side transport adapter: replayed LUs over the ARQ link.

The load generator can feed an :class:`~repro.serving.service.IngestService`
directly (the fast path for throughput ceilings), but a realistic client
sits on the far side of a lossy wireless link.
:class:`ReliableIngestClient` models that client: it pushes LUs through a
:class:`~repro.network.reliable.ReliableLink` whose receiver-side *sink*
is the service's :meth:`~repro.serving.service.IngestService.submit` and
whose *accept* gate is the service's
:meth:`~repro.serving.service.IngestService.has_capacity` — so a service
under backpressure simply refuses the message *before* it is acked, the
sender's ARQ timer fires, and the LU is retried with backoff instead of
being silently dropped.  Shed becomes retransmission pressure, visible in
both the link's and the service's counters.

Retry pressure needs a relief valve: a *crashed* shard refuses every
message for its whole down window, and without one every client would
burn its full retry budget per LU and then hammer the shard the moment
it restarts (a retry storm against a recovering shard).  The client
therefore keeps a per-shard **circuit breaker** driven by the link's
sender-side outcomes: ``failure_threshold`` consecutive give-ups open
the breaker, an open breaker sheds locally (cheap, accounted) instead of
transmitting, and after an exponentially growing cooldown one probe is
let through — an ack closes the breaker, another give-up reopens it with
a longer cooldown.  Shed-vs-retry is explicit in :meth:`accounting`.
"""

from __future__ import annotations

from typing import Any

from repro.network.channel import WirelessChannel
from repro.network.messages import LocationUpdate, Message, SequenceSource
from repro.network.reliable import ReliableLink
from repro.simkernel import Simulator

__all__ = ["ReliableIngestClient"]


class _Breaker:
    """Per-shard circuit-breaker state."""

    __slots__ = ("consecutive_failures", "open_until", "reopenings", "opens")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.open_until = 0.0
        #: Consecutive openings without an intervening success — the
        #: exponent of the cooldown backoff.
        self.reopenings = 0
        self.opens = 0


class ReliableIngestClient:
    """Submits LUs to an ingest service through a lossy ARQ link."""

    def __init__(
        self,
        sim: Simulator,
        service: Any,
        channel: WirelessChannel,
        *,
        ack_channel: WirelessChannel | None = None,
        ack_timeout: float = 0.5,
        backoff_factor: float = 2.0,
        max_retries: int = 4,
        failure_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        breaker_backoff: float = 2.0,
        breaker_max_cooldown: float = 30.0,
        seq_source: SequenceSource | None = None,
        name: str = "ingest-client",
        telemetry: Any = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be > 0, got {breaker_cooldown}"
            )
        if breaker_backoff < 1.0:
            raise ValueError(
                f"breaker_backoff must be >= 1, got {breaker_backoff}"
            )
        if breaker_max_cooldown < breaker_cooldown:
            raise ValueError(
                "breaker_max_cooldown must be >= breaker_cooldown, got "
                f"{breaker_max_cooldown} < {breaker_cooldown}"
            )
        self._sim = sim
        self._service = service
        self.name = name
        self._failure_threshold = failure_threshold
        self._breaker_cooldown = breaker_cooldown
        self._breaker_backoff = breaker_backoff
        self._breaker_max_cooldown = breaker_max_cooldown
        self._breakers: dict[int, _Breaker] = {}
        self.link = ReliableLink(
            sim,
            channel,
            self._deliver,
            ack_channel=ack_channel,
            accept=self._accept,
            ack_timeout=ack_timeout,
            backoff_factor=backoff_factor,
            max_retries=max_retries,
            seq_source=seq_source,
            name=name,
            telemetry=telemetry,
            on_acked=self._acked,
            on_gave_up=self._gave_up,
        )
        #: LUs the service shed even though the accept gate let them in
        #: (capacity vanished between probe and submit — only possible
        #: when something else fills the queue within the same event).
        self.shed_after_accept = 0
        #: LUs shed locally by an open breaker (never transmitted).
        self.shed_by_breaker = 0
        #: Breaker open transitions (probe failures reopening count too).
        self.breaker_opens = 0

    # -- breaker --------------------------------------------------------------
    def _breaker(self, shard: int) -> _Breaker:
        breaker = self._breakers.get(shard)
        if breaker is None:
            breaker = self._breakers[shard] = _Breaker()
        return breaker

    def breaker_is_open(self, shard: int) -> bool:
        """Whether *shard*'s breaker currently refuses sends (no probe due)."""
        breaker = self._breakers.get(shard)
        return breaker is not None and self._sim.now < breaker.open_until

    def _acked(self, message: Message) -> None:
        if not isinstance(message, LocationUpdate):
            return
        breaker = self._breakers.get(self._service.shard_index(message))
        if breaker is not None:
            breaker.consecutive_failures = 0
            breaker.reopenings = 0
            breaker.open_until = 0.0

    def _gave_up(self, message: Message) -> None:
        if not isinstance(message, LocationUpdate):
            return
        breaker = self._breaker(self._service.shard_index(message))
        breaker.consecutive_failures += 1
        if breaker.consecutive_failures < self._failure_threshold:
            return
        cooldown = self._breaker_cooldown * (
            self._breaker_backoff**breaker.reopenings
        )
        if cooldown > self._breaker_max_cooldown:
            cooldown = self._breaker_max_cooldown
        breaker.open_until = self._sim.now + cooldown
        breaker.reopenings += 1
        breaker.opens += 1
        self.breaker_opens += 1
        # The next send after open_until is the half-open probe: one
        # give-up away from reopening with a longer cooldown, one ack
        # away from closing fully.
        breaker.consecutive_failures = self._failure_threshold - 1

    # -- transport ------------------------------------------------------------
    def _accept(self, message: Message) -> bool:
        # Withholding the ack (returning False) is the backpressure
        # signal: the sender's timeout fires and the LU is retried.
        if isinstance(message, LocationUpdate):
            return bool(self._service.has_capacity(message))
        return True

    def _deliver(self, message: Message) -> None:
        if isinstance(message, LocationUpdate):
            if not self._service.submit(message):
                self.shed_after_accept += 1

    def send(self, update: LocationUpdate) -> bool:
        """Offer one LU for reliable delivery; False when breaker-shed.

        An open breaker sheds without transmitting — the deliberate,
        accounted alternative to burning the retry budget against a
        shard known to be down.
        """
        if self.breaker_is_open(self._service.shard_index(update)):
            self.shed_by_breaker += 1
            return False
        self.link.send(update)
        return True

    # -- accounting -----------------------------------------------------------
    def accounting(self) -> dict[str, int]:
        """Shed-vs-retry accounting across the link and the breaker."""
        stats = self.link.stats
        return {
            "breaker_opens": self.breaker_opens,
            "delivered": stats.delivered,
            "gave_up": stats.gave_up,
            "offered": stats.offered,
            "retransmits": stats.retransmits,
            "shed_after_accept": self.shed_after_accept,
            "shed_by_breaker": self.shed_by_breaker,
        }

    @property
    def stats(self) -> Any:
        """The underlying link's :class:`ReliableLinkStats`."""
        return self.link.stats

    @property
    def in_flight(self) -> int:
        """LUs sent but neither acked nor abandoned yet."""
        return self.link.in_flight
