"""Client-side transport adapter: replayed LUs over the ARQ link.

The load generator can feed an :class:`~repro.serving.service.IngestService`
directly (the fast path for throughput ceilings), but a realistic client
sits on the far side of a lossy wireless link.
:class:`ReliableIngestClient` models that client: it pushes LUs through a
:class:`~repro.network.reliable.ReliableLink` whose receiver-side *sink*
is the service's :meth:`~repro.serving.service.IngestService.submit` and
whose *accept* gate is the service's
:meth:`~repro.serving.service.IngestService.has_capacity` — so a service
under backpressure simply refuses the message *before* it is acked, the
sender's ARQ timer fires, and the LU is retried with backoff instead of
being silently dropped.  Shed becomes retransmission pressure, visible in
both the link's and the service's counters.
"""

from __future__ import annotations

from typing import Any

from repro.network.channel import WirelessChannel
from repro.network.messages import LocationUpdate, Message, SequenceSource
from repro.network.reliable import ReliableLink
from repro.simkernel import Simulator

__all__ = ["ReliableIngestClient"]


class ReliableIngestClient:
    """Submits LUs to an ingest service through a lossy ARQ link."""

    def __init__(
        self,
        sim: Simulator,
        service: Any,
        channel: WirelessChannel,
        *,
        ack_channel: WirelessChannel | None = None,
        ack_timeout: float = 0.5,
        backoff_factor: float = 2.0,
        max_retries: int = 4,
        seq_source: SequenceSource | None = None,
        name: str = "ingest-client",
        telemetry: Any = None,
    ) -> None:
        self._service = service
        self.name = name
        self.link = ReliableLink(
            sim,
            channel,
            self._deliver,
            ack_channel=ack_channel,
            accept=self._accept,
            ack_timeout=ack_timeout,
            backoff_factor=backoff_factor,
            max_retries=max_retries,
            seq_source=seq_source,
            name=name,
            telemetry=telemetry,
        )
        #: LUs the service shed even though the accept gate let them in
        #: (capacity vanished between probe and submit — only possible
        #: when something else fills the queue within the same event).
        self.shed_after_accept = 0

    def _accept(self, message: Message) -> bool:
        # Withholding the ack (returning False) is the backpressure
        # signal: the sender's timeout fires and the LU is retried.
        if isinstance(message, LocationUpdate):
            return bool(self._service.has_capacity(message))
        return True

    def _deliver(self, message: Message) -> None:
        if isinstance(message, LocationUpdate):
            if not self._service.submit(message):
                self.shed_after_accept += 1

    def send(self, update: LocationUpdate) -> None:
        """Offer one LU for reliable delivery to the service."""
        self.link.send(update)

    @property
    def stats(self) -> Any:
        """The underlying link's :class:`ReliableLinkStats`."""
        return self.link.stats

    @property
    def in_flight(self) -> int:
        """LUs sent but neither acked nor abandoned yet."""
        return self.link.in_flight
