"""The replay run's exported result: one flat, sorted-key JSON document.

A :class:`ServingReport` is assembled from the ingest service's counters
and latency histogram after a replay completes.  Every field is a pure
function of (trace, rate, serving config), so two same-seed replays
serialise byte-identically — ``to_json`` dumps with ``sort_keys=True``
and the CI ``serving-smoke`` gate ``cmp``s the files.

When telemetry was enabled for the run, the registry's metric snapshot
rides along under ``"metrics"`` (itself sorted by full metric name).
Spans and wall-clock data never enter the report — they live in the
telemetry snapshot proper, which is allowed to vary run to run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["ServingReport"]


@dataclass(frozen=True)
class ServingReport:
    """Outcome of replaying one trace through the ingest service."""

    # -- workload ----------------------------------------------------------
    trace_meta: dict[str, Any] = field(default_factory=dict)
    records: int = 0
    rate: float = 0.0
    shards: int = 0
    replay_seconds: float = 0.0

    # -- intake ------------------------------------------------------------
    offered: int = 0
    accepted: int = 0
    shed: int = 0
    shed_rate: float = 0.0
    batches: int = 0
    max_queue_depth: int = 0
    max_total_depth: int = 0

    # -- store -------------------------------------------------------------
    applied: int = 0
    duplicates: int = 0
    reordered: int = 0
    broker_stale_dropped: int = 0
    estimates_made: int = 0
    quarantines: int = 0
    resyncs: int = 0
    node_count: int = 0
    shard_sizes: list[int] = field(default_factory=list)

    # -- durability & recovery (all zero when durability is off) -------------
    wal_appended: int = 0
    wal_flushes: int = 0
    snapshots_written: int = 0
    compacted_entries: int = 0
    crashes: int = 0
    crash_dropped_queued: int = 0
    shed_down: int = 0
    down_dropped: int = 0
    recoveries: int = 0
    recovery_replayed: int = 0

    # -- SLOs (virtual seconds / msgs per virtual second) -------------------
    latency_count: int = 0
    latency_mean: float = 0.0
    latency_min: float = 0.0
    latency_max: float = 0.0
    latency_p50: float = 0.0
    latency_p90: float = 0.0
    latency_p99: float = 0.0
    offered_rate: float = 0.0
    applied_rate: float = 0.0

    #: Telemetry metric snapshot (sorted by full name) when enabled.
    metrics: dict[str, Any] | None = None

    @classmethod
    def from_service(
        cls,
        service: Any,
        *,
        records: int,
        rate: float,
        replay_seconds: float,
        trace_meta: dict[str, Any] | None = None,
        metrics: dict[str, Any] | None = None,
    ) -> "ServingReport":
        """Assemble the report from a drained :class:`IngestService`."""
        stats = service.stats
        store = service.store
        latency = service.latency
        durability = service.durability
        seconds = replay_seconds
        return cls(
            trace_meta=dict(trace_meta or {}),
            records=records,
            rate=rate,
            shards=service.config.shards,
            replay_seconds=seconds,
            offered=stats.offered,
            accepted=stats.accepted,
            shed=stats.shed,
            shed_rate=stats.shed_rate,
            batches=stats.batches,
            max_queue_depth=stats.max_queue_depth,
            max_total_depth=stats.max_total_depth,
            applied=store.applied,
            duplicates=store.duplicates,
            reordered=store.reordered,
            broker_stale_dropped=store.broker_stale_dropped,
            estimates_made=store.estimates_made,
            quarantines=store.quarantines,
            resyncs=store.resyncs,
            node_count=store.node_count,
            shard_sizes=store.shard_sizes(),
            wal_appended=durability.stats.wal_appended if durability else 0,
            wal_flushes=durability.stats.wal_flushes if durability else 0,
            snapshots_written=(
                durability.stats.snapshots_written if durability else 0
            ),
            compacted_entries=(
                durability.stats.compacted_entries if durability else 0
            ),
            crashes=stats.crashes,
            crash_dropped_queued=stats.crash_dropped_queued,
            shed_down=stats.shed_down,
            down_dropped=store.down_dropped,
            recoveries=stats.recoveries,
            recovery_replayed=sum(r.replayed for r in service.recoveries),
            latency_count=latency.count,
            latency_mean=latency.mean,
            latency_min=latency.min,
            latency_max=latency.max,
            latency_p50=latency.quantile(0.5),
            latency_p90=latency.quantile(0.9),
            latency_p99=latency.quantile(0.99),
            offered_rate=stats.offered / seconds if seconds > 0 else 0.0,
            applied_rate=store.applied / seconds if seconds > 0 else 0.0,
            metrics=metrics,
        )

    def to_json_dict(self) -> dict[str, Any]:
        """A plain JSON-serialisable mapping of every field."""
        return asdict(self)

    def to_json(self) -> str:
        """Canonical (sorted-key, indented) JSON rendering."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    def write_json(self, path: str | Path) -> Path:
        """Write the canonical JSON to *path*; returns the path."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json() + "\n", encoding="utf-8")
        return out

    def summary(self) -> str:
        """Terse human-readable digest for CLI output."""
        return (
            f"records={self.records} offered={self.offered} "
            f"applied={self.applied} shed={self.shed} "
            f"(rate {self.shed_rate:.1%}) "
            f"p50={self.latency_p50 * 1000:.2f}ms "
            f"p99={self.latency_p99 * 1000:.2f}ms "
            f"throughput={self.applied_rate:,.0f} msg/s"
        )
