"""LU trace record/replay: a compact, replayable log of an LU stream.

The serving subsystem decouples workload *generation* from workload
*serving*: a :class:`TraceRecorder` captures the LU stream one harness
lane actually transmitted (post-filter, DTH-stamped) into a flat list of
:class:`TraceRecord` rows, and :func:`write_trace` / :func:`read_trace`
persist them as a line-oriented log the load generator replays at any
rate.

Format (``repro-lu-trace`` version 1) — one JSON document per line:

* line 1, the header: ``{"format": "repro-lu-trace", "meta": {...},
  "version": 1}`` with sorted keys and compact separators;
* every further line, one record as a JSON array
  ``[time, seq, node_id, x, y, vx, vy, region_id, dth]``.

Arrays carry no key order, floats round-trip exactly through Python's
``json`` (repr-based shortest-float encoding), and the header is dumped
with ``sort_keys=True`` — so writing the same records twice produces
byte-identical files, which the serving determinism gate (CI
``serving-smoke``) relies on.  Records are written in capture order;
the recorder captures in simulation order, so per node both ``time``
and ``seq`` are non-decreasing — the trace invariant the sharded
store's duplicate detection leans on.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.geometry import Vec2
from repro.network.messages import LocationUpdate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceError",
    "TraceRecord",
    "TraceRecorder",
    "ColumnarTraceRecorder",
    "write_trace",
    "read_trace",
    "record_trace",
    "record_columnar_trace",
]

TRACE_FORMAT = "repro-lu-trace"
TRACE_VERSION = 1


class TraceError(ValueError):
    """A malformed trace file (bad header, truncated or mistyped row)."""


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One captured LU, flattened to plain scalars.

    ``seq`` is the per-run sequence number the harness stamped on the
    LU; within one node it increases with ``time``, which is what lets
    the serving store treat a replayed ``seq`` at-or-below the last
    applied one as a retransmit/reorder rather than new information.
    """

    time: float
    seq: int
    node_id: str
    x: float
    y: float
    vx: float
    vy: float
    region_id: str
    dth: float
    #: Canonical compact-JSON encoding of :meth:`to_row`, attached when the
    #: record was parsed from a file.  Rides into
    #: :attr:`~repro.network.messages.LocationUpdate.wire` so the serving
    #: WAL can log the bytes as received instead of re-serializing every
    #: LU.  Excluded from equality: parsed records still compare equal to
    #: freshly captured ones.
    encoded: bytes | None = field(default=None, compare=False, repr=False)

    @classmethod
    def from_update(cls, update: LocationUpdate) -> "TraceRecord":
        """Flatten a transmitted LU into a trace row."""
        return cls(
            time=update.timestamp,
            seq=update.seq,
            node_id=update.node_id,
            x=update.position.x,
            y=update.position.y,
            vx=update.velocity.x,
            vy=update.velocity.y,
            region_id=update.region_id,
            dth=update.dth,
        )

    def to_update(self) -> LocationUpdate:
        """Rebuild the LU this row captured (bit-identical fields)."""
        return LocationUpdate(
            sender=self.node_id,
            timestamp=self.time,
            seq=self.seq,
            node_id=self.node_id,
            position=Vec2(self.x, self.y),
            velocity=Vec2(self.vx, self.vy),
            region_id=self.region_id,
            dth=self.dth,
            wire=self.encoded,
        )

    def to_row(self) -> list[Any]:
        """The JSON-array row this record serialises to."""
        return [
            self.time,
            self.seq,
            self.node_id,
            self.x,
            self.y,
            self.vx,
            self.vy,
            self.region_id,
            self.dth,
        ]

    @classmethod
    def from_row(cls, row: Sequence[Any]) -> "TraceRecord":
        """Parse one trace line's JSON array (strict arity and types)."""
        if len(row) != 9:
            raise TraceError(f"trace row needs 9 fields, got {len(row)}")
        time, seq, node_id, x, y, vx, vy, region_id, dth = row
        if not isinstance(node_id, str) or not isinstance(region_id, str):
            raise TraceError(f"trace row ids must be strings: {row!r}")
        if not isinstance(seq, int):
            raise TraceError(f"trace row seq must be an int: {row!r}")
        values = [
            float(time),
            seq,
            node_id,
            float(x),
            float(y),
            float(vx),
            float(vy),
            region_id,
            float(dth),
        ]
        # Re-encode canonically (not the raw input line) so every consumer
        # of ``encoded`` sees the exact bytes :func:`write_trace` would
        # produce, whatever whitespace the source file used.
        return cls(
            *values,
            encoded=json.dumps(
                values, sort_keys=True, separators=(",", ":")
            ).encode("utf-8"),
        )


class TraceRecorder:
    """Captures one lane's transmitted LU stream from the harness.

    Instances are :class:`~repro.experiments.harness.MobileGridExperiment`
    ``lu_observer`` callables: the harness invokes them as
    ``observer(lane_name, update)`` for every LU that survived the lane's
    filter.  Only the configured *lane*'s stream is kept — recording the
    ADF lane yields the paper's reduced traffic, recording ``ideal`` the
    unfiltered firehose.
    """

    def __init__(self, lane: str = "adf-1") -> None:
        self.lane = lane
        self.records: list[TraceRecord] = []

    def __call__(self, lane_name: str, update: LocationUpdate) -> None:
        if lane_name == self.lane:
            self.records.append(TraceRecord.from_update(update))


class ColumnarTraceRecorder:
    """Captures one lane's LU stream from the *columnar* engine.

    Instances are :class:`~repro.core.columnar.engine.ColumnarExperiment`
    ``lu_observer`` callables: the engine invokes them once per lane per
    step with the transmitting row indices and the full-width state
    columns.  The recorder gathers the transmitted rows into
    :class:`TraceRecord` objects, mapping row numbers and region codes
    back to the string ids a trace carries — call :meth:`bind` with the
    experiment's ``node_ids`` and ``resolver.region_ids`` before the run.

    The columnar engine has no per-LU sequence stamps, so the recorder
    synthesises ``seq`` from a single per-run counter advanced in
    capture order (steps advance time, rows within a step are visited in
    ascending index order) — per node both ``time`` and ``seq`` are
    non-decreasing, the trace invariant replay relies on.
    """

    def __init__(self, lane: str = "adf-1") -> None:
        self.lane = lane
        self.records: list[TraceRecord] = []
        self._node_ids: list[str] | None = None
        self._region_ids: list[str] | None = None
        self._seq = 0

    def bind(self, node_ids: list[str], region_ids: list[str]) -> None:
        """Attach the id tables that turn row/code integers into strings."""
        self._node_ids = list(node_ids)
        self._region_ids = list(region_ids)

    def __call__(
        self,
        lane_name: str,
        now: float,
        idx: Any,
        x: Any,
        y: Any,
        vx: Any,
        vy: Any,
        codes: Any,
        dth: Any,
    ) -> None:
        if lane_name != self.lane:
            return
        if self._node_ids is None or self._region_ids is None:
            raise TraceError(
                "ColumnarTraceRecorder is unbound — call bind(node_ids, "
                "region_ids) before running the experiment"
            )
        node_ids = self._node_ids
        region_ids = self._region_ids
        records = self.records
        seq = self._seq
        time = float(now)
        for i, xi, yi, vxi, vyi, code, dth_i in zip(
            idx.tolist(),
            x[idx].tolist(),
            y[idx].tolist(),
            vx[idx].tolist(),
            vy[idx].tolist(),
            codes[idx].tolist(),
            dth[idx].tolist(),
        ):
            seq += 1
            records.append(
                TraceRecord(
                    time=time,
                    seq=seq,
                    node_id=node_ids[i],
                    x=xi,
                    y=yi,
                    vx=vxi,
                    vy=vyi,
                    region_id=region_ids[code],
                    dth=dth_i,
                )
            )
        self._seq = seq


def write_trace(
    records: Iterable[TraceRecord],
    path: str | Path,
    *,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Write *records* (plus a header) as a trace file; returns the path.

    *meta* must be JSON-serialisable scalars/containers; it rides in the
    header for provenance (seed, lane, duration, node count).
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    rows = list(records)
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "meta": dict(meta or {}),
        "records": len(rows),
    }
    with out.open("w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(header, sort_keys=True, separators=(",", ":"))
        )
        handle.write("\n")
        for record in rows:
            handle.write(
                json.dumps(
                    record.to_row(), sort_keys=True, separators=(",", ":")
                )
            )
            handle.write("\n")
    return out


def read_trace(
    path: str | Path, *, allow_partial: bool = False
) -> tuple[dict[str, Any], list[TraceRecord]]:
    """Load a trace file; returns ``(meta, records)``.

    Validates the header (format/version), the declared record count,
    and every row's shape, so a truncated or foreign file fails loudly
    instead of replaying garbage.  A row that fails to parse on the
    *final* line is reported as a truncation (a crashed writer tears at
    most the last line); with ``allow_partial=True`` that torn tail is
    dropped and the valid prefix is returned instead — the header's
    declared record count is then allowed to exceed what survives.
    Corruption *before* the final line always raises: that is damage,
    not a torn write.
    """
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise TraceError(f"{source}: empty trace file")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{source}: unreadable trace header") from exc
        if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
            raise TraceError(f"{source}: not a {TRACE_FORMAT} file")
        if header.get("version") != TRACE_VERSION:
            raise TraceError(
                f"{source}: unsupported trace version {header.get('version')!r}"
            )
        body = handle.readlines()
    records: list[TraceRecord] = []
    last_lineno = 1 + len(body)
    for lineno, line in enumerate(body, start=2):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
            if not isinstance(row, list):
                raise TraceError(f"{source}:{lineno}: row is not an array")
            record = TraceRecord.from_row(row)
        except (json.JSONDecodeError, TraceError) as exc:
            if lineno == last_lineno:
                if allow_partial:
                    break
                raise TraceError(
                    f"{source}:{lineno}: truncated final row (torn write "
                    f"from a crashed writer?) — pass allow_partial=True to "
                    f"recover the {len(records)}-record valid prefix"
                ) from exc
            raise TraceError(f"{source}:{lineno}: unreadable row") from exc
        records.append(record)
    declared = header.get("records")
    if isinstance(declared, int) and declared != len(records):
        if not (allow_partial and declared > len(records)):
            raise TraceError(
                f"{source}: header declares {declared} records, file has "
                f"{len(records)} (truncated?)"
            )
    meta = header.get("meta")
    return (meta if isinstance(meta, dict) else {}), records


def record_trace(
    config: "ExperimentConfig",
    *,
    lane: str = "adf-1",
    path: str | Path | None = None,
) -> tuple[dict[str, Any], list[TraceRecord]]:
    """Run one experiment and capture *lane*'s transmitted LU stream.

    Returns ``(meta, records)``; when *path* is given the trace is also
    written there.  The capture is a pure function of the experiment
    seed/config, so re-recording produces byte-identical traces.
    """
    from repro.experiments.harness import MobileGridExperiment

    recorder = TraceRecorder(lane)
    experiment = MobileGridExperiment(config, lu_observer=recorder)
    experiment.lane(lane)  # fail fast on an unknown lane name
    experiment.run()
    meta: dict[str, Any] = {
        "lane": lane,
        "seed": config.seed,
        "duration": config.duration,
        "report_interval": config.report_interval,
        "node_count": len(experiment.nodes),
    }
    if path is not None:
        write_trace(recorder.records, path, meta=meta)
    return meta, recorder.records


def record_columnar_trace(
    config: "ExperimentConfig",
    *,
    lane: str = "adf-1",
    path: str | Path | None = None,
    campus: Any = None,
    source: Any = None,
    kernel: Any = None,
    cluster_mode: str = "exact",
) -> tuple[dict[str, Any], list[TraceRecord]]:
    """Record one lane's LU stream through the *columnar* engine.

    The array-speed twin of :func:`record_trace`, for fleets the object
    harness cannot reach (the 1M-node synthetic-city traces) — pass a
    generated *campus* plus a :class:`ColumnarMobilitySource` *source*
    to record a big-city workload.  Returns ``(meta, records)`` and,
    when *path* is given, also writes the trace file.  Like the object
    recorder, the capture is a pure function of seed/config/campus, so
    re-recording produces byte-identical traces.
    """
    from repro.core.columnar.engine import ColumnarExperiment
    from repro.core.columnar.kernels import EXACT_KERNEL

    recorder = ColumnarTraceRecorder(lane)
    experiment = ColumnarExperiment(
        config,
        campus=campus,
        source=source,
        kernel=kernel if kernel is not None else EXACT_KERNEL,
        cluster_mode=cluster_mode,
        lu_observer=recorder,
    )
    if lane not in {ln.name for ln in experiment.lanes}:
        raise ValueError(
            f"unknown lane {lane!r}; have "
            f"{sorted(ln.name for ln in experiment.lanes)}"
        )
    recorder.bind(experiment.node_ids, experiment.resolver.region_ids)
    experiment.run()
    meta: dict[str, Any] = {
        "lane": lane,
        "seed": config.seed,
        "duration": config.duration,
        "report_interval": config.report_interval,
        "node_count": len(experiment.node_ids),
        "engine": "columnar",
        "cluster_mode": cluster_mode,
    }
    if path is not None:
        write_trace(recorder.records, path, meta=meta)
    return meta, recorder.records
