"""The crash-recovery convergence gate (the serving CLI's chaos lane).

Durability is only worth its write amplification if it provably loses
nothing it did not *account* for.  This module runs that proof
end-to-end on a recorded trace:

1. **Golden run** — replay the trace through a plain ingest service
   (no durability, no faults) and export the per-node latest applied
   fix (:meth:`~repro.serving.store.ShardedLocationStore.export_state`).
2. **Crashed run** — replay the *same* trace with a WAL/snapshot
   :class:`~repro.serving.durability.DurabilityManager` attached and a
   deterministic :class:`~repro.faults.schedule.ShardCrash` window
   injected mid-replay: the shard's broker and queued window die, the
   down window sheds, the restart rebuilds the shard from snapshot +
   WAL tail.
3. **Byte-compare** — both exports, minus the crash's explicitly
   accounted loss window (queued-but-unflushed nodes + nodes shed while
   down), must be **identical**.  Any other divergence means recovery
   silently lost or corrupted state — the gate fails.

The exports compare *applied* fixes only (no estimates), so estimation
sweeps that ran while the shard was down cannot create false positives;
what is compared is exactly the state durability promises to preserve.

Recovery wall time is measured with ``time.perf_counter`` — the one
place the serving layer touches a wall clock, injected into the service
as its ``recovery_clock`` so the DET001 discipline (simulation behaviour
never depends on wall time) still holds: the measurement decorates the
report and nothing else.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.faults.schedule import FaultSchedule, ShardCrash
from repro.serving.durability import DurabilityConfig, DurabilityManager
from repro.serving.loadgen import ReplayConfig, replay_trace_full
from repro.serving.report import ServingReport
from repro.serving.trace import TraceRecord

__all__ = ["RecoveryGateReport", "run_recovery_gate", "write_filtered_export"]


@dataclass(frozen=True)
class RecoveryGateReport:
    """Outcome of one golden-vs-crashed convergence comparison.

    ``divergent_nodes`` must be empty for the gate to pass; everything
    else is accounting.  ``recovery_wall_s`` is a wall-clock measurement
    and therefore excluded from any byte-compared artifact — CI compares
    the filtered exports, not this report.
    """

    crash_shard: int
    crash_at: float
    restart_at: float
    snapshot_every: int
    records: int
    golden_applied: int
    crashed_applied: int
    replayed: int
    snapshot_lsn: int
    recovery_wall_s: float
    dropped_queued: int
    shed_while_down: int
    affected_nodes: tuple[str, ...]
    compared_nodes: int
    divergent_nodes: tuple[str, ...]
    golden: ServingReport = field(repr=False, default_factory=ServingReport)
    crashed: ServingReport = field(repr=False, default_factory=ServingReport)

    @property
    def converged(self) -> bool:
        """Whether the crashed run matched the golden run outside the window."""
        return not self.divergent_nodes

    def to_json_dict(self) -> dict[str, Any]:
        """JSON-serialisable mapping (full nested reports included)."""
        return {
            "affected_nodes": list(self.affected_nodes),
            "compared_nodes": self.compared_nodes,
            "converged": self.converged,
            "crash_at": self.crash_at,
            "crash_shard": self.crash_shard,
            "crashed": self.crashed.to_json_dict(),
            "crashed_applied": self.crashed_applied,
            "divergent_nodes": list(self.divergent_nodes),
            "dropped_queued": self.dropped_queued,
            "golden": self.golden.to_json_dict(),
            "golden_applied": self.golden_applied,
            "records": self.records,
            "recovery_wall_s": self.recovery_wall_s,
            "replayed": self.replayed,
            "restart_at": self.restart_at,
            "shed_while_down": self.shed_while_down,
            "snapshot_every": self.snapshot_every,
            "snapshot_lsn": self.snapshot_lsn,
        }

    def to_json(self) -> str:
        """Canonical (sorted-key, indented) JSON rendering."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    def write_json(self, path: str | Path) -> Path:
        """Write the canonical JSON to *path*; returns the path."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json() + "\n", encoding="utf-8")
        return out

    def summary(self) -> str:
        """Terse human-readable digest for CLI output."""
        verdict = "CONVERGED" if self.converged else (
            f"DIVERGED ({len(self.divergent_nodes)} nodes)"
        )
        return (
            f"crash shard={self.crash_shard} "
            f"window=[{self.crash_at:g}s, {self.restart_at:g}s) "
            f"replayed={self.replayed} from lsn={self.snapshot_lsn} "
            f"recovery={self.recovery_wall_s * 1000:.2f}ms "
            f"affected={len(self.affected_nodes)} "
            f"compared={self.compared_nodes} {verdict}"
        )


def write_filtered_export(
    export: dict[str, Any],
    affected: tuple[str, ...] | set[str],
    path: str | Path,
) -> Path:
    """Write *export* minus *affected* nodes as canonical sorted-key JSON.

    Two runs that converged outside the accounted window produce
    byte-identical files — CI's ``recovery-smoke`` ``cmp``s them.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    excluded = set(affected)
    filtered = {
        node: fix for node, fix in export.items() if node not in excluded
    }
    out.write_text(
        json.dumps(filtered, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return out


def run_recovery_gate(
    records: list[TraceRecord],
    wal_dir: str | Path,
    *,
    replay: ReplayConfig | None = None,
    crash_shard: int = 0,
    crash_fraction: float = 0.45,
    restart_fraction: float = 0.75,
    snapshot_every: int = 2048,
    fsync: bool = False,
    trace_meta: dict[str, Any] | None = None,
    telemetry: Any = None,
    measure_wall: bool = True,
) -> tuple[RecoveryGateReport, dict[str, Any], dict[str, Any]]:
    """Run the golden-vs-crashed convergence gate on *records*.

    The crash window is placed at ``crash_fraction`` /
    ``restart_fraction`` of the replay's arrival horizon (virtual
    seconds).  Returns ``(report, golden_export, crashed_export)`` —
    the exports are *unfiltered*; pass them with
    ``report.affected_nodes`` to :func:`write_filtered_export` for the
    byte-compare artifacts.
    """
    if not records:
        raise ValueError("cannot run the recovery gate on an empty trace")
    if not 0.0 < crash_fraction < restart_fraction:
        raise ValueError(
            "need 0 < crash_fraction < restart_fraction, got "
            f"{crash_fraction} / {restart_fraction}"
        )
    replay = replay or ReplayConfig()
    if replay.rate > 0:
        horizon = (len(records) - 1) / replay.rate
    else:
        horizon = records[-1].time - records[0].time
    if horizon <= 0:
        raise ValueError("replay horizon is empty; nothing to crash into")
    crash_at = crash_fraction * horizon
    restart_at = restart_fraction * horizon

    golden_report, golden_service = replay_trace_full(
        records, replay, trace_meta=trace_meta
    )
    golden_export = golden_service.store.export_state()

    durability = DurabilityManager(
        wal_dir,
        DurabilityConfig(snapshot_every=snapshot_every, fsync=fsync),
        telemetry=telemetry,
    )
    faults = FaultSchedule(
        (
            ShardCrash(
                shard_index=crash_shard,
                start=crash_at,
                duration=restart_at - crash_at,
            ),
        )
    )
    crashed_report, crashed_service = replay_trace_full(
        records,
        replay,
        trace_meta=trace_meta,
        telemetry=telemetry,
        durability=durability,
        faults=faults,
        recovery_clock=time.perf_counter if measure_wall else None,
    )
    crashed_export = crashed_service.store.export_state()

    affected = tuple(sorted(crashed_service.affected_nodes()))
    excluded = set(affected)
    keys = (set(golden_export) | set(crashed_export)) - excluded
    divergent = tuple(
        sorted(
            node
            for node in keys
            if golden_export.get(node) != crashed_export.get(node)
        )
    )
    recoveries = crashed_service.recoveries
    report = RecoveryGateReport(
        crash_shard=crash_shard,
        crash_at=crash_at,
        restart_at=restart_at,
        snapshot_every=snapshot_every,
        records=len(records),
        golden_applied=golden_report.applied,
        crashed_applied=crashed_report.applied,
        replayed=sum(r.replayed for r in recoveries),
        snapshot_lsn=max((r.snapshot_lsn for r in recoveries), default=0),
        recovery_wall_s=sum(r.wall_s for r in recoveries),
        dropped_queued=sum(r.dropped_queued for r in recoveries),
        shed_while_down=sum(r.shed_while_down for r in recoveries),
        affected_nodes=affected,
        compared_nodes=len(keys),
        divergent_nodes=divergent,
        golden=golden_report,
        crashed=crashed_report,
    )
    return report, golden_export, crashed_export
