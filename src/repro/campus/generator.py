"""Parameterised synthetic campus generation.

The paper's site is one fixed campus.  To test that nothing depends on its
particular geometry, :func:`generate_grid_campus` builds an arbitrary-size
campus: a rectangular grid of roads with buildings placed inside blocks,
entrances on the nearest road, and the same road/building semantics
(cellular everywhere, WLAN indoors) as the default site.
"""

from __future__ import annotations

import numpy as np

from repro.campus.campus import Campus
from repro.campus.region import NetworkAccess, Region, RegionKind
from repro.geometry import Path, Rect, Vec2
from repro.util.validation import check_in_range, check_positive

__all__ = ["generate_grid_campus"]

_ROAD_HALF_WIDTH = 8.0


def _corridor_loop(bounds: Rect, entrance: Vec2) -> tuple[Path, ...]:
    inset = min(6.0, bounds.width / 4, bounds.height / 4)
    inner = Rect(
        bounds.x_min + inset,
        bounds.y_min + inset,
        bounds.x_max - inset,
        bounds.y_max - inset,
    )
    hall = Path([entrance, inner.center])
    perimeter = Path(
        [
            Vec2(inner.x_min, inner.y_min),
            Vec2(inner.x_max, inner.y_min),
            Vec2(inner.x_max, inner.y_max),
            Vec2(inner.x_min, inner.y_max),
            Vec2(inner.x_min, inner.y_min),
        ]
    )
    return (hall, perimeter)


def generate_grid_campus(
    *,
    blocks_x: int = 3,
    blocks_y: int = 2,
    block_size: float = 150.0,
    building_probability: float = 0.7,
    rng: np.random.Generator | None = None,
) -> Campus:
    """Build a grid campus with ``blocks_x x blocks_y`` city blocks.

    Roads run between (and around) the blocks: horizontal roads ``H<i>``
    and vertical roads ``V<j>``.  Each block independently hosts a building
    ``B<i>_<j>`` with probability *building_probability*; buildings take
    ~60 % of the block, centred, with an entrance towards the road south of
    them.  The navigation graph covers every junction and entrance.
    """
    if blocks_x < 1 or blocks_y < 1:
        raise ValueError("need at least a 1x1 block grid")
    check_positive(block_size, "block_size")
    check_in_range(building_probability, "building_probability", 0.0, 1.0)
    rng = rng or np.random.default_rng(0)

    width = blocks_x * block_size
    height = blocks_y * block_size

    regions: list[Region] = []
    # Horizontal roads at y = 0, block, 2*block, ...
    for i in range(blocks_y + 1):
        y = i * block_size
        regions.append(
            Region(
                region_id=f"H{i}",
                name=f"Horizontal road {i}",
                kind=RegionKind.ROAD,
                bounds=Rect(
                    -_ROAD_HALF_WIDTH,
                    y - _ROAD_HALF_WIDTH,
                    width + _ROAD_HALF_WIDTH,
                    y + _ROAD_HALF_WIDTH,
                ),
                access=NetworkAccess.CELLULAR,
                centerline=Path([Vec2(0.0, y), Vec2(width, y)]),
            )
        )
    # Vertical roads at x = 0, block, ...
    for j in range(blocks_x + 1):
        x = j * block_size
        regions.append(
            Region(
                region_id=f"V{j}",
                name=f"Vertical road {j}",
                kind=RegionKind.ROAD,
                bounds=Rect(
                    x - _ROAD_HALF_WIDTH,
                    -_ROAD_HALF_WIDTH,
                    x + _ROAD_HALF_WIDTH,
                    height + _ROAD_HALF_WIDTH,
                ),
                access=NetworkAccess.CELLULAR,
                centerline=Path([Vec2(x, 0.0), Vec2(x, height)]),
            )
        )

    buildings: list[tuple[Region, int, int]] = []
    for bj in range(blocks_x):
        for bi in range(blocks_y):
            if rng.random() >= building_probability:
                continue
            block = Rect(
                bj * block_size + _ROAD_HALF_WIDTH,
                bi * block_size + _ROAD_HALF_WIDTH,
                (bj + 1) * block_size - _ROAD_HALF_WIDTH,
                (bi + 1) * block_size - _ROAD_HALF_WIDTH,
            )
            margin_x = 0.2 * block.width
            margin_y = 0.2 * block.height
            bounds = Rect(
                block.x_min + margin_x,
                block.y_min + margin_y,
                block.x_max - margin_x,
                block.y_max - margin_y,
            )
            entrance = Vec2(bounds.center.x, bounds.y_min)
            region = Region(
                region_id=f"B{bi}_{bj}",
                name=f"Building ({bi}, {bj})",
                kind=RegionKind.BUILDING,
                bounds=bounds,
                access=NetworkAccess.CELLULAR | NetworkAccess.WLAN,
                entrance=entrance,
                corridors=_corridor_loop(bounds, entrance),
            )
            regions.append(region)
            buildings.append((region, bi, bj))

    campus = Campus(regions)

    # Junction nodes at every grid crossing.
    for i in range(blocks_y + 1):
        for j in range(blocks_x + 1):
            campus.add_node(f"J{i}_{j}", Vec2(j * block_size, i * block_size))
    # Horizontal edges.
    for i in range(blocks_y + 1):
        for j in range(blocks_x):
            campus.add_edge(f"J{i}_{j}", f"J{i}_{j + 1}", f"H{i}")
    # Vertical edges.
    for i in range(blocks_y):
        for j in range(blocks_x + 1):
            campus.add_edge(f"J{i}_{j}", f"J{i + 1}_{j}", f"V{j}")
    # Building entrances: foot point on the road south of the block.
    for region, bi, bj in buildings:
        door = f"{region.region_id}.door"
        assert region.entrance is not None
        campus.add_node(door, region.entrance)
        foot = f"{region.region_id}.foot"
        campus.add_node(foot, Vec2(region.entrance.x, bi * block_size))
        campus.add_edge(foot, door, f"H{bi}")
        campus.add_edge(f"J{bi}_{bj}", foot, f"H{bi}")
        campus.add_edge(foot, f"J{bi}_{bj + 1}", f"H{bi}")

    return campus
