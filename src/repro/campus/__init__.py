"""The campus world: regions, connectivity and routing.

The paper's experiment site is a university campus with 5 roads (R1-R5) and
6 buildings (B1-B6), entered through gates A and B (paper Fig. 1).  All 11
regions offer cellular coverage; the buildings additionally offer wireless
LAN.  :func:`~repro.campus.builder.default_campus` builds a synthetic campus
with that structure.
"""

from repro.campus.region import NetworkAccess, Region, RegionKind
from repro.campus.spatial_index import RegionSpatialIndex
from repro.campus.campus import Campus
from repro.campus.builder import default_campus
from repro.campus.generator import generate_grid_campus

__all__ = [
    "NetworkAccess",
    "Region",
    "RegionKind",
    "RegionSpatialIndex",
    "Campus",
    "default_campus",
    "generate_grid_campus",
]
