"""Builder of the default 11-region campus (paper Fig. 1).

The paper's site has 5 roads (R1-R5) and 6 buildings (B1-B6) with gates A
and B on the south side.  The real coordinates are not published, so we lay
out a plausible ~650 m x 550 m campus preserving the paper's topology:

* gate B -> R2 -> library B4 (Tom's cases 1, 5);
* B4 -> R5 -> B6 (cases 3, 5);
* B4 -> R2 -> R1 -> R3 -> B3 with direction changes at the R2/R1 and R1/R3
  crossings (case 8);
* B3 -> R4 -> gate A (case 11).

Buildings carry WLAN + cellular; roads carry cellular only.
"""

from __future__ import annotations

from repro.campus.campus import Campus
from repro.campus.region import NetworkAccess, Region, RegionKind
from repro.geometry import Path, Rect, Vec2

__all__ = [
    "default_campus",
    "GATE_A",
    "GATE_B",
    "ROAD_IDS",
    "BUILDING_IDS",
]

#: Gate coordinates on the campus's south edge.
GATE_A = Vec2(100.0, 10.0)
GATE_B = Vec2(400.0, 10.0)

ROAD_IDS = ("R1", "R2", "R3", "R4", "R5")
BUILDING_IDS = ("B1", "B2", "B3", "B4", "B5", "B6")

#: Road half-width in metres (roads are thin rectangles around a centerline).
_ROAD_HALF_WIDTH = 8.0

# Junction points of the road network.
_J1 = Vec2(400.0, 250.0)  # R2 north end; R1 east end; R5 west end
_J2 = Vec2(150.0, 250.0)  # R1 west end; R3 south end; R4 north end
_J3 = Vec2(150.0, 450.0)  # R3 north end (near B3)
_J4 = Vec2(550.0, 250.0)  # R5 east end (near B6)


def _road_bounds(a: Vec2, b: Vec2) -> Rect:
    """Axis-aligned bounds of a road segment, padded to the road width."""
    return Rect(
        min(a.x, b.x) - _ROAD_HALF_WIDTH,
        min(a.y, b.y) - _ROAD_HALF_WIDTH,
        max(a.x, b.x) + _ROAD_HALF_WIDTH,
        max(a.y, b.y) + _ROAD_HALF_WIDTH,
    )


def _road(region_id: str, name: str, a: Vec2, b: Vec2) -> Region:
    return Region(
        region_id=region_id,
        name=name,
        kind=RegionKind.ROAD,
        bounds=_road_bounds(a, b),
        access=NetworkAccess.CELLULAR,
        centerline=Path([a, b]),
    )


def _building(
    region_id: str, name: str, bounds: Rect, entrance: Vec2, corridors: tuple[Path, ...]
) -> Region:
    return Region(
        region_id=region_id,
        name=name,
        kind=RegionKind.BUILDING,
        bounds=bounds,
        access=NetworkAccess.CELLULAR | NetworkAccess.WLAN,
        entrance=entrance,
        corridors=corridors,
    )


def _corridor_loop(bounds: Rect, entrance: Vec2) -> tuple[Path, ...]:
    """A simple two-corridor layout: entrance hall + perimeter hallway.

    Gives LMS nodes inside buildings realistic direction changes "in
    accordance with the structure of the hallway" (paper case 9).
    """
    inset = 6.0
    inner = Rect(
        bounds.x_min + inset,
        bounds.y_min + inset,
        bounds.x_max - inset,
        bounds.y_max - inset,
    )
    hall = Path([entrance, inner.center])
    perimeter = Path(
        [
            Vec2(inner.x_min, inner.y_min),
            Vec2(inner.x_max, inner.y_min),
            Vec2(inner.x_max, inner.y_max),
            Vec2(inner.x_min, inner.y_max),
            Vec2(inner.x_min, inner.y_min),
        ]
    )
    return (hall, perimeter)


def default_campus() -> Campus:
    """Build the 11-region campus with its navigation graph."""
    roads = [
        _road("R1", "East-west spine", _J1, _J2),
        _road("R2", "Gate B approach", GATE_B, _J1),
        _road("R3", "North branch", _J2, _J3),
        _road("R4", "Gate A approach", GATE_A, _J2),
        _road("R5", "East branch", _J1, _J4),
    ]

    building_specs = [
        # (id, name, bounds, entrance)
        ("B1", "Engineering hall", Rect(30.0, 100.0, 120.0, 180.0), Vec2(120.0, 140.0)),
        ("B2", "Student union", Rect(300.0, 80.0, 380.0, 160.0), Vec2(380.0, 120.0)),
        ("B3", "Chemistry building", Rect(90.0, 460.0, 210.0, 540.0), Vec2(150.0, 460.0)),
        ("B4", "Library", Rect(430.0, 150.0, 520.0, 240.0), Vec2(430.0, 230.0)),
        ("B5", "Science center", Rect(230.0, 270.0, 320.0, 350.0), Vec2(270.0, 270.0)),
        ("B6", "Lecture hall", Rect(510.0, 270.0, 600.0, 350.0), Vec2(550.0, 270.0)),
    ]
    buildings = [
        _building(rid, name, bounds, entrance, _corridor_loop(bounds, entrance))
        for rid, name, bounds, entrance in building_specs
    ]

    campus = Campus(roads + buildings)

    # Navigation nodes: gates, junctions, building entrances and the road
    # foot points serving mid-road entrances.
    campus.add_node("gateA", GATE_A)
    campus.add_node("gateB", GATE_B)
    campus.add_node("J1", _J1)
    campus.add_node("J2", _J2)
    campus.add_node("J3", _J3)
    campus.add_node("J4", _J4)
    for region in buildings:
        campus.add_node(f"{region.region_id}.door", region.entrance)

    # Foot points: where a building's entrance path meets its serving road.
    campus.add_node("R4.footB1", Vec2(128.0, 140.0))   # on R4 (GATE_A->J2)
    campus.add_node("R2.footB2", Vec2(400.0, 120.0))   # on R2 (GATE_B->J1)
    campus.add_node("R1.footB5", Vec2(270.0, 250.0))   # on R1 (J1->J2)

    # Road edges (split where foot points sit mid-road).
    campus.add_edge("gateB", "R2.footB2", "R2")
    campus.add_edge("R2.footB2", "J1", "R2")
    campus.add_edge("J1", "R1.footB5", "R1")
    campus.add_edge("R1.footB5", "J2", "R1")
    campus.add_edge("J2", "J3", "R3")
    campus.add_edge("gateA", "R4.footB1", "R4")
    campus.add_edge("R4.footB1", "J2", "R4")
    campus.add_edge("J1", "J4", "R5")

    # Entrance edges (short connectors from road to door; attributed to the
    # serving road since the connectors are outdoors).
    campus.add_edge("R4.footB1", "B1.door", "R4")
    campus.add_edge("R2.footB2", "B2.door", "R2")
    campus.add_edge("J3", "B3.door", "R3")
    campus.add_edge("J1", "B4.door", "R2")
    campus.add_edge("R1.footB5", "B5.door", "R1")
    campus.add_edge("J4", "B6.door", "R5")

    return campus
