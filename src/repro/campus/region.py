"""Campus regions: roads and buildings."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import Path, Rect, Vec2

__all__ = ["RegionKind", "NetworkAccess", "Region"]


class RegionKind(enum.Enum):
    """What a region is; determines which mobility patterns occur in it.

    Per paper §3.1: roads host LMS-type nodes only (humans and vehicles);
    buildings host SS, RMS and LMS human nodes.
    """

    ROAD = "road"
    BUILDING = "building"


class NetworkAccess(enum.Flag):
    """Wireless technologies available in a region.

    The paper: "Cellular network services are provided for the roads and
    buildings within the campus, and wireless Internet access is provided
    for 6 buildings."
    """

    NONE = 0
    CELLULAR = enum.auto()
    WLAN = enum.auto()


@dataclass(frozen=True)
class Region:
    """One of the 11 campus regions.

    Roads carry a *centerline* path that LMS nodes follow; buildings carry an
    *entrance* point where their corridor network meets the road network.
    """

    region_id: str
    name: str
    kind: RegionKind
    bounds: Rect
    access: NetworkAccess
    centerline: Path | None = None
    entrance: Vec2 | None = None
    corridors: tuple[Path, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.region_id:
            raise ValueError("region_id must be non-empty")
        if self.kind is RegionKind.ROAD and self.centerline is None:
            raise ValueError(f"road {self.region_id} needs a centerline")
        if self.kind is RegionKind.BUILDING and self.entrance is None:
            raise ValueError(f"building {self.region_id} needs an entrance")

    @property
    def is_road(self) -> bool:
        """True for road regions."""
        return self.kind is RegionKind.ROAD

    @property
    def is_building(self) -> bool:
        """True for building regions."""
        return self.kind is RegionKind.BUILDING

    def has_wlan(self) -> bool:
        """True when the region offers wireless-LAN access."""
        return bool(self.access & NetworkAccess.WLAN)

    def has_cellular(self) -> bool:
        """True when the region offers cellular access."""
        return bool(self.access & NetworkAccess.CELLULAR)

    def contains(self, point: Vec2, *, tol: float = 0.0) -> bool:
        """True when *point* lies inside the region's bounds."""
        return self.bounds.contains(point, tol=tol)

    def __repr__(self) -> str:
        return f"Region({self.region_id}, {self.kind.value})"
