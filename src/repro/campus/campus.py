"""The campus: region registry + walkable graph + routing."""

from __future__ import annotations

import types
from collections.abc import Iterable, Mapping

import networkx as nx
import numpy as np

from repro.campus.region import Region, RegionKind
from repro.campus.spatial_index import RegionSpatialIndex
from repro.geometry import Path, Vec2

__all__ = ["Campus"]


class Campus:
    """Regions plus a navigation graph.

    The navigation graph's nodes are named points (junctions, gates, building
    entrances) with a ``pos`` attribute; edges carry ``length`` (metres) and
    the ``region`` they belong to.  Routing produces arc-length parametrised
    :class:`~repro.geometry.Path` objects that LMS mobility models traverse.
    """

    def __init__(self, regions: Iterable[Region]) -> None:
        self._regions: dict[str, Region] = {}
        for region in regions:
            if region.region_id in self._regions:
                raise ValueError(f"duplicate region id {region.region_id!r}")
            self._regions[region.region_id] = region
        self._regions_view = types.MappingProxyType(self._regions)
        self._graph = nx.Graph()
        # Built lazily on the first point query; the region set is fixed at
        # construction so the index never needs invalidation.
        self._spatial_index: RegionSpatialIndex | None = None
        # nearest_node cache: node names + an (N, 2) position array, rebuilt
        # after add_node.
        self._nav_names: list[str] | None = None
        self._nav_xy: np.ndarray | None = None

    # -- regions ---------------------------------------------------------------
    @property
    def regions(self) -> Mapping[str, Region]:
        """All regions keyed by id (read-only view; regions are immutable)."""
        return self._regions_view

    def region(self, region_id: str) -> Region:
        """Region by id (KeyError when unknown)."""
        try:
            return self._regions[region_id]
        except KeyError:
            raise KeyError(f"unknown region {region_id!r}") from None

    def roads(self) -> list[Region]:
        """All road regions, in insertion order."""
        return [r for r in self._regions.values() if r.kind is RegionKind.ROAD]

    def buildings(self) -> list[Region]:
        """All building regions, in insertion order."""
        return [r for r in self._regions.values() if r.kind is RegionKind.BUILDING]

    @property
    def spatial_index(self) -> RegionSpatialIndex:
        """The uniform-grid region index (built on first use)."""
        index = self._spatial_index
        if index is None:
            index = self._spatial_index = RegionSpatialIndex(
                self._regions.values()
            )
        return index

    def region_at(self, point: Vec2) -> Region | None:
        """The region containing *point*; buildings win over roads on overlap."""
        index = self._spatial_index
        if index is None:
            index = self.spatial_index
        return index.region_at(point)

    def region_at_linear(self, point: Vec2) -> Region | None:
        """Reference linear-scan implementation of :meth:`region_at`.

        Kept as the semantic specification the spatial index is tested
        against; prefer :meth:`region_at` everywhere else.
        """
        hit: Region | None = None
        for region in self._regions.values():
            if region.contains(point):
                if region.is_building:
                    return region
                if hit is None:
                    hit = region
        return hit

    def random_point_in(self, region_id: str, rng: np.random.Generator) -> Vec2:
        """A uniform random point inside a region's bounds."""
        return self.region(region_id).bounds.random_point(rng)

    # -- navigation graph ------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The navigation graph (mutate only via :meth:`add_node` / :meth:`add_edge`)."""
        return self._graph

    def add_node(self, name: str, pos: Vec2) -> None:
        """Add a named navigation point."""
        if name in self._graph:
            raise ValueError(f"navigation node {name!r} already exists")
        self._graph.add_node(name, pos=pos)
        self._nav_names = None
        self._nav_xy = None

    def add_edge(self, a: str, b: str, region_id: str) -> None:
        """Connect two navigation points; length is the straight-line distance."""
        if a not in self._graph or b not in self._graph:
            raise KeyError(f"both nodes must exist before connecting {a!r}-{b!r}")
        self.region(region_id)  # validates
        length = self.node_pos(a).distance_to(self.node_pos(b))
        self._graph.add_edge(a, b, length=length, region=region_id)

    def node_pos(self, name: str) -> Vec2:
        """Coordinates of a navigation node."""
        try:
            return self._graph.nodes[name]["pos"]
        except KeyError:
            raise KeyError(f"unknown navigation node {name!r}") from None

    def nearest_node(self, point: Vec2) -> str:
        """The navigation node closest to *point*.

        Distances for all nodes come from one vectorized ``np.hypot`` over
        a position array cached until the next :meth:`add_node`; ties
        resolve to the earliest-inserted node, as the original per-node
        ``min`` did.
        """
        if self._graph.number_of_nodes() == 0:
            raise ValueError("navigation graph is empty")
        names, xy = self._nav_names, self._nav_xy
        if names is None or xy is None:
            names = self._nav_names = list(self._graph.nodes)
            data = self._graph.nodes
            xy = self._nav_xy = np.array(
                [(data[n]["pos"].x, data[n]["pos"].y) for n in names]
            )
        distances = np.hypot(xy[:, 0] - point.x, xy[:, 1] - point.y)
        return names[int(np.argmin(distances))]

    def route(self, start: str, goal: str) -> Path:
        """Shortest path between two navigation nodes as a geometric Path."""
        try:
            nodes = nx.shortest_path(self._graph, start, goal, weight="length")
        except nx.NetworkXNoPath:
            raise ValueError(f"no route from {start!r} to {goal!r}") from None
        return Path(self.node_pos(n) for n in nodes)

    def route_between_points(self, start: Vec2, goal: Vec2) -> Path:
        """Route between arbitrary points via their nearest navigation nodes.

        The returned path starts at *start*, walks the road network, and ends
        at *goal*.
        """
        a = self.nearest_node(start)
        b = self.nearest_node(goal)
        network = nx.shortest_path(self._graph, a, b, weight="length")
        waypoints = [start] + [self.node_pos(n) for n in network] + [goal]
        return Path(waypoints)

    def regions_on_route(self, path: Path) -> list[str]:
        """Region ids visited by the midpoints of a path's segments (deduped)."""
        seen: list[str] = []
        points = list(path.waypoints)
        region_at = self.region_at
        for a, b in zip(points, points[1:]):
            region = region_at(a.lerp(b, 0.5))
            if region is not None and (not seen or seen[-1] != region.region_id):
                seen.append(region.region_id)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Campus(regions={len(self._regions)}, "
            f"nav_nodes={self._graph.number_of_nodes()})"
        )
