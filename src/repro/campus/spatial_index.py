"""Uniform-grid spatial index over campus regions.

``Campus.region_at`` is the single hottest geometric query in the
simulator: the harness asks it once per node per reporting interval, the
HLA mobility federate once per node per step, and routing asks it per
path segment.  The seed implementation scanned every region per query —
O(regions) ``Rect.contains`` calls whose cost multiplies with node count
across whole parameter sweeps.

:class:`RegionSpatialIndex` replaces the scan with a uniform grid over
the union of the region bounding boxes.  Each cell stores the regions
whose bounds intersect it, *in campus insertion order*, so a query only
tests the handful of candidates overlapping its cell while reproducing
``Campus.region_at``'s exact semantics:

* buildings win over roads on overlap (first containing building returns
  immediately);
* among roads, the first-inserted containing road wins;
* points outside every region return ``None``.

Cell assignment and query use the *same* coordinate-to-cell arithmetic,
so a point inside a region always lands in a cell that lists that region
(floating-point subtraction and division are monotone), making the index
exactly equivalent to the linear scan — a property the campus test suite
asserts over randomized campuses.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.campus.region import Region
from repro.geometry import Vec2

__all__ = ["RegionSpatialIndex"]


class RegionSpatialIndex:
    """Cells → candidate regions, preserving region_at precedence."""

    def __init__(
        self,
        regions: Iterable[Region],
        *,
        cells_per_axis: int | None = None,
    ) -> None:
        self._regions: tuple[Region, ...] = tuple(regions)
        if not self._regions:
            self._nx = self._ny = 0
            self._cells: list[tuple[Region, ...]] = []
            return
        self._x_min = min(r.bounds.x_min for r in self._regions)
        self._y_min = min(r.bounds.y_min for r in self._regions)
        self._x_max = max(r.bounds.x_max for r in self._regions)
        self._y_max = max(r.bounds.y_max for r in self._regions)
        if cells_per_axis is None:
            # ~4 cells per region caps expected candidates per cell at a
            # small constant; long thin regions (roads) still span a full
            # row or column, so finer grids stop paying off quickly.
            cells_per_axis = max(1, math.ceil(math.sqrt(4 * len(self._regions))))
        if cells_per_axis < 1:
            raise ValueError(f"cells_per_axis must be >= 1, got {cells_per_axis}")
        self._nx = self._ny = cells_per_axis
        # Degenerate extents (all regions on one line) collapse to one cell
        # on that axis; _cell_x/_cell_y clamp guards the division.
        self._cell_w = (self._x_max - self._x_min) / self._nx or 1.0
        self._cell_h = (self._y_max - self._y_min) / self._ny or 1.0
        buckets: list[list[Region]] = [[] for _ in range(self._nx * self._ny)]
        for region in self._regions:
            b = region.bounds
            for iy in range(self._cell_y(b.y_min), self._cell_y(b.y_max) + 1):
                row = iy * self._nx
                for ix in range(self._cell_x(b.x_min), self._cell_x(b.x_max) + 1):
                    buckets[row + ix].append(region)
        self._cells = [tuple(bucket) for bucket in buckets]
        # Flattened per-cell entries (bounds, kind flag, region) so the
        # region_at loop runs without any method or property calls — it is
        # the simulator's most frequent query.
        self._cell_entries = [
            tuple(
                (
                    r.bounds.x_min,
                    r.bounds.x_max,
                    r.bounds.y_min,
                    r.bounds.y_max,
                    r.is_building,
                    r,
                )
                for r in bucket
            )
            for bucket in buckets
        ]

    # -- cell arithmetic (shared by build and query) ---------------------------
    def _cell_x(self, x: float) -> int:
        ix = int((x - self._x_min) / self._cell_w)
        return 0 if ix < 0 else (self._nx - 1 if ix >= self._nx else ix)

    def _cell_y(self, y: float) -> int:
        iy = int((y - self._y_min) / self._cell_h)
        return 0 if iy < 0 else (self._ny - 1 if iy >= self._ny else iy)

    # -- queries ---------------------------------------------------------------
    def region_at(self, point: Vec2) -> Region | None:
        """The region containing *point*; buildings win over roads on overlap."""
        if not self._regions:
            return None
        x, y = point.x, point.y
        x_min, y_min = self._x_min, self._y_min
        # Negated form so NaN coordinates fall out here (no region contains
        # them) instead of reaching the int() cell computation below.
        if not (x_min <= x <= self._x_max and y_min <= y <= self._y_max):
            return None
        nx = self._nx
        ix = int((x - x_min) / self._cell_w)
        if ix < 0:
            ix = 0
        elif ix >= nx:
            ix = nx - 1
        ny = self._ny
        iy = int((y - y_min) / self._cell_h)
        if iy < 0:
            iy = 0
        elif iy >= ny:
            iy = ny - 1
        hit: Region | None = None
        for rx0, rx1, ry0, ry1, is_building, region in self._cell_entries[
            iy * nx + ix
        ]:
            if rx0 <= x <= rx1 and ry0 <= y <= ry1:
                if is_building:
                    return region
                if hit is None:
                    hit = region
        return hit

    def candidates_at(self, point: Vec2) -> tuple[Region, ...]:
        """The cell's candidate list for *point* (diagnostics and tests)."""
        if not self._regions:
            return ()
        return self._cells[self._cell_y(point.y) * self._nx + self._cell_x(point.x)]

    @property
    def grid_shape(self) -> tuple[int, int]:
        """(columns, rows) of the cell grid."""
        return (self._nx, self._ny)

    def grid_geometry(self) -> tuple[float, float, float, float, float, float]:
        """``(x_min, x_max, y_min, y_max, cell_w, cell_h)`` of the grid.

        Raises for an empty index (there is no grid to describe).  The
        columnar engine vectorises ``region_at`` from these parameters
        plus :meth:`cell_table`, using the identical point-to-cell
        arithmetic.
        """
        if not self._regions:
            raise ValueError("empty index has no grid geometry")
        return (
            self._x_min,
            self._x_max,
            self._y_min,
            self._y_max,
            self._cell_w,
            self._cell_h,
        )

    def cell_table(
        self,
    ) -> list[tuple[tuple[float, float, float, float, bool, Region], ...]]:
        """Per-cell candidate entries, row-major, in query precedence order.

        Each entry is ``(x_min, x_max, y_min, y_max, is_building, region)``
        exactly as :meth:`region_at` walks them: the first containing
        building wins, else the first containing road.
        """
        return list(self._cell_entries) if self._regions else []

    def max_candidates(self) -> int:
        """Largest candidate list over all cells (index quality metric)."""
        return max((len(c) for c in self._cells), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RegionSpatialIndex(regions={len(self._regions)}, "
            f"grid={self._nx}x{self._ny}, max_candidates={self.max_candidates()})"
        )
