"""Binding fault schedules to live simulation objects.

The :class:`FaultInjector` takes a declarative
:class:`~repro.faults.schedule.FaultSchedule` and schedules the apply /
revert actions on the simulator: gateway outages call
``WirelessGateway.fail()`` / ``restore()``, channel degradations call
``WirelessChannel.degrade()`` / ``restore()`` (which recompute the
transparent and fused fast-path flags, so the harness's inlined delivery
paths cannot bypass an injected fault).  Every action is appended to a
deterministic :attr:`~FaultInjector.timeline` and mirrored as a telemetry
event, giving resilience reports an authoritative record of what was
injected and when.

Churn faults are *not* bound to simulator events: offline-node bookkeeping
belongs to the driving study's step loop (see the chaos and churn studies),
which polls ``schedule.churn_window(now)``.  Attaching a schedule that
contains churn to a consumer that cannot honour it is an error, not a
silent no-op.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.faults.schedule import (
    ChannelDegradation,
    FaultSchedule,
    GatewayOutage,
    RegionBlackout,
    ShardCrash,
)
from repro.network.channel import WirelessChannel
from repro.network.gateway import WirelessGateway
from repro.simkernel import Simulator
from repro.telemetry import NULL_TELEMETRY, Severity

__all__ = ["FaultInjector", "TimelineEntry"]


@dataclass(frozen=True)
class TimelineEntry:
    """One applied or reverted fault action."""

    time: float
    action: str  # "apply" | "revert"
    kind: str  # fault spec class name
    target: str  # gateway/channel identifier

    def to_json_dict(self) -> dict[str, float | str]:
        return {
            "time": self.time,
            "action": self.action,
            "kind": self.kind,
            "target": self.target,
        }


class FaultInjector:
    """Drives a fault schedule against gateways and channels."""

    def __init__(self, schedule: FaultSchedule, *, telemetry: Any = None) -> None:
        self.schedule = schedule
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.timeline: list[TimelineEntry] = []
        self._attached = False

    def attach(
        self,
        sim: Simulator,
        *,
        gateways: Iterable[WirelessGateway] = (),
        channels: Iterable[WirelessChannel] = (),
        service: Any = None,
        allow_churn: bool = False,
    ) -> None:
        """Schedule every fault window on *sim*.

        *gateways* are the outage/blackout targets; their uplinks are also
        degradation targets, keyed by region.  *channels* are extra
        degradation targets not owned by a gateway (matched only by
        region-unscoped degradations).  *service* is the
        :class:`~repro.serving.service.IngestService` that
        :class:`~repro.faults.schedule.ShardCrash` windows target —
        attaching a schedule containing shard crashes without one is an
        error, not a silent no-op, as is a schedule containing churn
        without ``allow_churn=True`` (the caller's step loop must poll
        :meth:`FaultSchedule.churn_window` itself).
        """
        if self._attached:
            raise RuntimeError("injector is already attached")
        if self.schedule.has_churn and not allow_churn:
            raise ValueError(
                "schedule contains NodeChurn faults, which simulator-attached "
                "consumers cannot honour; drive churn from the study's step "
                "loop (chaos/churn studies) or pass allow_churn=True after "
                "wiring churn_window() into yours"
            )
        if self.schedule.has_shard_crashes and service is None:
            raise ValueError(
                "schedule contains ShardCrash faults but no service was "
                "given; pass the IngestService (with a durability manager) "
                "whose shards the crashes target"
            )
        self._attached = True
        gateways = list(gateways)
        extra_channels = list(channels)
        by_region: dict[str, list[WirelessGateway]] = {}
        for gateway in gateways:
            by_region.setdefault(gateway.region.region_id, []).append(gateway)
        for fault in self.schedule.faults:
            if isinstance(fault, GatewayOutage):
                targets = by_region.get(fault.region_id, [])
                self._schedule_outage(sim, fault, targets)
            elif isinstance(fault, RegionBlackout):
                targets = [
                    gw
                    for region_id in fault.region_ids
                    for gw in by_region.get(region_id, [])
                ]
                self._schedule_outage(sim, fault, targets)
            elif isinstance(fault, ChannelDegradation):
                if fault.regions is None:
                    seen: set[int] = set()
                    targets_ch: list[WirelessChannel] = []
                    for channel in [gw.uplink for gw in gateways] + extra_channels:
                        if id(channel) not in seen:
                            seen.add(id(channel))
                            targets_ch.append(channel)
                else:
                    targets_ch = [
                        gw.uplink
                        for region_id in fault.regions
                        for gw in by_region.get(region_id, [])
                    ]
                self._schedule_degradation(sim, fault, targets_ch)
            elif isinstance(fault, ShardCrash):
                self._schedule_shard_crash(sim, fault, service)
            # NodeChurn: handled by the study's step loop, nothing to schedule.

    # -- scheduling helpers ---------------------------------------------------
    def _schedule_outage(
        self,
        sim: Simulator,
        fault: GatewayOutage | RegionBlackout,
        targets: list[WirelessGateway],
    ) -> None:
        kind = type(fault).__name__

        def apply() -> None:
            for gateway in targets:
                gateway.fail()
                self._record(sim.now, "apply", kind, gateway.gateway_id)

        def revert() -> None:
            for gateway in targets:
                gateway.restore()
                self._record(sim.now, "revert", kind, gateway.gateway_id)

        sim.schedule_at(fault.start, apply, label="faults:outage")
        sim.schedule_at(fault.end, revert, label="faults:restore")

    def _schedule_degradation(
        self,
        sim: Simulator,
        fault: ChannelDegradation,
        targets: list[WirelessChannel],
    ) -> None:
        def apply() -> None:
            for channel in targets:
                channel.degrade(
                    base_latency=fault.base_latency,
                    latency_jitter=fault.latency_jitter,
                    loss_probability=fault.loss_probability,
                    burst_loss=fault.burst if fault.burst is not None else False,
                )
                self._record(sim.now, "apply", "ChannelDegradation", channel.name)

        def revert() -> None:
            for channel in targets:
                channel.restore()
                self._record(sim.now, "revert", "ChannelDegradation", channel.name)

        sim.schedule_at(fault.start, apply, label="faults:degrade")
        sim.schedule_at(fault.end, revert, label="faults:restore")

    def _schedule_shard_crash(
        self, sim: Simulator, fault: ShardCrash, service: Any
    ) -> None:
        index = fault.shard_index
        target = f"shard-{index}"

        def crash() -> None:
            service.crash_shard(index)
            self._record(sim.now, "apply", "ShardCrash", target)

        def restart() -> None:
            service.restart_shard(index)
            self._record(sim.now, "revert", "ShardRestart", target)

        sim.schedule_at(fault.start, crash, label="faults:shard-crash")
        sim.schedule_at(fault.end, restart, label="faults:shard-restart")

    def _record(self, time: float, action: str, kind: str, target: str) -> None:
        self.timeline.append(
            TimelineEntry(time=time, action=action, kind=kind, target=target)
        )
        self._telemetry.event(
            Severity.WARNING if action == "apply" else Severity.INFO,
            f"fault {action}: {kind}",
            source="faults",
            target=target,
            kind=kind,
        )

    # -- reporting ------------------------------------------------------------
    def timeline_json(self) -> list[dict]:
        """The recorded timeline as JSON-serialisable dicts."""
        return [entry.to_json_dict() for entry in self.timeline]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(faults={len(self.schedule)}, "
            f"actions={len(self.timeline)})"
        )
