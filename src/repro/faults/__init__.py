"""repro.faults — deterministic fault injection and recovery.

The paper evaluates the ADF on an ideal wireless substrate; a mobile grid's
defining property is that its substrate is *not* ideal.  This package makes
the failure modes first-class and reproducible:

* :class:`FaultSchedule` — declarative, validated fault windows: gateway
  outages, regional blackouts, channel degradations (independent or
  Gilbert–Elliott burst loss, latency inflation) and node churn, built
  either as a pure function of a scalar intensity or drawn from a
  dedicated ``util.rng`` stream — either way, a given seed replays the
  exact same fault timeline;
* :class:`FaultInjector` — binds a schedule to live gateways/channels on
  the simulator, recording an authoritative action timeline and emitting
  telemetry events; channel/gateway fast-path flags are recomputed on
  every change so inlined delivery paths cannot bypass injected faults;
* reliable transport lives in :class:`repro.network.reliable.ReliableLink`
  (ack-by-seq ARQ) and broker-side degradation in
  :class:`repro.broker.broker.GridBroker` (bounded extrapolation,
  quarantine, resync) — this package orchestrates them; the chaos study in
  :mod:`repro.experiments.chaos` measures the damage and the recovery.

See ``docs/resilience.md`` for the fault model and policies.
"""

from repro.faults.injector import FaultInjector, TimelineEntry
from repro.faults.schedule import (
    ChannelDegradation,
    FaultSchedule,
    GatewayOutage,
    NodeChurn,
    RegionBlackout,
    ShardCrash,
)
from repro.network.channel import GilbertElliottLoss

__all__ = [
    "ChannelDegradation",
    "FaultInjector",
    "FaultSchedule",
    "GatewayOutage",
    "GilbertElliottLoss",
    "NodeChurn",
    "RegionBlackout",
    "ShardCrash",
    "TimelineEntry",
]
