"""Declarative fault schedules.

A :class:`FaultSchedule` is an immutable, validated list of timed fault
windows — gateway outages, regional blackouts, channel degradations
(elevated loss/latency, including Gilbert–Elliott burst loss) and node
churn.  Schedules are pure data: they say *what* goes wrong and *when*;
the :class:`~repro.faults.injector.FaultInjector` binds them to live
simulation objects.

Two constructors produce schedules deterministically:

* :meth:`FaultSchedule.from_intensity` — a fixed scenario shape scaled by
  a scalar intensity in [0, 1] (the chaos sweep's axis); no randomness at
  all, so a given (intensity, duration) is byte-reproducible.
* :meth:`FaultSchedule.random` — windows drawn from a caller-supplied
  generator (use a dedicated ``util.rng`` registry stream, e.g.
  ``registry.stream("faults/schedule")``, so a given experiment seed
  replays the exact same fault timeline).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.network.channel import GilbertElliottLoss

__all__ = [
    "ChannelDegradation",
    "FaultSchedule",
    "GatewayOutage",
    "NodeChurn",
    "RegionBlackout",
    "ShardCrash",
]


def _check_window(start: float, duration: float) -> None:
    if start < 0:
        raise ValueError(f"start must be >= 0, got {start}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")


@dataclass(frozen=True)
class GatewayOutage:
    """One gateway down for a window: LUs to its region are discarded."""

    region_id: str
    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class RegionBlackout:
    """Several regions' gateways down at once (a site-wide power event)."""

    region_ids: tuple[str, ...]
    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if not self.region_ids:
            raise ValueError("a blackout needs at least one region")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ChannelDegradation:
    """A window of elevated loss and/or latency on wireless channels.

    ``regions`` limits the degradation to the uplinks of those regions'
    gateways; ``None`` hits every attached channel.  ``burst`` switches the
    channel to Gilbert–Elliott burst loss for the window; independent loss
    and latency knobs apply when not ``None``.
    """

    start: float
    duration: float
    loss_probability: float | None = None
    base_latency: float | None = None
    latency_jitter: float | None = None
    burst: GilbertElliottLoss | None = None
    regions: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if (
            self.loss_probability is None
            and self.base_latency is None
            and self.latency_jitter is None
            and self.burst is None
        ):
            raise ValueError("a degradation must change at least one parameter")
        if self.loss_probability is not None and not (
            0.0 <= self.loss_probability <= 1.0
        ):
            raise ValueError(
                f"loss_probability must be in [0, 1], got {self.loss_probability}"
            )
        for name in ("base_latency", "latency_jitter"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class NodeChurn:
    """A window during which nodes disconnect with a per-second hazard.

    Churn is not bound to simulator events: studies that model offline
    nodes poll :meth:`FaultSchedule.churn_window` each step and draw from
    their own dedicated rng stream, keeping the churn realisation
    independent of every other consumer of randomness.
    """

    start: float
    duration: float
    hazard: float
    mean_outage: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if not (0.0 <= self.hazard <= 1.0):
            raise ValueError(f"hazard must be in [0, 1], got {self.hazard}")
        if self.mean_outage <= 0:
            raise ValueError(f"mean_outage must be > 0, got {self.mean_outage}")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ShardCrash:
    """One serving-store shard killed for a window, then restarted.

    Bound by the injector to an
    :class:`~repro.serving.service.IngestService`: at ``start`` the shard's
    in-memory broker and queued-but-unflushed window are dropped
    (``crash_shard``); at ``end`` it is reconstructed from its snapshot +
    WAL tail (``restart_shard``) and resyncs through the normal ingest
    path.  The restart is the window's end — a deterministic
    ``ShardRestart`` event on the injector timeline.
    """

    shard_index: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if self.shard_index < 0:
            raise ValueError(
                f"shard_index must be >= 0, got {self.shard_index}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


Fault = GatewayOutage | RegionBlackout | ChannelDegradation | NodeChurn | ShardCrash


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable collection of fault windows."""

    faults: tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for fault in self.faults:
            if not isinstance(
                fault,
                (
                    GatewayOutage,
                    RegionBlackout,
                    ChannelDegradation,
                    NodeChurn,
                    ShardCrash,
                ),
            ):
                raise TypeError(f"not a fault spec: {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- queries --------------------------------------------------------------
    def of_kind(self, kind: type) -> tuple[Fault, ...]:
        """All faults of a given spec type, in start order."""
        return tuple(
            sorted(
                (f for f in self.faults if isinstance(f, kind)),
                key=lambda f: (f.start, f.duration),
            )
        )

    @property
    def has_churn(self) -> bool:
        return any(isinstance(f, NodeChurn) for f in self.faults)

    @property
    def has_shard_crashes(self) -> bool:
        return any(isinstance(f, ShardCrash) for f in self.faults)

    def churn_window(self, now: float) -> NodeChurn | None:
        """The churn fault active at *now*, if any (first match wins)."""
        for fault in self.of_kind(NodeChurn):
            if fault.start <= now < fault.end:
                return fault
        return None

    def horizon(self) -> float:
        """Latest fault end time (0.0 for an empty schedule)."""
        return max((f.end for f in self.faults), default=0.0)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_intensity(
        cls,
        intensity: float,
        duration: float,
        *,
        regions: tuple[str, ...] = (),
        churn: bool = False,
    ) -> "FaultSchedule":
        """A fixed scenario shape scaled by *intensity* in [0, 1].

        Zero intensity yields an empty schedule (the fault-free control).
        Otherwise: a Gilbert–Elliott burst-loss window over the middle of
        the run, a blackout of *regions* (when given) at 60% of the run,
        and optionally a churn window.  Everything is a pure function of
        the arguments — no randomness — so resilience reports built from
        intensity sweeps are byte-reproducible.
        """
        if not (0.0 <= intensity <= 1.0):
            raise ValueError(f"intensity must be in [0, 1], got {intensity}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        if intensity == 0.0:
            return cls()
        faults: list[Fault] = [
            ChannelDegradation(
                start=round(0.15 * duration, 6),
                duration=round(0.30 * duration, 6),
                burst=GilbertElliottLoss(
                    p_good_bad=round(0.05 + 0.15 * intensity, 6),
                    p_bad_good=round(max(0.6 - 0.4 * intensity, 0.1), 6),
                    loss_good=round(0.02 * intensity, 6),
                    loss_bad=round(min(0.35 + 0.6 * intensity, 0.95), 6),
                ),
            )
        ]
        if regions:
            faults.append(
                RegionBlackout(
                    region_ids=regions,
                    start=round(0.60 * duration, 6),
                    duration=round((0.04 + 0.12 * intensity) * duration, 6),
                )
            )
        if churn:
            faults.append(
                NodeChurn(
                    start=0.0,
                    duration=duration,
                    hazard=round(0.004 * intensity, 6),
                    mean_outage=round(max(8.0, 0.05 * duration), 6),
                )
            )
        return cls(tuple(faults))

    @classmethod
    def random(
        cls,
        intensity: float,
        duration: float,
        rng: np.random.Generator,
        *,
        regions: tuple[str, ...] = (),
    ) -> "FaultSchedule":
        """Windows drawn from *rng* (pass a dedicated registry stream).

        The number, placement and severity of windows scale with
        *intensity*; the realisation is fully determined by the generator
        state, so ``registry.stream("faults/schedule")`` under a fixed
        experiment seed replays the identical timeline.
        """
        if not (0.0 <= intensity <= 1.0):
            raise ValueError(f"intensity must be in [0, 1], got {intensity}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        if intensity == 0.0:
            return cls()
        faults: list[Fault] = []
        n_degradations = 1 + int(rng.integers(0, 2)) + (1 if intensity > 0.5 else 0)
        for _ in range(n_degradations):
            start = float(rng.uniform(0.0, 0.7 * duration))
            width = float(rng.uniform(0.1, 0.25)) * duration
            faults.append(
                ChannelDegradation(
                    start=start,
                    duration=width,
                    burst=GilbertElliottLoss(
                        p_good_bad=float(rng.uniform(0.02, 0.05 + 0.2 * intensity)),
                        p_bad_good=float(rng.uniform(0.1, 0.6)),
                        loss_good=float(rng.uniform(0.0, 0.05 * intensity)),
                        loss_bad=float(rng.uniform(0.3, 0.3 + 0.65 * intensity)),
                    ),
                )
            )
        for region_id in regions:
            if rng.random() < 0.3 + 0.5 * intensity:
                start = float(rng.uniform(0.2 * duration, 0.8 * duration))
                faults.append(
                    GatewayOutage(
                        region_id=region_id,
                        start=start,
                        duration=float(rng.uniform(0.03, 0.1 + 0.1 * intensity))
                        * duration,
                    )
                )
        return cls(tuple(faults))

    # -- serialisation --------------------------------------------------------
    def to_json_dict(self) -> list[dict]:
        """JSON-serialisable description (resilience reports, CI diffs)."""
        out = []
        for fault in sorted(self.faults, key=lambda f: (f.start, f.duration)):
            entry = {"kind": type(fault).__name__}
            # asdict recurses into the nested GilbertElliottLoss; tuples
            # serialise as JSON arrays downstream.
            entry.update(asdict(fault))
            out.append(entry)
        return out

    def describe(self) -> str:
        """One line per fault, in start order."""
        lines = []
        for fault in sorted(self.faults, key=lambda f: (f.start, f.duration)):
            window = f"[{fault.start:g}s, {fault.end:g}s)"
            if isinstance(fault, GatewayOutage):
                lines.append(f"{window} gateway outage: {fault.region_id}")
            elif isinstance(fault, RegionBlackout):
                lines.append(f"{window} blackout: {', '.join(fault.region_ids)}")
            elif isinstance(fault, NodeChurn):
                lines.append(
                    f"{window} churn: hazard {fault.hazard:g}/s, "
                    f"mean outage {fault.mean_outage:g}s"
                )
            elif isinstance(fault, ShardCrash):
                lines.append(f"{window} shard crash: shard {fault.shard_index}")
            else:
                parts = []
                if fault.burst is not None:
                    parts.append(
                        f"GE burst (loss_bad {fault.burst.loss_bad:g}, "
                        f"steady {fault.burst.steady_state_loss:.3f})"
                    )
                if fault.loss_probability is not None:
                    parts.append(f"loss {fault.loss_probability:g}")
                if fault.base_latency is not None:
                    parts.append(f"latency {fault.base_latency:g}s")
                if fault.latency_jitter is not None:
                    parts.append(f"jitter {fault.latency_jitter:g}s")
                scope = "all channels" if fault.regions is None else ", ".join(
                    fault.regions
                )
                lines.append(f"{window} degradation ({scope}): {'; '.join(parts)}")
        return "\n".join(lines) if lines else "(no faults)"
