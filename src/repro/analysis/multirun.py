"""Replication across seeds and confidence intervals."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace

import numpy as np
from scipy import stats

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.experiments.results import ExperimentResult

__all__ = ["replicate", "MetricSummary", "summarize_metric", "summarize_values"]


def replicate(
    config: ExperimentConfig, seeds: Sequence[int]
) -> list[ExperimentResult]:
    """Run the experiment once per seed (everything else identical)."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [run_experiment(replace(config, seed=seed)) for seed in seeds]


@dataclass(frozen=True)
class MetricSummary:
    """Mean and spread of one scalar metric over replications."""

    metric: str
    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0

    def contains(self, value: float) -> bool:
        """True when *value* lies inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.mean:.3f} ± {self.half_width:.3f} "
            f"(95% CI, n={self.n})"
        )


def summarize_values(
    values: Sequence[float],
    *,
    metric: str = "metric",
    confidence: float = 0.95,
) -> MetricSummary:
    """Mean ± t-interval of raw *values* (one per replication).

    For a single value the interval degenerates to the point value.
    The sweep runner aggregates checkpointed (already-serialised) runs
    through this entry point; :func:`summarize_metric` layers metric
    extraction from live :class:`ExperimentResult` objects on top.
    """
    array = np.array(list(values), dtype=float)
    n = array.size
    if n == 0:
        raise ValueError("no results to summarise")
    mean = float(array.mean())
    if n == 1:
        return MetricSummary(metric, 1, mean, 0.0, mean, mean)
    std = float(array.std(ddof=1))
    sem = std / np.sqrt(n)
    t_crit = float(stats.t.ppf((1 + confidence) / 2, df=n - 1))
    return MetricSummary(
        metric=metric,
        n=n,
        mean=mean,
        std=std,
        ci_low=mean - t_crit * sem,
        ci_high=mean + t_crit * sem,
    )


def summarize_metric(
    results: Sequence[ExperimentResult],
    extractor: Callable[[ExperimentResult], float],
    *,
    metric: str = "metric",
    confidence: float = 0.95,
) -> MetricSummary:
    """Mean ± t-interval of ``extractor(result)`` over the replications."""
    return summarize_values(
        [extractor(result) for result in results],
        metric=metric,
        confidence=confidence,
    )
