"""Classifier-quality analysis: confusion matrix against ground truth.

The Table-1 population carries each node's *generating* pattern, so we can
score the ADF's Fig. 2 classifier per class rather than with a single
accuracy number: SS/RMS confusion (a pausing wanderer looks stopped) is
qualitatively different from LMS/RMS confusion (a corner-turning walker
looks erratic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campus import default_campus
from repro.core.adf import AdaptiveDistanceFilter, AdfConfig
from repro.experiments.config import ExperimentConfig
from repro.mobility.population import build_population
from repro.mobility.states import MobilityState
from repro.network.messages import LocationUpdate
from repro.util.rng import RngRegistry

__all__ = ["ConfusionMatrix", "evaluate_classifier"]

_STATES = (MobilityState.STOP, MobilityState.RANDOM, MobilityState.LINEAR)


@dataclass
class ConfusionMatrix:
    """Counts of (true pattern, predicted pattern) observations."""

    counts: dict[tuple[MobilityState, MobilityState], int] = field(
        default_factory=dict
    )

    def record(self, truth: MobilityState, predicted: MobilityState) -> None:
        """Add one observation."""
        key = (truth, predicted)
        self.counts[key] = self.counts.get(key, 0) + 1

    def total(self) -> int:
        """All observations."""
        return sum(self.counts.values())

    def correct(self) -> int:
        """Observations on the diagonal."""
        return sum(v for (t, p), v in self.counts.items() if t is p)

    @property
    def accuracy(self) -> float:
        """Overall fraction correct."""
        total = self.total()
        return self.correct() / total if total else 0.0

    def support(self, truth: MobilityState) -> int:
        """Observations whose ground truth is *truth*."""
        return sum(v for (t, _), v in self.counts.items() if t is truth)

    def recall(self, truth: MobilityState) -> float:
        """Fraction of *truth* observations labelled correctly."""
        support = self.support(truth)
        if support == 0:
            return 0.0
        return self.counts.get((truth, truth), 0) / support

    def precision(self, predicted: MobilityState) -> float:
        """Fraction of *predicted* labels that were correct."""
        labelled = sum(v for (_, p), v in self.counts.items() if p is predicted)
        if labelled == 0:
            return 0.0
        return self.counts.get((predicted, predicted), 0) / labelled

    def render(self) -> str:
        """A small text table, rows = truth, columns = prediction."""
        header = "truth\\pred " + " ".join(f"{s.value:>7}" for s in _STATES)
        lines = [header]
        for truth in _STATES:
            row = " ".join(
                f"{self.counts.get((truth, p), 0):>7d}" for p in _STATES
            )
            lines.append(f"{truth.value:<10} {row}")
        lines.append(f"accuracy: {self.accuracy:.1%} over {self.total()} samples")
        return "\n".join(lines)


def evaluate_classifier(
    config: ExperimentConfig | None = None,
    *,
    duration: float = 120.0,
    warmup: float = 15.0,
) -> ConfusionMatrix:
    """Run the Table-1 population through the ADF classifier and score it.

    Observations during the first *warmup* seconds are excluded — the
    classifier's window needs to fill before its label is meaningful (the
    paper likewise separates initial recognition from steady state).
    """
    config = config or ExperimentConfig()
    campus = default_campus()
    nodes = build_population(campus, config.population, RngRegistry(config.seed))
    adf = AdaptiveDistanceFilter(
        AdfConfig(
            dth_factor=1.0,
            alpha=config.alpha,
            recluster_interval=config.recluster_interval,
        )
    )
    matrix = ConfusionMatrix()
    dt = config.report_interval
    steps = int(round(duration / dt))
    for i in range(1, steps + 1):
        now = i * dt
        for node in nodes:
            sample = node.advance(dt)
            adf.process(
                LocationUpdate(
                    sender=node.node_id,
                    timestamp=now,
                    node_id=node.node_id,
                    position=sample.position,
                    velocity=sample.velocity,
                    region_id=node.home_region,
                )
            )
            if now <= warmup or node.true_state is None:
                continue
            label = adf.label_of(node.node_id)
            if label is not None:
                matrix.record(node.true_state, label)
        adf.tick(now)
    return matrix
