"""Energy accounting: what the saved LUs are worth in battery.

The paper motivates the ADF with the MN's "low battery capacity".  Given a
lane's per-node LU counts and each node's device profile, this module
computes the transmission energy each policy spends and therefore how much
battery the ADF saves versus the ideal (unfiltered) reporting — per device
class and for the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.broker.resources import device_profile
from repro.experiments.results import ExperimentResult
from repro.mobility.node import MobileNode
from repro.mobility.states import DeviceType

__all__ = ["EnergyReport", "energy_report"]


@dataclass
class EnergyReport:
    """Transmission energy per lane, in watt-hours."""

    duration: float
    #: lane name -> total Wh spent on LU transmissions
    total_wh: dict[str, float] = field(default_factory=dict)
    #: lane name -> device -> Wh
    per_device_wh: dict[str, dict[DeviceType, float]] = field(default_factory=dict)

    def savings_vs_ideal(self, lane: str) -> float:
        """Fractional energy saved by *lane* relative to the ideal lane."""
        ideal = self.total_wh.get("ideal", 0.0)
        if ideal == 0.0:
            return 0.0
        return 1.0 - self.total_wh.get(lane, 0.0) / ideal

    def battery_fraction_saved(self, lane: str, device: DeviceType) -> float:
        """Battery fraction a *device*-class node saves under *lane*.

        Uses the per-device energy split divided by the number of nodes of
        that class implied by the split (energy is additive, so the
        difference of per-device totals over capacity x count is exact).
        """
        profile = device_profile(device)
        ideal = self.per_device_wh.get("ideal", {}).get(device, 0.0)
        lane_wh = self.per_device_wh.get(lane, {}).get(device, 0.0)
        if ideal == 0.0:
            return 0.0
        saved_wh = ideal - lane_wh
        # Fraction of one battery per Wh saved, summed over the class: the
        # caller divides by the class population for a per-node figure.
        return saved_wh / profile.battery_wh

    def render(self) -> str:
        """A small text table of energy per lane."""
        lines = [f"{'lane':<12} {'Wh':>10} {'saved vs ideal':>15}"]
        for lane, wh in sorted(self.total_wh.items()):
            lines.append(
                f"{lane:<12} {wh:>10.4f} {self.savings_vs_ideal(lane):>15.1%}"
            )
        return "\n".join(lines)


def energy_report(
    result: ExperimentResult, nodes: list[MobileNode]
) -> EnergyReport:
    """Compute per-lane transmission energy from a finished run.

    *nodes* must be the population the run used (for device classes); the
    per-node LU counts come from each lane's traffic meter.
    """
    device_of = {node.node_id: node.device for node in nodes}
    report = EnergyReport(duration=result.duration)
    for name, lane in result.lanes.items():
        total = 0.0
        per_device: dict[DeviceType, float] = {}
        for node_id, count in lane.meter.per_node().items():
            device = device_of.get(node_id)
            if device is None:
                continue
            cost = device_profile(device).tx_cost_wh * count
            total += cost
            per_device[device] = per_device.get(device, 0.0) + cost
        report.total_wh[name] = total
        report.per_device_wh[name] = per_device
    return report
