"""Traffic distribution analysis: who carries the load?

Aggregate LU counts hide distributional effects: a filter that saves 50 %
of traffic by silencing half the fleet is very different from one that
halves everyone's rate.  This module quantifies the shape of a lane's
per-node traffic: Lorenz curve, Gini coefficient, and the per-second
burstiness (index of dispersion) of the stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.results import LaneResult

__all__ = ["gini", "lorenz_curve", "TrafficShape", "traffic_shape"]


def gini(values) -> float:
    """Gini coefficient of non-negative *values* (0 = equal, ->1 = skewed)."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("gini of empty data")
    if np.any(arr < 0):
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    # Standard formula from the sorted-values representation.
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * arr) - (n + 1) * total) / (n * total))


def lorenz_curve(values) -> np.ndarray:
    """Cumulative-share curve of sorted *values* (starts at 0, ends at 1)."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("lorenz curve of empty data")
    total = arr.sum()
    if total == 0:
        return np.linspace(0.0, 1.0, arr.size + 1)
    return np.concatenate([[0.0], np.cumsum(arr) / total])


@dataclass(frozen=True)
class TrafficShape:
    """Distributional summary of one lane's LU traffic."""

    lane: str
    total: int
    active_nodes: int
    gini: float
    top_decile_share: float
    #: Variance/mean of the per-second counts; 1 ~ Poisson, >1 bursty.
    dispersion: float


def traffic_shape(lane: LaneResult, duration: float) -> TrafficShape:
    """Compute the distributional summary for one lane.

    Requires the lane's meter to have per-node counts (the harness records
    them).  Nodes that never transmitted contribute zeros only through
    `active_nodes`; the Gini is over transmitting nodes.
    """
    per_node = lane.meter.per_node()
    if not per_node:
        raise ValueError(f"lane {lane.name!r} has no per-node counts")
    counts = np.asarray(sorted(per_node.values()), dtype=float)
    top_k = max(int(np.ceil(counts.size * 0.1)), 1)
    top_share = float(counts[-top_k:].sum() / counts.sum()) if counts.sum() else 0.0
    per_second = lane.meter.per_second(duration).values
    mean = per_second.mean() if per_second.size else 0.0
    dispersion = float(per_second.var() / mean) if mean > 0 else 0.0
    return TrafficShape(
        lane=lane.name,
        total=lane.total_lus,
        active_nodes=int(counts.size),
        gini=gini(counts),
        top_decile_share=top_share,
        dispersion=dispersion,
    )
