"""Post-hoc analysis: replication statistics, classifier quality, energy.

The paper reports single-run numbers; a production reproduction should
also quantify run-to-run variance (:mod:`~repro.analysis.multirun`), the
mobility classifier's confusion structure
(:mod:`~repro.analysis.confusion`) and the battery impact of the saved
traffic (:mod:`~repro.analysis.energy`) — the paper's motivating "low
battery capacity" constraint, made measurable.
"""

from repro.analysis.multirun import (
    MetricSummary,
    replicate,
    summarize_metric,
    summarize_values,
)
from repro.analysis.confusion import ConfusionMatrix, evaluate_classifier
from repro.analysis.energy import EnergyReport, energy_report
from repro.analysis.traffic_stats import (
    TrafficShape,
    gini,
    lorenz_curve,
    traffic_shape,
)

__all__ = [
    "MetricSummary",
    "replicate",
    "summarize_metric",
    "summarize_values",
    "ConfusionMatrix",
    "evaluate_classifier",
    "EnergyReport",
    "energy_report",
    "TrafficShape",
    "gini",
    "lorenz_curve",
    "traffic_shape",
]
