"""Population construction per paper Table 1.

The evaluation uses 140 MNs: each of the 5 roads gets 5 human-type LMS and
5 vehicle-type LMS nodes; each of the 6 buildings gets 5 SS, 5 RMS and 5 LMS
human nodes.  Velocity ranges:

==========  ========  =======  ============
Region      Pattern   Type     Range (m/s)
==========  ========  =======  ============
Road        LMS       human    1 - 4
Road        LMS       vehicle  4 - 10
Building    SS        human    0
Building    RMS       human    0 - 1
Building    LMS       human    1 - 1.5
==========  ========  =======  ============
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campus import Campus, Region
from repro.mobility.models import (
    LinearPathModel,
    RandomTripPlanner,
    RandomWalkModel,
    ShuttlePlanner,
    StopModel,
)
from repro.mobility.node import MobileNode
from repro.mobility.states import (
    BUILDING_LINEAR_BAND,
    BUILDING_RANDOM_BAND,
    BUILDING_STOP_BAND,
    ROAD_HUMAN_BAND,
    ROAD_VEHICLE_BAND,
    DeviceType,
    MobilityState,
    NodeKind,
    VelocityBand,
)
from repro.util.rng import RngRegistry

__all__ = ["PopulationSpec", "table1_spec", "build_population"]


@dataclass(frozen=True)
class PopulationSpec:
    """How many nodes of each flavour to place, and at what speeds."""

    road_humans_per_road: int = 5
    road_vehicles_per_road: int = 5
    building_stop: int = 5
    building_random: int = 5
    building_linear: int = 5
    road_human_band: VelocityBand = field(default=ROAD_HUMAN_BAND)
    road_vehicle_band: VelocityBand = field(default=ROAD_VEHICLE_BAND)
    building_stop_band: VelocityBand = field(default=BUILDING_STOP_BAND)
    building_random_band: VelocityBand = field(default=BUILDING_RANDOM_BAND)
    building_linear_band: VelocityBand = field(default=BUILDING_LINEAR_BAND)

    def total_for(self, n_roads: int, n_buildings: int) -> int:
        """Total node count for a campus with the given region counts."""
        per_road = self.road_humans_per_road + self.road_vehicles_per_road
        per_building = (
            self.building_stop + self.building_random + self.building_linear
        )
        return n_roads * per_road + n_buildings * per_building

    def scaled(self, factor: int) -> "PopulationSpec":
        """A spec with every per-region count multiplied by *factor*."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return PopulationSpec(
            road_humans_per_road=self.road_humans_per_road * factor,
            road_vehicles_per_road=self.road_vehicles_per_road * factor,
            building_stop=self.building_stop * factor,
            building_random=self.building_random * factor,
            building_linear=self.building_linear * factor,
            road_human_band=self.road_human_band,
            road_vehicle_band=self.road_vehicle_band,
            building_stop_band=self.building_stop_band,
            building_random_band=self.building_random_band,
            building_linear_band=self.building_linear_band,
        )


def table1_spec() -> PopulationSpec:
    """The exact paper configuration (140 MNs on the default campus)."""
    return PopulationSpec()


_DEVICE_CYCLE = (DeviceType.CELL_PHONE, DeviceType.PDA, DeviceType.LAPTOP)


def _device_for(index: int) -> DeviceType:
    return _DEVICE_CYCLE[index % len(_DEVICE_CYCLE)]


def _road_node(
    region: Region,
    index: int,
    kind: NodeKind,
    band: VelocityBand,
    rng_registry: RngRegistry,
) -> MobileNode:
    node_id = f"{region.region_id}-{kind.value}-{index:02d}"
    rng = rng_registry.stream(f"mobility/{node_id}")
    centerline = region.centerline
    assert centerline is not None  # guaranteed for roads by Region validation
    start = centerline.point_at(float(rng.uniform(0.0, centerline.length)))
    model = LinearPathModel(start, ShuttlePlanner(centerline), band, rng)
    return MobileNode(
        node_id,
        model,
        device=_device_for(index),
        kind=kind,
        home_region=region.region_id,
        true_state=MobilityState.LINEAR,
    )


def _building_node(
    region: Region,
    index: int,
    state: MobilityState,
    band: VelocityBand,
    rng_registry: RngRegistry,
) -> MobileNode:
    node_id = f"{region.region_id}-{state.value}-{index:02d}"
    rng = rng_registry.stream(f"mobility/{node_id}")
    start = region.bounds.random_point(rng)
    if state is MobilityState.STOP:
        model = StopModel(start)
    elif state is MobilityState.RANDOM:
        model = RandomWalkModel(start, region.bounds, band, rng)
    else:
        corridors = list(region.corridors)
        if not corridors:
            raise ValueError(
                f"building {region.region_id} has no corridors for LMS nodes"
            )
        model = LinearPathModel(
            start, RandomTripPlanner(corridors, rng), band, rng
        )
    return MobileNode(
        node_id,
        model,
        device=_device_for(index),
        kind=NodeKind.HUMAN,
        home_region=region.region_id,
        true_state=state,
    )


def build_population(
    campus: Campus,
    spec: PopulationSpec,
    rng_registry: RngRegistry,
) -> list[MobileNode]:
    """Instantiate the full node population on *campus* per *spec*.

    Node ids are deterministic (region + pattern + index), and each node gets
    its own named RNG stream, so populations are reproducible under a seed.
    """
    nodes: list[MobileNode] = []
    for region in campus.roads():
        for i in range(spec.road_humans_per_road):
            nodes.append(
                _road_node(region, i, NodeKind.HUMAN, spec.road_human_band, rng_registry)
            )
        for i in range(spec.road_vehicles_per_road):
            nodes.append(
                _road_node(
                    region, i, NodeKind.VEHICLE, spec.road_vehicle_band, rng_registry
                )
            )
    for region in campus.buildings():
        for i in range(spec.building_stop):
            nodes.append(
                _building_node(
                    region, i, MobilityState.STOP, spec.building_stop_band, rng_registry
                )
            )
        for i in range(spec.building_random):
            nodes.append(
                _building_node(
                    region,
                    i,
                    MobilityState.RANDOM,
                    spec.building_random_band,
                    rng_registry,
                )
            )
        for i in range(spec.building_linear):
            nodes.append(
                _building_node(
                    region,
                    i,
                    MobilityState.LINEAR,
                    spec.building_linear_band,
                    rng_registry,
                )
            )
    return nodes
