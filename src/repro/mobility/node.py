"""The mobile node: identity, device, kinematics and motion history."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.geometry import Vec2
from repro.mobility.models import MobilityModel
from repro.mobility.states import DeviceType, MobilityState, NodeKind

__all__ = ["MotionSample", "MobileNode"]


@dataclass(frozen=True, slots=True)
class MotionSample:
    """One observed kinematic sample of a node."""

    time: float
    position: Vec2
    velocity: Vec2

    @property
    def speed(self) -> float:
        """Scalar speed in m/s."""
        return self.velocity.norm()

    @property
    def direction(self) -> float:
        """Heading in radians (meaningless when speed is ~0)."""
        return self.velocity.angle()


class MobileNode:
    """A mobile grid node (cell phone / PDA / laptop on a person or vehicle).

    The node hosts a mobility model, advances in fixed time steps, and keeps
    a bounded history of motion samples — the observable the ADF's mobility
    classifier works from.  ``true_state`` records the generating pattern so
    experiments can score the classifier against ground truth.
    """

    def __init__(
        self,
        node_id: str,
        model: MobilityModel,
        *,
        device: DeviceType = DeviceType.CELL_PHONE,
        kind: NodeKind = NodeKind.HUMAN,
        home_region: str = "",
        true_state: MobilityState | None = None,
        history_length: int = 32,
    ) -> None:
        if not node_id:
            raise ValueError("node_id must be non-empty")
        if history_length < 2:
            raise ValueError(f"history_length must be >= 2, got {history_length}")
        self.node_id = node_id
        self.device = device
        self.kind = kind
        self.home_region = home_region
        self.true_state = true_state
        self._model = model
        self._velocity = Vec2.zero()
        self._time = 0.0
        self._history: deque[MotionSample] = deque(maxlen=history_length)
        self._history.append(MotionSample(0.0, model.position, Vec2.zero()))

    # -- kinematics ------------------------------------------------------------
    @property
    def position(self) -> Vec2:
        """Current true position."""
        return self._model.position

    @property
    def velocity(self) -> Vec2:
        """Velocity over the last advance step."""
        return self._velocity

    @property
    def speed(self) -> float:
        """Scalar speed over the last advance step (m/s)."""
        return self._velocity.norm()

    @property
    def direction(self) -> float:
        """Heading over the last advance step (radians)."""
        return self._velocity.angle()

    @property
    def time(self) -> float:
        """Node-local clock: time of the latest sample."""
        return self._time

    @property
    def model(self) -> MobilityModel:
        """The mobility model driving this node."""
        return self._model

    def replace_model(self, model: MobilityModel) -> None:
        """Swap the mobility model (used by itinerary scenarios)."""
        self._model = model

    def advance(self, dt: float) -> MotionSample:
        """Move the node forward by *dt* seconds; returns the new sample."""
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        old = self._model.position
        new = self._model.step(dt)
        self._velocity = (new - old) / dt
        self._time += dt
        sample = MotionSample(self._time, new, self._velocity)
        self._history.append(sample)
        return sample

    # -- history ------------------------------------------------------------
    @property
    def history(self) -> tuple[MotionSample, ...]:
        """Recent motion samples, oldest first."""
        return tuple(self._history)

    def latest(self) -> MotionSample:
        """The most recent motion sample."""
        return self._history[-1]

    def __repr__(self) -> str:
        state = self.true_state.value if self.true_state else "?"
        return f"MobileNode({self.node_id}, {state}, {self.kind.value})"
