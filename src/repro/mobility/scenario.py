"""Itinerary-driven mobility: schedules like Tom's day (paper §3.1).

An :class:`Itinerary` is a sequence of steps:

* :class:`MoveTo` — walk to a region's entrance along the road network (LMS);
* :class:`Stay` — remain in place for a duration (SS);
* :class:`Wander` — move randomly within the current region (RMS).

:class:`ItineraryModel` executes the steps as a mobility model, so an
itinerary node plugs into the exact same machinery as the Table 1 nodes.
:func:`tom_itinerary` encodes the paper's 11-case undergraduate scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campus import Campus
from repro.geometry import Path, Vec2
from repro.mobility.models import MobilityModel, RandomWalkModel
from repro.mobility.states import (
    BUILDING_RANDOM_BAND,
    ROAD_HUMAN_BAND,
    MobilityState,
    VelocityBand,
)
from repro.util.units import HOUR, MINUTE

__all__ = [
    "MoveTo",
    "Stay",
    "Wander",
    "Itinerary",
    "ItineraryModel",
    "tom_itinerary",
]


@dataclass(frozen=True, slots=True)
class MoveTo:
    """Walk to navigation node *destination* at speeds from *band*."""

    destination: str
    band: VelocityBand = ROAD_HUMAN_BAND


@dataclass(frozen=True, slots=True)
class Stay:
    """Remain stationary for *duration* seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"stay duration must be > 0, got {self.duration}")


@dataclass(frozen=True, slots=True)
class Wander:
    """Move randomly within region *region_id* for *duration* seconds."""

    duration: float
    region_id: str
    band: VelocityBand = BUILDING_RANDOM_BAND

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"wander duration must be > 0, got {self.duration}")


Step = MoveTo | Stay | Wander


@dataclass(frozen=True)
class Itinerary:
    """A named, ordered schedule of mobility steps."""

    name: str
    start_node: str
    steps: tuple[Step, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError(f"itinerary {self.name!r} has no steps")

    def total_stationary_time(self) -> float:
        """Seconds spent in Stay steps (for scenario sanity checks)."""
        return sum(s.duration for s in self.steps if isinstance(s, Stay))


class ItineraryModel(MobilityModel):
    """Executes an itinerary as a steppable mobility model.

    Also exposes :attr:`current_state`, the pattern the node is *actually* in
    right now — ground truth for classifier evaluation across transitions.
    When the itinerary finishes, the node stays put (SS) and
    :attr:`finished` is set.
    """

    def __init__(
        self,
        campus: Campus,
        itinerary: Itinerary,
        rng: np.random.Generator,
        *,
        speed_jitter: float = 0.05,
    ) -> None:
        super().__init__(campus.node_pos(itinerary.start_node))
        self._campus = campus
        self._itinerary = itinerary
        self._rng = rng
        self._speed_jitter = speed_jitter
        self._step_index = 0
        self._state = MobilityState.STOP
        self._time_left = 0.0
        self._path: Path | None = None
        self._arc = 0.0
        self._speed = 0.0
        self._wanderer: RandomWalkModel | None = None
        self.finished = False

    @property
    def current_state(self) -> MobilityState:
        """Ground-truth mobility pattern at this instant."""
        return self._state

    @property
    def step_index(self) -> int:
        """Index of the itinerary step currently executing."""
        return min(self._step_index, len(self._itinerary.steps) - 1)

    def _enter_next_step(self) -> None:
        if self._step_index >= len(self._itinerary.steps):
            self.finished = True
            self._state = MobilityState.STOP
            return
        step = self._itinerary.steps[self._step_index]
        self._step_index += 1
        if isinstance(step, Stay):
            self._state = MobilityState.STOP
            self._time_left = step.duration
            self._wanderer = None
            self._path = None
        elif isinstance(step, Wander):
            self._state = MobilityState.RANDOM
            self._time_left = step.duration
            region = self._campus.region(step.region_id)
            self._wanderer = RandomWalkModel(
                self._position, region.bounds, step.band, self._rng
            )
            self._path = None
        else:  # MoveTo
            self._state = MobilityState.LINEAR
            goal = self._campus.node_pos(step.destination)
            self._path = self._campus.route_between_points(self._position, goal)
            self._arc = 0.0
            self._speed = step.band.sample(self._rng)
            if self._speed <= 0.0:
                self._speed = max(step.band.high, 0.5)
            self._wanderer = None

    def step(self, dt: float) -> Vec2:
        self._require_dt(dt)
        remaining = dt
        while remaining > 1e-12 and not self.finished:
            if self._state is MobilityState.LINEAR and self._path is not None:
                remaining = self._advance_walk(remaining)
            elif self._time_left > 0.0:
                used = min(self._time_left, remaining)
                if self._wanderer is not None:
                    self._wanderer.step(used)
                    self._position = self._wanderer.position
                self._time_left -= used
                remaining -= used
            else:
                self._enter_next_step()
        return self._position

    def _advance_walk(self, remaining: float) -> float:
        assert self._path is not None
        jitter = 1.0 + self._speed_jitter * float(self._rng.standard_normal())
        speed = self._speed * max(jitter, 0.1)
        left = self._path.remaining(self._arc)
        travel = speed * remaining
        if travel >= left:
            self._position = self._path.end
            self._path = None
            used = left / speed if speed > 0 else remaining
            self._enter_next_step()
            return remaining - used
        self._arc += travel
        self._position = self._path.point_at(self._arc)
        return 0.0


def tom_itinerary(*, compressed: bool = False) -> Itinerary:
    """The paper's undergraduate scenario (Tom's 11 movement cases).

    With ``compressed=True`` every Stay/Wander duration is divided by 60 so
    the full day fits in a short simulation (useful in tests and examples).
    """
    scale = 1.0 / 60.0 if compressed else 1.0

    def minutes(m: float) -> float:
        return max(m * MINUTE * scale, 1.0)

    def hours(h: float) -> float:
        return max(h * HOUR * scale, 1.0)

    steps: tuple[Step, ...] = (
        MoveTo("B4.door"),                     # (1) gate B -> R2 -> library
        Stay(hours(1)),                        # (2) study 1 h
        MoveTo("B6.door"),                     # (3) R5 -> lecture hall
        Stay(hours(2)),                        # (4) class 2 h
        MoveTo("B4.door"),                     # (5) back to the library
        Stay(minutes(90)),                     # (6) study 90 min
        Wander(minutes(30), "B4"),             # (7) coffee break, random
        MoveTo("B3.door"),                     # (8) R2 -> R1 -> R3 -> chemistry
        MoveTo("J3"),                          # (9) hallway walk (modelled as
                                               #     a short LMS leg)
        Wander(hours(3), "B3"),                # (10) lab work, random moves
        MoveTo("gateA"),                       # (11) R4 -> gate A, leave
    )
    return Itinerary(name="tom", start_node="gateB", steps=steps)
