"""Mobility taxonomy: states, node kinds, devices and velocity bands."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_non_negative

__all__ = ["MobilityState", "NodeKind", "DeviceType", "VelocityBand"]


class MobilityState(enum.Enum):
    """The paper's three mobility patterns (§3.1)."""

    STOP = "SS"
    RANDOM = "RMS"
    LINEAR = "LMS"


class NodeKind(enum.Enum):
    """Human versus vehicle MNs; only roads carry vehicles (paper §4)."""

    HUMAN = "human"
    VEHICLE = "vehicle"


class DeviceType(enum.Enum):
    """The mobile devices the paper limits itself to (§3.1)."""

    LAPTOP = "laptop"
    PDA = "pda"
    CELL_PHONE = "cell_phone"


@dataclass(frozen=True, slots=True)
class VelocityBand:
    """An inclusive speed range in m/s (paper Table 1's "VR" column)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        check_non_negative(self.low, "low")
        check_non_negative(self.high, "high")
        if self.high < self.low:
            raise ValueError(f"velocity band inverted: [{self.low}, {self.high}]")

    @property
    def mean(self) -> float:
        """Midpoint of the band."""
        return (self.low + self.high) / 2.0

    def sample(self, rng: np.random.Generator) -> float:
        """A uniformly distributed speed from the band."""
        if self.low == self.high:
            return self.low
        return float(rng.uniform(self.low, self.high))

    def clamp(self, speed: float) -> float:
        """*speed* limited to the band."""
        return min(max(speed, self.low), self.high)

    def contains(self, speed: float, *, tol: float = 1e-9) -> bool:
        """True when *speed* lies inside the band (within tolerance)."""
        return self.low - tol <= speed <= self.high + tol


#: Paper Table 1 velocity ranges.
ROAD_HUMAN_BAND = VelocityBand(1.0, 4.0)
ROAD_VEHICLE_BAND = VelocityBand(4.0, 10.0)
BUILDING_STOP_BAND = VelocityBand(0.0, 0.0)
BUILDING_RANDOM_BAND = VelocityBand(0.0, 1.0)
BUILDING_LINEAR_BAND = VelocityBand(1.0, 1.5)
