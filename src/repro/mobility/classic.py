"""Classic mobility models from the mobile-networking literature.

The paper derives its SS/RMS/LMS taxonomy from first principles; the
mobility community's standard generators are different processes with the
same observable (position over time).  Implementing them lets us test that
the ADF's behaviour is not an artefact of our generator:

* :class:`RandomWaypointModel` — pick a uniform destination in the area,
  travel at a uniform speed, pause, repeat (Johnson & Maltz);
* :class:`GaussMarkovModel` — speed and heading evolve as mean-reverting
  AR(1) processes with tunable memory (Liang & Haas);
* :class:`ManhattanGridModel` — movement constrained to a street grid with
  turn probabilities at intersections.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry import Rect, Vec2
from repro.mobility.models import MobilityModel
from repro.mobility.states import VelocityBand
from repro.util.validation import check_in_range, check_non_negative, check_positive

__all__ = ["RandomWaypointModel", "GaussMarkovModel", "ManhattanGridModel"]


class RandomWaypointModel(MobilityModel):
    """The Random Waypoint model: travel-pause cycles across an area."""

    def __init__(
        self,
        position: Vec2,
        area: Rect,
        band: VelocityBand,
        rng: np.random.Generator,
        *,
        max_pause: float = 30.0,
    ) -> None:
        super().__init__(area.clamp(position))
        check_non_negative(max_pause, "max_pause")
        if band.high <= 0:
            raise ValueError("random waypoint needs a positive max speed")
        self._area = area
        self._band = band
        self._rng = rng
        self._max_pause = max_pause
        self._target: Vec2 | None = None
        self._speed = 0.0
        self._pause_left = 0.0

    def _begin_trip(self) -> None:
        self._target = self._area.random_point(self._rng)
        low = max(self._band.low, 0.05 * self._band.high)
        self._speed = float(self._rng.uniform(low, self._band.high))

    def step(self, dt: float) -> Vec2:
        self._require_dt(dt)
        remaining = dt
        while remaining > 1e-12:
            if self._pause_left > 0.0:
                used = min(self._pause_left, remaining)
                self._pause_left -= used
                remaining -= used
                continue
            if self._target is None:
                self._begin_trip()
                continue
            offset = self._target - self._position
            dist = offset.norm()
            travel = self._speed * remaining
            if travel >= dist:
                self._position = self._target
                remaining -= dist / self._speed if self._speed > 0 else remaining
                self._target = None
                if self._max_pause > 0:
                    self._pause_left = float(
                        self._rng.uniform(0.0, self._max_pause)
                    )
            else:
                self._position = self._position + offset.unit() * travel
                remaining = 0.0
        return self._position


class GaussMarkovModel(MobilityModel):
    """The Gauss-Markov model: AR(1) speed and heading with memory alpha.

    ``alpha`` in [0, 1): 0 is a fresh random draw each step (Brownian-ish),
    values near 1 give strongly correlated, almost-linear motion.  Nodes
    reflect off the area boundary by steering towards the centre.
    """

    def __init__(
        self,
        position: Vec2,
        area: Rect,
        band: VelocityBand,
        rng: np.random.Generator,
        *,
        alpha: float = 0.85,
        heading_sigma: float = 0.4,
        speed_sigma: float | None = None,
    ) -> None:
        super().__init__(area.clamp(position))
        check_in_range(alpha, "alpha", 0.0, 1.0)
        check_non_negative(heading_sigma, "heading_sigma")
        self._area = area
        self._band = band
        self._rng = rng
        self._alpha = alpha
        self._heading_sigma = heading_sigma
        self._speed_sigma = (
            speed_sigma
            if speed_sigma is not None
            else 0.2 * max(band.high - band.low, 0.1)
        )
        self._mean_speed = band.mean if band.mean > 0 else band.high / 2
        self._speed = self._mean_speed
        self._heading = float(rng.uniform(-math.pi, math.pi))

    @property
    def heading(self) -> float:
        """The current heading state (radians)."""
        return self._heading

    def _mean_heading(self) -> float:
        """Steer towards the area centre when close to the boundary."""
        margin = 0.1 * min(self._area.width, self._area.height)
        inner = self._area.expanded(-margin) if margin > 0 else self._area
        if inner.contains(self._position):
            return self._heading
        return (self._area.center - self._position).angle()

    def step(self, dt: float) -> Vec2:
        self._require_dt(dt)
        a = self._alpha
        root = math.sqrt(max(1.0 - a * a, 0.0))
        self._speed = (
            a * self._speed
            + (1.0 - a) * self._mean_speed
            + root * self._speed_sigma * float(self._rng.standard_normal())
        )
        self._speed = self._band.clamp(max(self._speed, 0.0))
        mean_heading = self._mean_heading()
        self._heading = (
            a * self._heading
            + (1.0 - a) * mean_heading
            + root * self._heading_sigma * float(self._rng.standard_normal())
        )
        step_vector = Vec2.from_polar(self._speed * dt, self._heading)
        self._position = self._area.clamp(self._position + step_vector)
        return self._position


class ManhattanGridModel(MobilityModel):
    """Movement on a street grid with probabilistic turns at corners.

    The area is overlaid with a square grid of street spacing ``block``;
    nodes move along grid lines and, at each intersection, continue
    straight with probability ``p_straight`` or turn left/right with equal
    shares of the remainder.
    """

    _DIRS = (Vec2(1, 0), Vec2(0, 1), Vec2(-1, 0), Vec2(0, -1))

    def __init__(
        self,
        position: Vec2,
        area: Rect,
        band: VelocityBand,
        rng: np.random.Generator,
        *,
        block: float = 50.0,
        p_straight: float = 0.6,
    ) -> None:
        check_positive(block, "block")
        check_in_range(p_straight, "p_straight", 0.0, 1.0)
        snapped, vertical_street = self._snap(area.clamp(position), area, block)
        super().__init__(snapped)
        self._area = area
        self._band = band
        self._rng = rng
        self._block = block
        self._p_straight = p_straight
        # The initial direction must run along the street we snapped onto:
        # directions 1/3 are vertical (for a snapped x), 0/2 horizontal.
        if vertical_street:
            self._direction = 1 if rng.random() < 0.5 else 3
        else:
            self._direction = 0 if rng.random() < 0.5 else 2
        self._speed = band.sample(rng) or max(band.high, 0.5)
        self._to_next = self._distance_to_next_corner()

    @staticmethod
    def _snap(point: Vec2, area: Rect, block: float) -> tuple[Vec2, bool]:
        """Snap onto the nearest grid line.

        Returns the snapped point and whether it lies on a *vertical*
        street (x snapped) rather than a horizontal one (y snapped).
        """
        gx = area.x_min + round((point.x - area.x_min) / block) * block
        gy = area.y_min + round((point.y - area.y_min) / block) * block
        if abs(point.x - gx) <= abs(point.y - gy):
            return Vec2(gx, point.y), True
        return Vec2(point.x, gy), False

    def _distance_to_next_corner(self) -> float:
        d = self._DIRS[self._direction]
        if d.x != 0:
            along = (self._position.x - self._area.x_min) / self._block
            frac = along - math.floor(along)
            gap = (1.0 - frac) if d.x > 0 else frac
        else:
            along = (self._position.y - self._area.y_min) / self._block
            frac = along - math.floor(along)
            gap = (1.0 - frac) if d.y > 0 else frac
        gap = gap if gap > 1e-9 else 1.0
        return gap * self._block

    def _choose_direction(self) -> None:
        roll = float(self._rng.random())
        if roll >= self._p_straight:
            turn = 1 if roll < self._p_straight + (1 - self._p_straight) / 2 else -1
            self._direction = (self._direction + turn) % 4
        # Reflect instead of walking out of the area.
        probe = self._position + self._DIRS[self._direction] * self._block
        if not self._area.contains(probe, tol=1e-6):
            self._direction = (self._direction + 2) % 4

    def step(self, dt: float) -> Vec2:
        self._require_dt(dt)
        remaining = dt
        while remaining > 1e-12:
            travel = self._speed * remaining
            if travel >= self._to_next:
                self._position = self._area.clamp(
                    self._position + self._DIRS[self._direction] * self._to_next
                )
                remaining -= (
                    self._to_next / self._speed if self._speed > 0 else remaining
                )
                self._choose_direction()
                self._speed = self._band.clamp(
                    self._speed * (1.0 + 0.1 * float(self._rng.standard_normal()))
                )
                if self._speed <= 0:
                    self._speed = max(self._band.high * 0.5, 0.1)
                self._to_next = self._block
            else:
                self._position = self._area.clamp(
                    self._position + self._DIRS[self._direction] * travel
                )
                self._to_next -= travel
                remaining = 0.0
        return self._position
