"""Mobility modelling for mobile-grid nodes.

The paper distils campus movement into three patterns (§3.1):

* **SS** — Stop State: no movement (studying, attending class);
* **RMS** — Random Movement State: slow, frequently changing velocity and
  direction (coffee breaks, lab work);
* **LMS** — Linear Movement State: purposeful movement towards a destination
  at near-constant velocity, with direction changes at intersections or
  along hallways.

This package provides stochastic models for each pattern, the
:class:`~repro.mobility.node.MobileNode` that hosts them, the Table 1
population builder and itinerary-driven scenarios (Tom's day).
"""

from repro.mobility.states import (
    DeviceType,
    MobilityState,
    NodeKind,
    VelocityBand,
)
from repro.mobility.models import (
    LinearPathModel,
    MobilityModel,
    RandomTripPlanner,
    RandomWalkModel,
    RoutePlanner,
    ShuttlePlanner,
    StopModel,
)
from repro.mobility.classic import (
    GaussMarkovModel,
    ManhattanGridModel,
    RandomWaypointModel,
)
from repro.mobility.node import MobileNode, MotionSample
from repro.mobility.population import PopulationSpec, build_population, table1_spec
from repro.mobility.scenario import (
    Itinerary,
    ItineraryModel,
    MoveTo,
    Stay,
    Wander,
    tom_itinerary,
)
from repro.mobility.trace import TrajectoryTrace

__all__ = [
    "DeviceType",
    "MobilityState",
    "NodeKind",
    "VelocityBand",
    "MobilityModel",
    "StopModel",
    "RandomWalkModel",
    "LinearPathModel",
    "RandomWaypointModel",
    "GaussMarkovModel",
    "ManhattanGridModel",
    "RoutePlanner",
    "ShuttlePlanner",
    "RandomTripPlanner",
    "MobileNode",
    "MotionSample",
    "PopulationSpec",
    "build_population",
    "table1_spec",
    "Itinerary",
    "ItineraryModel",
    "MoveTo",
    "Stay",
    "Wander",
    "tom_itinerary",
    "TrajectoryTrace",
]
