"""Stochastic mobility models for the three movement patterns.

Each model owns the node's kinematic state and exposes one operation:
``step(dt)`` advances the model by *dt* seconds and returns the new position.
Models are deterministic given their RNG stream.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.geometry import Path, Rect, Vec2
from repro.mobility.states import VelocityBand
from repro.util.validation import check_positive

__all__ = [
    "MobilityModel",
    "StopModel",
    "RandomWalkModel",
    "LinearPathModel",
    "RoutePlanner",
    "ShuttlePlanner",
    "RandomTripPlanner",
]


class MobilityModel(abc.ABC):
    """Base class: a positional process stepped in fixed increments."""

    def __init__(self, position: Vec2) -> None:
        self._position = position

    @property
    def position(self) -> Vec2:
        """Current position."""
        return self._position

    @abc.abstractmethod
    def step(self, dt: float) -> Vec2:
        """Advance *dt* seconds; return (and store) the new position."""

    def _require_dt(self, dt: float) -> float:
        return check_positive(dt, "dt")


class StopModel(MobilityModel):
    """Stop State (SS): the node does not move."""

    def step(self, dt: float) -> Vec2:
        self._require_dt(dt)
        return self._position


class RandomWalkModel(MobilityModel):
    """Random Movement State (RMS): slow wandering inside an area.

    The node repeatedly picks a random waypoint within *leg_radius* of its
    current position (clamped into *area*) and a random speed from *band*
    and walks there; occasionally it pauses.  Short legs are what make RMS
    what the paper describes — "changes its velocity or direction
    frequently" — a node crossing the whole building in one leg would look
    LMS to any observer, including the ADF's classifier.
    """

    def __init__(
        self,
        position: Vec2,
        area: Rect,
        band: VelocityBand,
        rng: np.random.Generator,
        *,
        pause_probability: float = 0.15,
        max_pause: float = 20.0,
        margin: float = 2.0,
        leg_radius: float = 6.0,
    ) -> None:
        super().__init__(area.clamp(position))
        if not (0.0 <= pause_probability <= 1.0):
            raise ValueError(
                f"pause_probability must be in [0, 1], got {pause_probability}"
            )
        if leg_radius <= 0:
            raise ValueError(f"leg_radius must be > 0, got {leg_radius}")
        self._area = area.expanded(-margin) if _can_shrink(area, margin) else area
        self._band = band
        self._rng = rng
        self._pause_probability = pause_probability
        self._max_pause = max_pause
        self._leg_radius = leg_radius
        self._target: Vec2 | None = None
        self._speed = 0.0
        self._pause_left = 0.0

    def _pick_leg(self) -> None:
        if self._rng.random() < self._pause_probability:
            self._target = None
            self._pause_left = float(self._rng.uniform(1.0, self._max_pause))
            return
        angle = float(self._rng.uniform(-np.pi, np.pi))
        radius = float(self._rng.uniform(0.5, self._leg_radius))
        self._target = self._area.clamp(
            self._position + Vec2.from_polar(radius, angle)
        )
        # Avoid zero speed so "random movement" actually moves.
        low = max(self._band.low, 0.1 * max(self._band.high, 0.1))
        self._speed = float(self._rng.uniform(low, max(self._band.high, low)))

    def step(self, dt: float) -> Vec2:
        self._require_dt(dt)
        remaining = dt
        while remaining > 1e-12:
            if self._pause_left > 0.0:
                used = min(self._pause_left, remaining)
                self._pause_left -= used
                remaining -= used
                continue
            if self._target is None:
                self._pick_leg()
                continue
            to_target = self._target - self._position
            dist = to_target.norm()
            if dist <= 1e-9:
                self._target = None
                continue
            travel = self._speed * remaining
            if travel >= dist:
                self._position = self._target
                remaining -= dist / self._speed if self._speed > 0 else remaining
                self._target = None
            else:
                self._position = self._position + to_target.unit() * travel
                remaining = 0.0
        return self._position


class RoutePlanner(abc.ABC):
    """Supplies the next path when an LMS node exhausts its current one."""

    @abc.abstractmethod
    def next_path(self, current: Vec2) -> Path:
        """Return the next path, starting at (or near) *current*."""


class ShuttlePlanner(RoutePlanner):
    """Traverses one fixed path back and forth (road patrol)."""

    def __init__(self, path: Path) -> None:
        if path.length <= 0:
            raise ValueError("shuttle path must have positive length")
        self._forward = path
        self._go_forward = True

    def next_path(self, current: Vec2) -> Path:
        path = self._forward if self._go_forward else self._forward.reversed()
        self._go_forward = not self._go_forward
        return path


class RandomTripPlanner(RoutePlanner):
    """Chooses random trips among a set of candidate paths.

    Used for LMS nodes inside buildings: candidates are the building's
    corridors, giving hallway-shaped direction changes (paper case 9).
    """

    def __init__(self, candidates: list[Path], rng: np.random.Generator) -> None:
        if not candidates:
            raise ValueError("need at least one candidate path")
        self._candidates = list(candidates)
        self._rng = rng

    def next_path(self, current: Vec2) -> Path:
        index = int(self._rng.integers(len(self._candidates)))
        chosen = self._candidates[index]
        if self._rng.random() < 0.5:
            chosen = chosen.reversed()
        # Walk from wherever we are to the chosen path's start, then along it.
        if current.distance_to(chosen.start) > 1e-9:
            return Path([current, *chosen.waypoints])
        return chosen


class LinearPathModel(MobilityModel):
    """Linear Movement State (LMS): near-constant speed along paths.

    The node follows paths supplied by a :class:`RoutePlanner` at a base
    speed drawn from *band* once per path, perturbed by per-step noise —
    the paper calls LMS velocity "relatively normal", not constant, and the
    jitter level calibrates how often the distance filter's threshold is
    crossed.  Direction changes only happen at path vertices —
    intersections and hallway corners — matching the paper's
    characterisation of LMS.
    """

    def __init__(
        self,
        position: Vec2,
        planner: RoutePlanner,
        band: VelocityBand,
        rng: np.random.Generator,
        *,
        speed_jitter: float = 0.25,
    ) -> None:
        super().__init__(position)
        if speed_jitter < 0:
            raise ValueError(f"speed_jitter must be >= 0, got {speed_jitter}")
        self._planner = planner
        self._band = band
        self._rng = rng
        self._speed_jitter = speed_jitter
        self._path: Path | None = None
        self._arc = 0.0
        self._base_speed = band.mean

    def _begin_path(self) -> None:
        path = self._planner.next_path(self._position)
        if self._position.distance_to(path.start) > 1e-9:
            # Never teleport: walk from wherever we are to the path's start.
            path = Path([self._position, *path.waypoints])
        self._path = path
        self._arc = 0.0
        self._base_speed = self._band.sample(self._rng)
        if self._base_speed <= 0.0:
            self._base_speed = max(self._band.high, 0.1)

    @property
    def current_path(self) -> Path | None:
        """The path being traversed, if any (for tests/visualisation)."""
        return self._path

    def step(self, dt: float) -> Vec2:
        self._require_dt(dt)
        remaining = dt
        while remaining > 1e-12:
            if self._path is None or self._arc >= self._path.length:
                self._begin_path()
                if self._path.length <= 1e-9:
                    # Degenerate path: nothing to walk; stay put this step.
                    self._path = None
                    break
            jitter = 1.0 + self._speed_jitter * float(self._rng.standard_normal())
            speed = self._band.clamp(self._base_speed * max(jitter, 0.1))
            if speed <= 0.0:
                break
            travel = speed * remaining
            left_on_path = self._path.remaining(self._arc)
            if travel >= left_on_path:
                self._arc = self._path.length
                self._position = self._path.end
                remaining -= left_on_path / speed
                self._path = None
            else:
                self._arc += travel
                self._position = self._path.point_at(self._arc)
                remaining = 0.0
        return self._position


def _can_shrink(area: Rect, margin: float) -> bool:
    return area.width > 2 * margin and area.height > 2 * margin
