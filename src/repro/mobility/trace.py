"""Trajectory recording for analysis and visualisation."""

from __future__ import annotations

import numpy as np

from repro.mobility.node import MobileNode, MotionSample

__all__ = ["TrajectoryTrace"]


class TrajectoryTrace:
    """Collects per-node motion samples over a run.

    Unlike the node's own bounded history, a trace keeps everything, so the
    experiment harness can compute exact displacement statistics after the
    fact (e.g. average moving distance, which calibrates DTH sizes).
    """

    def __init__(self) -> None:
        self._samples: dict[str, list[MotionSample]] = {}

    def record(self, node: MobileNode) -> None:
        """Append the node's latest motion sample to its trace."""
        self._samples.setdefault(node.node_id, []).append(node.latest())

    def node_ids(self) -> list[str]:
        """Ids of all traced nodes."""
        return list(self._samples)

    def samples(self, node_id: str) -> list[MotionSample]:
        """All samples for one node, oldest first."""
        return list(self._samples.get(node_id, []))

    def __len__(self) -> int:
        return sum(len(v) for v in self._samples.values())

    def positions(self, node_id: str) -> np.ndarray:
        """An ``(n, 2)`` array of a node's positions."""
        pts = self._samples.get(node_id, [])
        return np.array([[s.position.x, s.position.y] for s in pts], dtype=float)

    def speeds(self, node_id: str) -> np.ndarray:
        """A node's scalar speeds over time."""
        pts = self._samples.get(node_id, [])
        return np.array([s.speed for s in pts], dtype=float)

    def total_distance(self, node_id: str) -> float:
        """Path length travelled by a node over the trace."""
        positions = self.positions(node_id)
        if len(positions) < 2:
            return 0.0
        deltas = np.diff(positions, axis=0)
        return float(np.sum(np.hypot(deltas[:, 0], deltas[:, 1])))

    def mean_speed(self, node_id: str) -> float:
        """Average of a node's recorded speeds (0.0 when untraced)."""
        speeds = self.speeds(node_id)
        return float(np.mean(speeds)) if speeds.size else 0.0

    def fleet_mean_speed(self) -> float:
        """Mean speed across every sample of every node."""
        all_speeds = [self.speeds(nid) for nid in self._samples]
        flat = np.concatenate(all_speeds) if all_speeds else np.array([])
        return float(np.mean(flat)) if flat.size else 0.0
