"""A small discrete-event simulation kernel.

The mobile-grid experiments are time-stepped at their core (MNs move every
``dt``), but the network channel, gateways and broker react to events at
arbitrary times, so everything is driven by a classic event heap.

Components:

* :class:`~repro.simkernel.events.Event` / :class:`~repro.simkernel.events.EventQueue`
  — the ordered future event list;
* :class:`~repro.simkernel.engine.Simulator` — scheduling, `run_until`,
  periodic activities;
* :mod:`repro.simkernel.process` — generator-based processes (``yield`` a
  delay to sleep) layered on top of the engine.
"""

from repro.simkernel.events import Event, EventQueue
from repro.simkernel.engine import Simulator, SimulationError
from repro.simkernel.process import Process, hold

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SimulationError",
    "Process",
    "hold",
]
