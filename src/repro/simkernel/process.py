"""Generator-based processes on top of the event engine.

A process is a generator that ``yield``-s :func:`hold` delays; the kernel
resumes it after the requested simulated time.  This gives scenario code
(e.g. the "Tom" itinerary of paper §3.1) a readable sequential style::

    def day(proc):
        walk_to(library)
        yield hold(1 * HOUR)      # study
        walk_to(lecture_hall)
        yield hold(2 * HOUR)      # class
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.simkernel.engine import Simulator

__all__ = ["hold", "Hold", "Process"]


@dataclass(frozen=True, slots=True)
class Hold:
    """A request to suspend the process for *delay* simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"hold delay must be >= 0, got {self.delay}")


def hold(delay: float) -> Hold:
    """Suspend the yielding process for *delay* seconds."""
    return Hold(delay)


class Process:
    """Drives a generator as a simulation process.

    The generator may yield :class:`Hold` objects (or bare non-negative
    numbers, treated as delays).  When the generator returns, the process is
    finished; :attr:`done` flips to ``True``.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator,
        *,
        name: str = "process",
        start_delay: float = 0.0,
    ) -> None:
        self._sim = sim
        self._generator = generator
        self.name = name
        self.done = False
        sim.schedule_in(start_delay, self._resume, label=f"{name}:start")

    def _resume(self) -> None:
        if self.done:
            return
        try:
            yielded = next(self._generator)
        except StopIteration:
            self.done = True
            return
        delay = yielded.delay if isinstance(yielded, Hold) else float(yielded)
        if delay < 0:
            raise ValueError(
                f"process {self.name!r} yielded a negative delay: {delay}"
            )
        self._sim.schedule_in(delay, self._resume, label=f"{self.name}:resume")
