"""The simulation engine: clock + event loop + periodic activities."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.simkernel.events import Event, EventQueue

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. scheduling into the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Time starts at ``start_time`` (default 0) and only moves forward.  All
    model components share one simulator and schedule work through it, which
    keeps global event ordering well-defined.

    With *telemetry* enabled the engine counts executed events, tracks the
    future-event-list depth as a gauge, and wraps each event's action in a
    per-label tracing span; without it the event loop runs the bare path.
    """

    def __init__(self, start_time: float = 0.0, *, telemetry: Any = None) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._events_executed = 0
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.set_sim_clock(lambda: self._now)
            self._tracer = telemetry.tracer
            self._t_events = telemetry.counter("sim.events_executed")
            self._t_queue_depth = telemetry.gauge("sim.queue_depth")
        else:
            self._tracer = None
            self._t_events = None
            self._t_queue_depth = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (for stats/tests)."""
        return self._events_executed

    def pending_events(self) -> int:
        """Number of live events in the future event list."""
        return len(self._queue)

    # -- scheduling -----------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule *action* to run at absolute *time* (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        return self._queue.push(time, action, priority=priority, label=label)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule *action* to run *delay* seconds from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(
            self._now + delay, action, priority=priority, label=label
        )

    def schedule_every(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        start: float | None = None,
        end: float | None = None,
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Run *action* every *interval* seconds.

        The first firing is at *start* (default: ``now + interval``); firings
        with time strictly greater than *end* are not scheduled.  The schedule
        self-perpetuates via the event queue, so cancelling requires draining
        the simulation or bounding with *end*.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be > 0, got {interval}")
        first = self._now + interval if start is None else start

        def fire_and_reschedule(when: float) -> None:
            action()
            nxt = when + interval
            if end is None or nxt <= end:
                self.schedule_at(
                    nxt,
                    lambda: fire_and_reschedule(nxt),
                    priority=priority,
                    label=label,
                )

        if end is None or first <= end:
            self.schedule_at(
                first, lambda: fire_and_reschedule(first), priority=priority, label=label
            )

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self._queue.cancel(event)

    # -- execution --------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns ``False`` when the queue is empty."""
        if self._queue.is_empty():
            return False
        event = self._queue.pop()
        self._now = event.time
        self._events_executed += 1
        if self._tracer is None:
            event.action()
        else:
            self._t_events.inc()
            self._t_queue_depth.set(len(self._queue))
            with self._tracer.span(f"sim.activity:{event.label or 'unlabelled'}"):
                event.action()
        return True

    def run_until(self, end_time: float) -> None:
        """Execute events with ``time <= end_time``; clock ends at *end_time*.

        Events scheduled exactly at *end_time* do run.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} precedes current time {self._now}"
            )
        self._running = True
        try:
            while self._running:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                self.step()
        finally:
            self._running = False
        self._now = max(self._now, end_time)

    def run(self) -> None:
        """Execute events until the queue drains."""
        self._running = True
        try:
            while self._running and self.step():
                pass
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the current ``run``/``run_until`` loop to exit."""
        self._running = False
