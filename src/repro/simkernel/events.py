"""The future event list: timestamped, priority-ordered callbacks."""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordering is ``(time, priority, seq)``: earlier times first, then lower
    priority values, then insertion order.  The sequence number makes the
    ordering total and the simulation deterministic.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A binary-heap future event list with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def is_empty(self) -> bool:
        """True when no live events remain."""
        return self._live == 0

    def push(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule *action* at *time*; returns the event for cancellation."""
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty event queue")
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
