"""Arc-length parametrised polyline paths.

Linear Movement State (LMS) nodes follow paths: road centre lines, corridor
routes inside buildings, and multi-region itineraries (paper §3.1 case 8-9:
direction changes at intersections and along hallways).  A :class:`Path`
supports constant-speed traversal by arc length, which is exactly what the
LMS mobility model needs.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterable, Sequence

from repro.geometry.vec import Vec2

__all__ = ["Path"]


class Path:
    """A polyline with arc-length lookup.

    Consecutive duplicate waypoints are collapsed; a path needs at least one
    point.  A single-point path has zero length and a constant position.
    """

    def __init__(self, waypoints: Iterable[Vec2]) -> None:
        points: list[Vec2] = []
        for wp in waypoints:
            if not points or not wp.is_close(points[-1]):
                points.append(wp)
        if not points:
            raise ValueError("a path needs at least one waypoint")
        self._points: list[Vec2] = points
        # Cumulative arc length at each waypoint; _cumlen[0] == 0.
        self._cumlen: list[float] = [0.0]
        for prev, cur in zip(points, points[1:]):
            self._cumlen.append(self._cumlen[-1] + prev.distance_to(cur))

    # -- basic queries ------------------------------------------------------
    @property
    def waypoints(self) -> Sequence[Vec2]:
        """The (deduplicated) waypoints defining the path."""
        return tuple(self._points)

    @property
    def length(self) -> float:
        """Total arc length in metres."""
        return self._cumlen[-1]

    @property
    def start(self) -> Vec2:
        """First waypoint."""
        return self._points[0]

    @property
    def end(self) -> Vec2:
        """Last waypoint."""
        return self._points[-1]

    def segment_count(self) -> int:
        """Number of line segments (waypoints minus one)."""
        return len(self._points) - 1

    # -- arc-length parametrisation ------------------------------------------
    def _locate(self, s: float) -> tuple[int, float]:
        """Return ``(segment_index, offset_into_segment)`` for arc length *s*.

        *s* is clamped into ``[0, length]``.
        """
        s = min(max(s, 0.0), self.length)
        # Find the segment whose cumulative start is <= s.
        i = bisect.bisect_right(self._cumlen, s) - 1
        i = min(i, len(self._points) - 2) if len(self._points) > 1 else 0
        return i, s - self._cumlen[i]

    def point_at(self, s: float) -> Vec2:
        """Position at arc length *s* from the start (clamped)."""
        points = self._points
        if len(points) == 1:
            return points[0]
        # Inlined _locate / distance_to / lerp with identical arithmetic:
        # every moving LMS node queries its path once per step.
        cumlen = self._cumlen
        s = min(max(s, 0.0), cumlen[-1])
        i = bisect.bisect_right(cumlen, s) - 1
        i = min(i, len(points) - 2)
        offset = s - cumlen[i]
        a = points[i]
        b = points[i + 1]
        seg_len = math.hypot(a.x - b.x, a.y - b.y)
        if seg_len == 0.0:
            return a
        t = offset / seg_len
        return Vec2(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)

    def direction_at(self, s: float) -> float:
        """Heading (radians) of the segment containing arc length *s*."""
        if len(self._points) == 1:
            return 0.0
        i, _ = self._locate(s)
        return (self._points[i + 1] - self._points[i]).angle()

    def remaining(self, s: float) -> float:
        """Arc length left after position *s* (never negative)."""
        return max(self.length - s, 0.0)

    # -- composition ----------------------------------------------------------
    def reversed(self) -> "Path":
        """The same polyline traversed end-to-start."""
        return Path(reversed(self._points))

    def concat(self, other: "Path") -> "Path":
        """This path followed by *other* (duplicated junction collapsed)."""
        return Path(list(self._points) + list(other._points))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Path(waypoints={len(self._points)}, length={self.length:.1f}m)"
