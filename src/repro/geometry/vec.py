"""2-D vectors and angle arithmetic."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Vec2", "normalize_angle", "angle_difference"]

_TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Wrap an angle into ``(-pi, pi]``."""
    theta = math.fmod(theta, _TWO_PI)
    if theta <= -math.pi:
        theta += _TWO_PI
    elif theta > math.pi:
        theta -= _TWO_PI
    return theta


def angle_difference(a: float, b: float) -> float:
    """Smallest signed rotation taking direction *b* to direction *a*.

    The result lies in ``(-pi, pi]``; its absolute value is the angular
    distance used by the mobility classifier and clusterer.
    """
    return normalize_angle(a - b)


@dataclass(frozen=True, slots=True)
class Vec2:
    """An immutable 2-D vector / point in metres."""

    x: float
    y: float

    # -- construction ------------------------------------------------------
    @staticmethod
    def zero() -> "Vec2":
        """The origin."""
        return Vec2(0.0, 0.0)

    @staticmethod
    def from_polar(magnitude: float, angle: float) -> "Vec2":
        """Build a vector of given *magnitude* pointing at *angle* radians."""
        return Vec2(magnitude * math.cos(angle), magnitude * math.sin(angle))

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    # -- metrics ------------------------------------------------------------
    def dot(self, other: "Vec2") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z-component of the 3-D cross product (signed area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_squared(self) -> float:
        """Squared Euclidean length (avoids the sqrt)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def angle(self) -> float:
        """Direction of this vector in radians, ``(-pi, pi]``.

        The zero vector has no direction; we return 0.0 by convention.
        """
        if self.x == 0.0 and self.y == 0.0:
            return 0.0
        return math.atan2(self.y, self.x)

    def unit(self) -> "Vec2":
        """This vector scaled to length one.

        Raises ``ZeroDivisionError`` style ``ValueError`` for the zero vector,
        which has no direction.
        """
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalise the zero vector")
        return Vec2(self.x / n, self.y / n)

    def rotated(self, theta: float) -> "Vec2":
        """This vector rotated counter-clockwise by *theta* radians."""
        c, s = math.cos(theta), math.sin(theta)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``self`` at ``t=0``, ``other`` at ``t=1``."""
        return Vec2(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def is_close(self, other: "Vec2", tol: float = 1e-9) -> bool:
        """Component-wise closeness within absolute tolerance *tol*."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __repr__(self) -> str:
        return f"Vec2({self.x:.3f}, {self.y:.3f})"
