"""Planar geometry primitives for the campus world and mobility models.

Coordinates are metres in a local east/north frame.  Directions are radians
in ``(-pi, pi]`` measured counter-clockwise from the +x axis.
"""

from repro.geometry.vec import Vec2, angle_difference, normalize_angle
from repro.geometry.shapes import Rect, Segment
from repro.geometry.path import Path

__all__ = [
    "Vec2",
    "angle_difference",
    "normalize_angle",
    "Rect",
    "Segment",
    "Path",
]
