"""Axis-aligned rectangles and line segments.

Campus regions (roads, buildings) are modelled as rectangles; road centre
lines and indoor corridors as segments and polylines (see
:mod:`repro.geometry.path`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import Vec2

__all__ = ["Rect", "Segment"]


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(
                f"degenerate rect: ({self.x_min}, {self.y_min}) .. "
                f"({self.x_max}, {self.y_max})"
            )

    @staticmethod
    def from_center(center: Vec2, width: float, height: float) -> "Rect":
        """Build a rect of given size centred on *center*."""
        hw, hh = width / 2.0, height / 2.0
        return Rect(center.x - hw, center.y - hh, center.x + hw, center.y + hh)

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """Width times height."""
        return self.width * self.height

    @property
    def center(self) -> Vec2:
        """The rectangle's centroid."""
        return Vec2((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains(self, point: Vec2, *, tol: float = 0.0) -> bool:
        """True when *point* lies inside (boundary inclusive, +/- *tol*)."""
        return (
            self.x_min - tol <= point.x <= self.x_max + tol
            and self.y_min - tol <= point.y <= self.y_max + tol
        )

    def clamp(self, point: Vec2) -> Vec2:
        """Nearest point of the rectangle to *point*."""
        return Vec2(
            min(max(point.x, self.x_min), self.x_max),
            min(max(point.y, self.y_min), self.y_max),
        )

    def random_point(self, rng: np.random.Generator) -> Vec2:
        """A uniformly distributed point inside the rectangle."""
        return Vec2(
            float(rng.uniform(self.x_min, self.x_max)),
            float(rng.uniform(self.y_min, self.y_max)),
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles overlap (boundary touch counts)."""
        return (
            self.x_min <= other.x_max
            and other.x_min <= self.x_max
            and self.y_min <= other.y_max
            and other.y_min <= self.y_max
        )

    def expanded(self, margin: float) -> "Rect":
        """This rectangle grown by *margin* on every side."""
        return Rect(
            self.x_min - margin,
            self.y_min - margin,
            self.x_max + margin,
            self.y_max + margin,
        )


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed line segment from *a* to *b*."""

    a: Vec2
    b: Vec2

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.distance_to(self.b)

    @property
    def direction(self) -> float:
        """Heading of the segment in radians (``a`` towards ``b``)."""
        return (self.b - self.a).angle()

    def point_at(self, s: float) -> Vec2:
        """Point at arc length *s* from ``a`` (clamped to the segment)."""
        total = self.length
        if total == 0.0:
            return self.a
        t = min(max(s / total, 0.0), 1.0)
        return self.a.lerp(self.b, t)

    def midpoint(self) -> Vec2:
        """The segment's midpoint."""
        return self.a.lerp(self.b, 0.5)

    def project(self, point: Vec2) -> tuple[float, Vec2]:
        """Closest point on the segment to *point*.

        Returns ``(arc_length, closest_point)`` where ``arc_length`` is the
        distance from ``a`` along the segment to the projection.
        """
        ab = self.b - self.a
        denom = ab.norm_squared()
        if denom == 0.0:
            return 0.0, self.a
        t = (point - self.a).dot(ab) / denom
        t = min(max(t, 0.0), 1.0)
        closest = self.a.lerp(self.b, t)
        return t * math.sqrt(denom), closest

    def distance_to_point(self, point: Vec2) -> float:
        """Shortest distance from *point* to the segment."""
        _, closest = self.project(point)
        return closest.distance_to(point)
