"""Reliable LU transport: a stop-and-wait-per-message ARQ wrapper.

The paper's LU path is fire-and-forget: an LU dropped by the channel (or a
downed gateway) is simply gone, and the broker extrapolates blind.  On a
volatile mobile-grid link layer that is the dominant error source, so this
module wraps any :class:`~repro.network.channel.WirelessChannel` with a
classic ARQ protocol:

* every message is acknowledged by seq (the previously dormant
  :class:`~repro.network.messages.Ack` type);
* an unacknowledged message is retransmitted after an exponentially
  backed-off timeout, up to a bounded retry budget;
* the receiver deduplicates by seq (a retransmit whose ack was lost must
  not double-deliver) and re-acks duplicates;
* everything is surfaced as counters — retransmits, duplicates, gave-ups —
  both on :class:`ReliableLinkStats` and through telemetry.

Each in-flight message is tracked independently (selective repeat, window
unbounded): LUs are idempotent state reports, so ordering guarantees are
left to the consumer and the protocol stays simple.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.network.channel import WirelessChannel
from repro.network.messages import Ack, Message, SequenceSource
from repro.simkernel import Simulator
from repro.telemetry import NULL_TELEMETRY

__all__ = ["ReliableLink", "ReliableLinkStats"]


@dataclass
class ReliableLinkStats:
    """Counters accumulated by a reliable link."""

    #: Distinct messages offered to :meth:`ReliableLink.send`.
    offered: int = 0
    #: Transmission attempts (first sends + retransmits).
    transmissions: int = 0
    #: Retransmissions only.
    retransmits: int = 0
    #: Distinct messages delivered to the sink (dedup'd).
    delivered: int = 0
    #: Arrivals suppressed as duplicates of an already-delivered seq.
    duplicates: int = 0
    #: Messages abandoned after the retry budget was exhausted.
    gave_up: int = 0
    #: Acks transmitted by the receiver side.
    acks_sent: int = 0
    #: Acks that reached the sender.
    acks_received: int = 0

    @property
    def delivery_rate(self) -> float:
        """Fraction of offered messages that were ultimately delivered."""
        return self.delivered / self.offered if self.offered else 0.0


class _Pending:
    """Sender-side state for one unacknowledged message."""

    __slots__ = ("message", "attempts", "timeout", "done")

    def __init__(self, message: Message) -> None:
        self.message = message
        self.attempts = 0
        self.timeout = 0.0
        self.done = False


class ReliableLink:
    """ARQ wrapper around a wireless channel.

    *channel* carries the data messages, *ack_channel* the acknowledgements
    (defaults to the data channel — a symmetric link; pass a separate
    channel to model asymmetric loss).  *sink* receives each distinct
    message exactly once.  *accept*, when given, gates arrivals at the
    receiver: a message arriving while ``accept(message)`` is false is
    discarded without an ack (modelling a downed gateway — the sender keeps
    retransmitting and short outages are ridden out by the retry budget).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: WirelessChannel,
        sink: Callable[[Message], None],
        *,
        ack_channel: WirelessChannel | None = None,
        accept: Callable[[Message], bool] | None = None,
        ack_timeout: float = 0.5,
        backoff_factor: float = 2.0,
        max_retries: int = 4,
        seq_source: SequenceSource | None = None,
        name: str = "arq",
        telemetry: Any = None,
        on_acked: Callable[[Message], None] | None = None,
        on_gave_up: Callable[[Message], None] | None = None,
    ) -> None:
        if ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be > 0, got {ack_timeout}")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {backoff_factor}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._sim = sim
        self._channel = channel
        self._ack_channel = ack_channel if ack_channel is not None else channel
        self._sink = sink
        self._accept = accept
        self._ack_timeout = ack_timeout
        self._backoff_factor = backoff_factor
        self._max_retries = max_retries
        self._ack_seq = seq_source if seq_source is not None else SequenceSource()
        #: Sender-side outcome hooks: *on_acked* fires when a message's
        #: ack arrives, *on_gave_up* when its retry budget is exhausted.
        #: Circuit breakers (serving's ReliableIngestClient) key off them.
        self._on_acked = on_acked
        self._on_gave_up = on_gave_up
        self.name = name
        self.stats = ReliableLinkStats()
        self._pending: dict[int, _Pending] = {}
        self._seen: set[int] = set()
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_retransmits = tm.counter("net.arq.retransmits", link=name)
        self._t_duplicates = tm.counter("net.arq.duplicates", link=name)
        self._t_gave_up = tm.counter("net.arq.gave_up", link=name)
        self._t_delivered = tm.counter("net.arq.delivered", link=name)

    # -- sender side ----------------------------------------------------------
    def send(self, message: Message) -> None:
        """Offer *message* for reliable delivery."""
        if message.seq in self._pending:
            raise ValueError(f"seq {message.seq} is already in flight")
        self.stats.offered += 1
        entry = _Pending(message)
        entry.timeout = self._ack_timeout
        self._pending[message.seq] = entry
        self._transmit(entry)

    def _transmit(self, entry: _Pending) -> None:
        self.stats.transmissions += 1
        entry.attempts += 1
        self._channel.send(entry.message, self._arrive)
        # The loss decision is the channel's; the sender cannot observe it,
        # so the timeout is armed unconditionally (as a real radio would).
        self._sim.schedule_in(
            entry.timeout,
            lambda: self._on_timeout(entry),
            label=f"{self.name}:timeout",
        )

    def _on_timeout(self, entry: _Pending) -> None:
        if entry.done:
            return
        if entry.attempts > self._max_retries:
            entry.done = True
            del self._pending[entry.message.seq]
            self.stats.gave_up += 1
            if self._instrumented:
                self._t_gave_up.inc()
            if self._on_gave_up is not None:
                self._on_gave_up(entry.message)
            return
        entry.timeout *= self._backoff_factor
        self.stats.retransmits += 1
        if self._instrumented:
            self._t_retransmits.inc()
        self._transmit(entry)

    def _on_ack(self, message: Message) -> None:
        if not isinstance(message, Ack):
            return
        self.stats.acks_received += 1
        entry = self._pending.pop(message.acked_seq, None)
        if entry is not None:
            entry.done = True
            if self._on_acked is not None:
                self._on_acked(entry.message)

    # -- receiver side --------------------------------------------------------
    def _arrive(self, message: Message) -> None:
        if self._accept is not None and not self._accept(message):
            return
        seq = message.seq
        if seq in self._seen:
            self.stats.duplicates += 1
            if self._instrumented:
                self._t_duplicates.inc()
        else:
            self._seen.add(seq)
            self.stats.delivered += 1
            if self._instrumented:
                self._t_delivered.inc()
            self._sink(message)
        # Ack every arrival, duplicate or not: a duplicate means the
        # previous ack was lost (or is still in flight).
        self.stats.acks_sent += 1
        ack = Ack(
            sender=self.name,
            timestamp=self._sim.now,
            seq=self._ack_seq.take(),
            acked_seq=seq,
        )
        self._ack_channel.send(ack, self._on_ack)

    # -- introspection --------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Messages sent but neither acked nor abandoned yet."""
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReliableLink({self.name}, in_flight={len(self._pending)}, "
            f"delivered={self.stats.delivered})"
        )
