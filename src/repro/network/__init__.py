"""The wireless side of the mobile grid.

MNs report location updates (LUs) to per-region wireless gateways (base
stations on roads, access points in buildings); gateways forward them over a
lossy, latency-bearing channel towards the ADF and broker.  Traffic meters
count every message, producing the per-second / accumulated / per-region
series of the paper's figures.
"""

from repro.network.messages import Ack, LocationUpdate, Message, SequenceSource
from repro.network.channel import ChannelStats, GilbertElliottLoss, WirelessChannel
from repro.network.gateway import WirelessGateway
from repro.network.association import AssociationManager, HandoffRecord
from repro.network.queueing import QueueingChannel, QueueingStats
from repro.network.reliable import ReliableLink, ReliableLinkStats
from repro.network.traffic import TrafficMeter

__all__ = [
    "Message",
    "LocationUpdate",
    "Ack",
    "SequenceSource",
    "WirelessChannel",
    "ChannelStats",
    "GilbertElliottLoss",
    "WirelessGateway",
    "AssociationManager",
    "HandoffRecord",
    "QueueingChannel",
    "QueueingStats",
    "ReliableLink",
    "ReliableLinkStats",
    "TrafficMeter",
]
