"""Message types exchanged between MNs, gateways, the ADF and the broker."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import ClassVar

from repro.geometry import Vec2

__all__ = ["Message", "LocationUpdate", "Ack", "SequenceSource"]

_sequence = itertools.count()


def _next_seq() -> int:
    return next(_sequence)


class SequenceSource:
    """A per-run message sequence counter.

    The process-global default sequence keeps ad-hoc ``Message`` construction
    cheap, but its values depend on everything else the process has built —
    a second experiment in the same process sees different seqs, and the
    sweep runner's process reuse makes them scheduling-dependent.  Run-scoped
    components (the harness, the churn and chaos studies, ReliableLink)
    thread one of these instead and pass ``seq=`` explicitly, so a given
    seed reproduces the exact same sequence numbers every time.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._next = start

    def take(self) -> int:
        """Issue the next sequence number."""
        value = self._next
        self._next = value + 1
        return value

    @property
    def issued(self) -> int:
        """How many sequence numbers have been issued so far."""
        return self._next

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SequenceSource(next={self._next})"


@dataclass(frozen=True, slots=True)
class Message:
    """Base wireless message.

    ``size_bytes`` feeds bandwidth accounting; ``seq`` is a process-wide
    monotone sequence used to detect reordering in tests.
    """

    sender: str
    timestamp: float
    # _sequence.__next__ directly: the factory runs per message, and the
    # wrapper function added a frame to every construction.
    seq: int = field(default_factory=_sequence.__next__)

    #: Approximate over-the-air size (headers only for the base class).
    #: A plain class attribute, not a property: bandwidth accounting reads
    #: it once per message per channel, and the size of these types is a
    #: constant.  Subclasses with variable payloads override it as a
    #: property (see DataTransfer).
    size_bytes: ClassVar[int] = 32


@dataclass(frozen=True, slots=True)
class LocationUpdate(Message):
    """An MN's location report.

    Carries the position fix plus the instantaneous velocity (speed and
    heading are what the ADF's classifier and clusterer consume) and the
    region the fix was taken in (for per-region accounting).
    """

    node_id: str = ""
    position: Vec2 = field(default_factory=Vec2.zero)
    velocity: Vec2 = field(default_factory=Vec2.zero)
    region_id: str = ""
    #: Distance threshold the filter applied when forwarding this LU (0 when
    #: unfiltered).  Silence after this LU implies the node stayed within
    #: ``dth`` of ``position`` — the broker's estimator exploits that bound.
    dth: float = 0.0
    #: Canonical serialized row this LU was decoded from (the
    #: ``repro-lu-trace`` array encoding), when it arrived from a recorded
    #: source.  Durability layers log these received bytes instead of
    #: re-serializing the update.  Excluded from equality/repr: a decoded
    #: update still compares equal to one rebuilt field by field.
    wire: bytes | None = field(default=None, compare=False, repr=False)

    # header + node id + 4 floats (position, velocity) + region tag
    size_bytes: ClassVar[int] = 32 + 16 + 4 * 8 + 8

    @property
    def speed(self) -> float:
        """Scalar speed carried by the update."""
        return self.velocity.norm()

    @property
    def direction(self) -> float:
        """Heading carried by the update (radians)."""
        return self.velocity.angle()


@dataclass(frozen=True, slots=True)
class Ack(Message):
    """Acknowledgement of a received message (by seq)."""

    acked_seq: int = -1

    size_bytes: ClassVar[int] = 32 + 8


@dataclass(frozen=True, slots=True)
class DataTransfer(Message):
    """A chunk of grid task data (input staging or output collection).

    Task data shares the constrained wireless links with location updates
    — which is why reducing LU traffic buys the grid real throughput (see
    the staging study).
    """

    task_id: int = -1
    payload_bytes: int = 0
    #: "input" (broker -> node) or "output" (node -> broker).
    direction: str = "input"

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be >= 0, got {self.payload_bytes}"
            )
        if self.direction not in ("input", "output"):
            raise ValueError(f"direction must be input/output, got {self.direction!r}")

    @property
    def size_bytes(self) -> int:
        return 32 + 16 + self.payload_bytes
