"""Traffic accounting: the measurement side of every figure in the paper.

A :class:`TrafficMeter` counts messages with their timestamps and region
tags, then answers the three questions the evaluation asks:

* LUs per second over time (Fig. 4);
* accumulated LUs over the run (Fig. 5);
* totals per region / per region *kind* (Fig. 6).
"""

from __future__ import annotations

from collections import Counter

from repro.util.timeseries import TimeSeries

__all__ = ["TrafficMeter"]


class TrafficMeter:
    """Counts timestamped, region-tagged message events."""

    def __init__(self, name: str = "traffic") -> None:
        self.name = name
        self._events: list[tuple[float, str]] = []
        self._per_region: Counter[str] = Counter()
        self._per_node: Counter[str] = Counter()
        self._bytes = 0

    def count(
        self,
        time: float,
        region_id: str,
        *,
        size_bytes: int = 0,
        node_id: str = "",
    ) -> None:
        """Record one message at *time* attributed to *region_id*.

        Passing *node_id* additionally maintains per-node totals, which the
        energy analysis uses to charge each device's battery for its own
        transmissions.
        """
        self._events.append((time, region_id))
        self._per_region[region_id] += 1
        if node_id:
            self._per_node[node_id] += 1
        self._bytes += size_bytes

    @property
    def total(self) -> int:
        """Total messages counted."""
        return len(self._events)

    @property
    def total_bytes(self) -> int:
        """Total bytes counted."""
        return self._bytes

    def per_region(self) -> dict[str, int]:
        """Message totals keyed by region id."""
        return dict(self._per_region)

    def per_node(self) -> dict[str, int]:
        """Message totals keyed by node id (only when counted with one)."""
        return dict(self._per_node)

    def node_total(self, node_id: str) -> int:
        """Messages attributed to one node."""
        return self._per_node.get(node_id, 0)

    def region_total(self, region_id: str) -> int:
        """Messages attributed to one region."""
        return self._per_region.get(region_id, 0)

    def total_for_regions(self, region_ids: list[str]) -> int:
        """Messages attributed to any region in *region_ids*."""
        return sum(self._per_region.get(r, 0) for r in region_ids)

    def per_second(self, duration: float, *, bin_width: float = 1.0) -> TimeSeries:
        """Message counts binned into fixed windows over ``[0, duration)``."""
        raw = TimeSeries()
        for time, _ in sorted(self._events, key=lambda e: e[0]):
            raw.append(time, 1.0)
        return raw.bin_sum(bin_width, duration)

    def accumulated(self, duration: float, *, bin_width: float = 1.0) -> TimeSeries:
        """Running total of messages, sampled once per bin (Fig. 5)."""
        return self.per_second(duration, bin_width=bin_width).cumulative()

    def mean_rate(self, duration: float) -> float:
        """Average messages per second over ``[0, duration)``."""
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        in_window = sum(1 for t, _ in self._events if 0 <= t < duration)
        return in_window / duration

    def __repr__(self) -> str:
        return f"TrafficMeter({self.name}, total={self.total})"
