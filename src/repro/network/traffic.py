"""Traffic accounting: the measurement side of every figure in the paper.

A :class:`TrafficMeter` counts messages with their timestamps and region
tags, then answers the three questions the evaluation asks:

* LUs per second over time (Fig. 4);
* accumulated LUs over the run (Fig. 5);
* totals per region / per region *kind* (Fig. 6).

Two retention modes exist.  The default (*exact*) keeps every event,
which is what tests want but grows without bound on long runs.  Passing
``bin_width`` switches to *binned* mode: events collapse into fixed-width
time-bin counters at :meth:`count` time, bounding memory at one integer
per bin regardless of traffic volume.  ``per_second`` then serves any
bin width that is an integer multiple of the retention width.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.util.timeseries import TimeSeries

__all__ = ["TrafficMeter"]


class TrafficMeter:
    """Counts timestamped, region-tagged message events."""

    def __init__(self, name: str = "traffic", *, bin_width: float | None = None) -> None:
        if bin_width is not None and bin_width <= 0:
            raise ValueError(f"bin_width must be > 0, got {bin_width}")
        self.name = name
        self._bin_width = bin_width
        self._events: list[tuple[float, str]] = []
        self._bins: Counter[int] = Counter()
        self._total = 0
        self._per_region: Counter[str] = Counter()
        self._per_node: Counter[str] = Counter()
        self._bytes = 0

    @property
    def bin_width(self) -> float | None:
        """Retention bin width (``None`` = exact per-event retention)."""
        return self._bin_width

    def count(
        self,
        time: float,
        region_id: str,
        *,
        size_bytes: int = 0,
        node_id: str = "",
    ) -> None:
        """Record one message at *time* attributed to *region_id*.

        Passing *node_id* additionally maintains per-node totals, which the
        energy analysis uses to charge each device's battery for its own
        transmissions.
        """
        width = self._bin_width
        if width is None:
            self._events.append((time, region_id))
        else:
            # Right-closed bins, matching TimeSeries.bin_sum: bin i covers
            # (i*w, (i+1)*w], with t = 0 joining bin 0.
            index = math.ceil(time / width) - 1
            self._bins[index if index > 0 else 0] += 1
        self._total += 1
        self._per_region[region_id] += 1
        if node_id:
            self._per_node[node_id] += 1
        self._bytes += size_bytes

    def add_counts(
        self,
        *,
        messages: int,
        total_bytes: int = 0,
        per_region: dict[str, int] | None = None,
        per_node: dict[str, int] | None = None,
        bins: dict[int, int] | None = None,
        events: list[tuple[float, str]] | None = None,
    ) -> None:
        """Merge pre-aggregated counts into the meter.

        The columnar engine accumulates whole-population traffic in arrays
        and folds the totals in once at collection time; *bins* applies in
        binned retention mode (keyed by bin index), *events* in exact mode.
        """
        if messages < 0 or total_bytes < 0:
            raise ValueError("counts must be >= 0")
        self._total += messages
        self._bytes += total_bytes
        if per_region:
            self._per_region.update(per_region)
        if per_node:
            self._per_node.update(per_node)
        if self._bin_width is None:
            if events:
                self._events.extend(events)
        elif bins:
            self._bins.update(bins)

    @property
    def total(self) -> int:
        """Total messages counted."""
        return self._total

    @property
    def total_bytes(self) -> int:
        """Total bytes counted."""
        return self._bytes

    def per_region(self) -> dict[str, int]:
        """Message totals keyed by region id."""
        return dict(self._per_region)

    def per_node(self) -> dict[str, int]:
        """Message totals keyed by node id (only when counted with one)."""
        return dict(self._per_node)

    def node_total(self, node_id: str) -> int:
        """Messages attributed to one node."""
        return self._per_node.get(node_id, 0)

    def region_total(self, region_id: str) -> int:
        """Messages attributed to one region."""
        return self._per_region.get(region_id, 0)

    def total_for_regions(self, region_ids: list[str]) -> int:
        """Messages attributed to any region in *region_ids*."""
        return sum(self._per_region.get(r, 0) for r in region_ids)

    def per_second(self, duration: float, *, bin_width: float = 1.0) -> TimeSeries:
        """Message counts binned into fixed windows over ``[0, duration)``.

        In binned retention mode the requested *bin_width* must be an
        integer multiple of the retention width (events inside a retention
        bin are indistinguishable, so no finer resolution exists).
        """
        if self._bin_width is None:
            raw = TimeSeries()
            for time, _ in sorted(self._events, key=lambda e: e[0]):
                raw.append(time, 1.0)
            return raw.bin_sum(bin_width, duration)
        ratio = bin_width / self._bin_width
        k = round(ratio)
        if k < 1 or abs(ratio - k) > 1e-9:
            raise ValueError(
                f"bin_width {bin_width} is not an integer multiple of the "
                f"retention bin width {self._bin_width}"
            )
        n_bins = math.ceil(duration / bin_width)
        n_base = math.ceil(duration / self._bin_width)
        sums = [0.0] * n_bins
        for index, count in self._bins.items():
            if index >= n_base:
                continue
            big = index // k
            if big < n_bins:
                sums[big] += count
        out = TimeSeries()
        for i in range(n_bins):
            out.append(i * bin_width, sums[i])
        return out

    def accumulated(self, duration: float, *, bin_width: float = 1.0) -> TimeSeries:
        """Running total of messages, sampled once per bin (Fig. 5)."""
        return self.per_second(duration, bin_width=bin_width).cumulative()

    def mean_rate(self, duration: float) -> float:
        """Average messages per second over ``[0, duration)``.

        In binned mode the window edge is resolved at retention-bin
        granularity: every bin starting before *duration* counts in full.
        """
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        if self._bin_width is None:
            in_window = sum(1 for t, _ in self._events if 0 <= t < duration)
        else:
            in_window = sum(
                count
                for index, count in self._bins.items()
                if index * self._bin_width < duration
            )
        return in_window / duration

    def __repr__(self) -> str:
        return f"TrafficMeter({self.name}, total={self.total})"
