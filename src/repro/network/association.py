"""MN-to-gateway association and handoff tracking.

The paper's architecture has MNs "connected by a wireless gateway, like a
base station or AP".  When a node crosses a region boundary it must
re-associate with the new region's gateway — signalling traffic that
exists *regardless* of location-update filtering.  The
:class:`AssociationManager` tracks which gateway serves each node, counts
handoffs, and (optionally) charges a registration message per handoff so
experiments can report total signalling, not just LUs.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from types import MappingProxyType

from repro.network.gateway import WirelessGateway
from repro.network.messages import LocationUpdate
from repro.util.timeseries import TimeSeries

__all__ = ["HandoffRecord", "AssociationManager"]


@dataclass(frozen=True, slots=True)
class HandoffRecord:
    """One gateway change for one node."""

    node_id: str
    time: float
    from_region: str | None
    to_region: str


@dataclass
class AssociationStats:
    """Aggregate association statistics."""

    associations: int = 0
    handoffs: int = 0
    registration_messages: int = 0


class AssociationManager:
    """Tracks the serving gateway of every node."""

    def __init__(
        self,
        gateways: dict[str, WirelessGateway],
        *,
        registration_cost_messages: int = 2,
    ) -> None:
        if registration_cost_messages < 0:
            raise ValueError("registration_cost_messages must be >= 0")
        self._gateways = dict(gateways)
        self._serving: dict[str, str] = {}
        self._handoffs: list[HandoffRecord] = []
        self._registration_cost = registration_cost_messages
        self.stats = AssociationStats()

    # -- association ----------------------------------------------------------
    def serving_region(self, node_id: str) -> str | None:
        """Region id of the gateway currently serving *node_id*."""
        return self._serving.get(node_id)

    @property
    def serving_view(self) -> Mapping[str, str]:
        """Read-only live view of node id -> serving region.

        For hot loops that probe the serving map per node per step (the
        harness checks it before paying an ``observe`` call): a mapping
        proxy costs one attribute read up front and nothing per lookup,
        without handing mutable internals across the module boundary.
        """
        return MappingProxyType(self._serving)

    def serving_gateway(self, node_id: str) -> WirelessGateway | None:
        """The gateway object currently serving *node_id*."""
        region = self._serving.get(node_id)
        return self._gateways.get(region) if region else None

    def observe(self, update: LocationUpdate) -> WirelessGateway:
        """Route an LU: (re)associate if needed, then return the gateway.

        Association changes are recorded as handoffs with their
        registration-message cost.
        """
        region = update.region_id
        gateway = self._gateways.get(region)
        if gateway is None:
            raise KeyError(f"no gateway for region {update.region_id!r}")
        previous = self._serving.get(update.node_id)
        if previous != region:
            self._serving[update.node_id] = region
            if previous is None:
                self.stats.associations += 1
            else:
                self.stats.handoffs += 1
                self.stats.registration_messages += self._registration_cost
            self._handoffs.append(
                HandoffRecord(
                    node_id=update.node_id,
                    time=update.timestamp,
                    from_region=previous,
                    to_region=region,
                )
            )
        return gateway

    # -- reporting -----------------------------------------------------------
    def handoff_history(self, node_id: str | None = None) -> list[HandoffRecord]:
        """All handoff records, optionally filtered to one node."""
        if node_id is None:
            return list(self._handoffs)
        return [h for h in self._handoffs if h.node_id == node_id]

    def handoffs_per_second(self, duration: float) -> TimeSeries:
        """Handoff rate over time (initial associations excluded)."""
        raw = TimeSeries()
        events = sorted(
            (h.time for h in self._handoffs if h.from_region is not None)
        )
        for t in events:
            raw.append(t, 1.0)
        return raw.bin_sum(1.0, duration)

    def nodes_served_by(self, region_id: str) -> list[str]:
        """Node ids currently associated with *region_id*'s gateway."""
        return [n for n, r in self._serving.items() if r == region_id]
