"""A lossy wireless channel with configurable latency.

Delivery is scheduled on the shared simulator: each message experiences an
exponentially-jittered latency and an independent drop probability.  With
the defaults (zero latency, zero loss) the channel is transparent, which is
what the paper's LU-counting experiments assume; the loss/latency knobs
exist for the failure-injection tests and robustness ablations.

Loss comes in two flavours: independent (Bernoulli per message, the
``loss_probability`` knob) and bursty (:class:`GilbertElliottLoss`, a
two-state Markov model whose "bad" state clusters drops the way real
wireless fades do).  Parameters are mutable mid-run via :meth:`configure` /
:meth:`degrade` / :meth:`restore`; every change recomputes the transparent
fast-path flag and notifies registered listeners (gateways cache a fused
fast-path flag derived from channel state — see
``WirelessGateway._refresh_fused``), so injected faults can never be
bypassed by a stale fast path.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.network.messages import Message
from repro.simkernel import Simulator
from repro.telemetry import NULL_TELEMETRY

__all__ = ["ChannelStats", "GilbertElliottLoss", "WirelessChannel"]


@dataclass
class ChannelStats:
    """Counters accumulated by a channel."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of sent messages that were dropped."""
        return self.dropped / self.sent if self.sent else 0.0


@dataclass(frozen=True)
class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) burst-loss parameters.

    The channel is either in a *good* or a *bad* state; each transmission
    first draws a state transition, then drops with the state's loss
    probability.  Mean sojourn in the bad state is ``1 / p_bad_good``
    transmissions, so small ``p_bad_good`` makes long loss bursts — the
    regime where plain Bernoulli loss understates the damage to an LU
    stream and where ARQ earns its keep.
    """

    p_good_bad: float = 0.05
    p_bad_good: float = 0.5
    loss_good: float = 0.0
    loss_bad: float = 0.8

    def __post_init__(self) -> None:
        for name in ("p_good_bad", "p_bad_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def steady_state_loss(self) -> float:
        """Long-run expected loss rate of the model."""
        denominator = self.p_good_bad + self.p_bad_good
        if denominator <= 0.0:
            return self.loss_good
        p_bad = self.p_good_bad / denominator
        return (1.0 - p_bad) * self.loss_good + p_bad * self.loss_bad


class WirelessChannel:
    """Point-to-point message transport with latency and loss."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        *,
        base_latency: float = 0.0,
        latency_jitter: float = 0.0,
        loss_probability: float = 0.0,
        burst_loss: GilbertElliottLoss | None = None,
        name: str = "channel",
        telemetry: Any = None,
    ) -> None:
        self._sim = sim
        self._rng = rng
        self._validate(base_latency, latency_jitter, loss_probability)
        self._base_latency = base_latency
        self._latency_jitter = latency_jitter
        self._loss_probability = loss_probability
        self._burst = burst_loss
        self._burst_bad = False
        self._transparent = base_latency <= 0 and latency_jitter <= 0
        self._listeners: list[Callable[[], None]] = []
        self._saved_params: tuple[float, float, float, GilbertElliottLoss | None] | None = None
        self.name = name
        self.stats = ChannelStats()
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_sent = tm.counter("net.channel.sent", channel=name)
        self._t_delivered = tm.counter("net.channel.delivered", channel=name)
        self._t_dropped = tm.counter("net.channel.dropped", channel=name)
        self._t_latency = tm.histogram("net.channel.delivery_latency")

    @staticmethod
    def _validate(
        base_latency: float, latency_jitter: float, loss_probability: float
    ) -> None:
        if base_latency < 0:
            raise ValueError(f"base_latency must be >= 0, got {base_latency}")
        if latency_jitter < 0:
            raise ValueError(f"latency_jitter must be >= 0, got {latency_jitter}")
        if not (0.0 <= loss_probability <= 1.0):
            raise ValueError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )

    # -- mutable parameters ---------------------------------------------------
    @property
    def base_latency(self) -> float:
        """Fixed delivery latency in seconds."""
        return self._base_latency

    @property
    def latency_jitter(self) -> float:
        """Mean of the exponential jitter added to the base latency."""
        return self._latency_jitter

    @property
    def loss_probability(self) -> float:
        """Independent (Bernoulli) per-message drop probability."""
        return self._loss_probability

    @property
    def burst_loss(self) -> GilbertElliottLoss | None:
        """The Gilbert–Elliott burst-loss parameters, if bursty loss is on."""
        return self._burst

    @property
    def degraded(self) -> bool:
        """True while :meth:`degrade` parameters are in force."""
        return self._saved_params is not None

    def configure(
        self,
        *,
        base_latency: float | None = None,
        latency_jitter: float | None = None,
        loss_probability: float | None = None,
        burst_loss: GilbertElliottLoss | None | bool = False,
    ) -> None:
        """Change channel parameters mid-run.

        Only the named parameters change; ``burst_loss`` uses ``False`` as
        the "leave alone" sentinel so it can be explicitly cleared with
        ``None``.  Recomputes the transparent fast-path flag and notifies
        listeners (gateways) so cached fused-path flags follow suit.
        """
        new_latency = self._base_latency if base_latency is None else base_latency
        new_jitter = self._latency_jitter if latency_jitter is None else latency_jitter
        new_loss = (
            self._loss_probability if loss_probability is None else loss_probability
        )
        self._validate(new_latency, new_jitter, new_loss)
        if burst_loss is not False:
            if burst_loss is not None and not isinstance(
                burst_loss, GilbertElliottLoss
            ):
                raise TypeError(
                    f"burst_loss must be GilbertElliottLoss or None, "
                    f"got {type(burst_loss).__name__}"
                )
            self._burst = burst_loss
            if burst_loss is None:
                self._burst_bad = False
        self._base_latency = new_latency
        self._latency_jitter = new_jitter
        self._loss_probability = new_loss
        self._transparent = new_latency <= 0 and new_jitter <= 0
        for listener in self._listeners:
            listener()

    def degrade(
        self,
        *,
        base_latency: float | None = None,
        latency_jitter: float | None = None,
        loss_probability: float | None = None,
        burst_loss: GilbertElliottLoss | None | bool = False,
    ) -> None:
        """Apply a degradation window; :meth:`restore` reverts it.

        The pre-degradation parameters are saved on the first call; nested
        degradations keep the original save point, so a single restore
        returns to the healthy configuration.
        """
        if self._saved_params is None:
            self._saved_params = (
                self._base_latency,
                self._latency_jitter,
                self._loss_probability,
                self._burst,
            )
        self.configure(
            base_latency=base_latency,
            latency_jitter=latency_jitter,
            loss_probability=loss_probability,
            burst_loss=burst_loss,
        )

    def restore(self) -> None:
        """Revert to the parameters saved by the first :meth:`degrade`."""
        if self._saved_params is None:
            return
        latency, jitter, loss, burst = self._saved_params
        self._saved_params = None
        self.configure(
            base_latency=latency,
            latency_jitter=jitter,
            loss_probability=loss,
            burst_loss=burst,
        )

    def add_reconfigure_listener(self, listener: Callable[[], None]) -> None:
        """Call *listener* after every parameter change (flag recompute)."""
        self._listeners.append(listener)

    # -- transmission ---------------------------------------------------------
    def latency_sample(self) -> float:
        """One latency draw: base + exponential jitter."""
        jitter = 0.0
        if self._latency_jitter > 0:
            jitter = float(self._rng.exponential(self._latency_jitter))
        return self._base_latency + jitter

    def _drop_draw(self) -> bool:
        """One loss decision; advances the burst state machine if bursty."""
        burst = self._burst
        if burst is not None:
            if self._burst_bad:
                if burst.p_bad_good > 0 and self._rng.random() < burst.p_bad_good:
                    self._burst_bad = False
            elif burst.p_good_bad > 0 and self._rng.random() < burst.p_good_bad:
                self._burst_bad = True
            loss = burst.loss_bad if self._burst_bad else burst.loss_good
            if loss > 0 and self._rng.random() < loss:
                return True
        if self._loss_probability > 0:
            return bool(self._rng.random() < self._loss_probability)
        return False

    def send(self, message: Message, deliver: Callable[[Message], None]) -> bool:
        """Transmit *message*; *deliver* runs after the latency unless dropped.

        Returns ``True`` when the message was accepted for delivery (it may
        still be in flight), ``False`` when it was dropped.
        """
        instrumented = self._instrumented
        stats = self.stats
        stats.sent += 1
        stats.bytes_sent += message.size_bytes
        if instrumented:
            self._t_sent.inc()
        if (self._burst is not None or self._loss_probability > 0) and self._drop_draw():
            stats.dropped += 1
            if instrumented:
                self._t_dropped.inc()
            return False
        if self._transparent:
            # Transparent-channel fast path (the paper's default): no rng
            # draw, no closure, no event — deliver synchronously.
            stats.delivered += 1
            if instrumented:
                self._t_delivered.inc()
                self._t_latency.observe(0.0)
            deliver(message)
            return True
        latency = self.latency_sample()

        def arrive() -> None:
            stats.delivered += 1
            if instrumented:
                self._t_delivered.inc()
                self._t_latency.observe(latency)
            deliver(message)

        if latency <= 0:
            arrive()
        else:
            self._sim.schedule_in(latency, arrive, label=f"{self.name}:deliver")
        return True
