"""A lossy wireless channel with configurable latency.

Delivery is scheduled on the shared simulator: each message experiences an
exponentially-jittered latency and an independent drop probability.  With
the defaults (zero latency, zero loss) the channel is transparent, which is
what the paper's LU-counting experiments assume; the loss/latency knobs
exist for the failure-injection tests and robustness ablations.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.network.messages import Message
from repro.simkernel import Simulator
from repro.telemetry import NULL_TELEMETRY

__all__ = ["ChannelStats", "WirelessChannel"]


@dataclass
class ChannelStats:
    """Counters accumulated by a channel."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of sent messages that were dropped."""
        return self.dropped / self.sent if self.sent else 0.0


class WirelessChannel:
    """Point-to-point message transport with latency and loss."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        *,
        base_latency: float = 0.0,
        latency_jitter: float = 0.0,
        loss_probability: float = 0.0,
        name: str = "channel",
        telemetry: Any = None,
    ) -> None:
        if base_latency < 0:
            raise ValueError(f"base_latency must be >= 0, got {base_latency}")
        if latency_jitter < 0:
            raise ValueError(f"latency_jitter must be >= 0, got {latency_jitter}")
        if not (0.0 <= loss_probability <= 1.0):
            raise ValueError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        self._sim = sim
        self._rng = rng
        self._base_latency = base_latency
        self._latency_jitter = latency_jitter
        self._loss_probability = loss_probability
        self._transparent = base_latency <= 0 and latency_jitter <= 0
        self.name = name
        self.stats = ChannelStats()
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_sent = tm.counter("net.channel.sent", channel=name)
        self._t_delivered = tm.counter("net.channel.delivered", channel=name)
        self._t_dropped = tm.counter("net.channel.dropped", channel=name)
        self._t_latency = tm.histogram("net.channel.delivery_latency")

    def latency_sample(self) -> float:
        """One latency draw: base + exponential jitter."""
        jitter = 0.0
        if self._latency_jitter > 0:
            jitter = float(self._rng.exponential(self._latency_jitter))
        return self._base_latency + jitter

    def send(self, message: Message, deliver: Callable[[Message], None]) -> bool:
        """Transmit *message*; *deliver* runs after the latency unless dropped.

        Returns ``True`` when the message was accepted for delivery (it may
        still be in flight), ``False`` when it was dropped.
        """
        instrumented = self._instrumented
        stats = self.stats
        stats.sent += 1
        stats.bytes_sent += message.size_bytes
        if instrumented:
            self._t_sent.inc()
        if self._loss_probability > 0 and self._rng.random() < self._loss_probability:
            stats.dropped += 1
            if instrumented:
                self._t_dropped.inc()
            return False
        if self._transparent:
            # Transparent-channel fast path (the paper's default): no rng
            # draw, no closure, no event — deliver synchronously.
            stats.delivered += 1
            if instrumented:
                self._t_delivered.inc()
                self._t_latency.observe(0.0)
            deliver(message)
            return True
        latency = self.latency_sample()

        def arrive() -> None:
            stats.delivered += 1
            if instrumented:
                self._t_delivered.inc()
                self._t_latency.observe(latency)
            deliver(message)

        if latency <= 0:
            arrive()
        else:
            self._sim.schedule_in(latency, arrive, label=f"{self.name}:deliver")
        return True
