"""Wireless gateways: base stations (roads) and access points (buildings).

Per the paper's architecture (§3.4), MNs transmit their location to the
wireless gateway covering their region; the gateway collects incoming LUs
and forwards them to the ADF.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.campus import Region
from repro.network.channel import WirelessChannel
from repro.network.messages import LocationUpdate
from repro.telemetry import NULL_TELEMETRY, Severity

__all__ = ["WirelessGateway"]


class WirelessGateway:
    """One gateway per campus region.

    The gateway's *uplink* delivers LUs to a sink (normally the ADF).  An
    operational flag supports failure injection: a downed gateway silently
    discards traffic, as a real dead AP would.
    """

    def __init__(
        self,
        region: Region,
        uplink: WirelessChannel,
        sink: Callable[[LocationUpdate], None],
        *,
        telemetry: Any = None,
    ) -> None:
        self.region = region
        self._uplink = uplink
        self._sink = sink
        self.operational = True
        self.received = 0
        self.forwarded = 0
        self.discarded = 0
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._telemetry = tm
        self._instrumented = tm.enabled
        # The uplink name carries the lane (e.g. "adf-1/R3"), so labelling
        # by it keeps per-lane resolution where region alone would collapse
        # all lanes' gateways for one region into a single counter.
        labels = {"region": region.region_id, "uplink": uplink.name}
        self._t_received = tm.counter("net.gateway.received", **labels)
        self._t_forwarded = tm.counter("net.gateway.forwarded", **labels)
        self._t_discarded = tm.counter("net.gateway.discarded", **labels)
        # Transparent lossless uninstrumented uplinks (the paper's default
        # channel) always accept and deliver synchronously; receive() can
        # then fold the channel's send() bookkeeping into its own frame.
        # The flag is derived from *mutable* channel state, so the channel
        # re-invokes _refresh_fused after every parameter change — a fault
        # injector raising loss mid-run must defeat the fused path too.
        self._fused_uplink = False
        self._refresh_fused()
        uplink.add_reconfigure_listener(self._refresh_fused)

    def _refresh_fused(self) -> None:
        """Recompute the fused fast-path flag from current uplink state."""
        uplink = self._uplink
        self._fused_uplink = (
            not self._instrumented
            and not uplink._instrumented
            and uplink._transparent
            and uplink._loss_probability <= 0
            and uplink._burst is None
        )

    @property
    def gateway_id(self) -> str:
        """Id of the gateway: ``gw.<region>``."""
        return f"gw.{self.region.region_id}"

    @property
    def uplink(self) -> WirelessChannel:
        """The channel this gateway forwards over (fault injection hooks)."""
        return self._uplink

    def covers(self, update: LocationUpdate) -> bool:
        """True when the update's fix lies inside this gateway's region."""
        return self.region.contains(update.position, tol=1e-6)

    def receive(self, update: LocationUpdate) -> None:
        """Accept an LU from an MN and forward it upstream."""
        if self._fused_uplink and self.operational:
            # Fused fast path: same counters the channel's send() would
            # bump (sent/bytes_sent/delivered), same synchronous delivery.
            self.received += 1
            stats = self._uplink.stats
            stats.sent += 1
            stats.bytes_sent += update.size_bytes
            stats.delivered += 1
            self.forwarded += 1
            self._sink(update)
            return
        instrumented = self._instrumented
        self.received += 1
        if instrumented:
            self._t_received.inc()
        if not self.operational:
            self.discarded += 1
            if instrumented:
                self._t_discarded.inc()
            return
        accepted = self._uplink.send(update, self._sink)
        if accepted:
            self.forwarded += 1
            if instrumented:
                self._t_forwarded.inc()
        else:
            self.discarded += 1
            if instrumented:
                self._t_discarded.inc()

    def fail(self) -> None:
        """Take the gateway down (failure injection)."""
        self.operational = False
        self._telemetry.event(
            Severity.WARNING,
            "gateway down",
            source=self.gateway_id,
            region=self.region.region_id,
        )

    def restore(self) -> None:
        """Bring the gateway back up."""
        self.operational = True
        self._telemetry.event(
            Severity.INFO,
            "gateway restored",
            source=self.gateway_id,
            region=self.region.region_id,
        )

    def __repr__(self) -> str:
        state = "up" if self.operational else "down"
        return f"WirelessGateway({self.gateway_id}, {state})"
