"""Wireless gateways: base stations (roads) and access points (buildings).

Per the paper's architecture (§3.4), MNs transmit their location to the
wireless gateway covering their region; the gateway collects incoming LUs
and forwards them to the ADF.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.campus import Region
from repro.network.channel import WirelessChannel
from repro.network.messages import LocationUpdate, Message

__all__ = ["WirelessGateway"]


class WirelessGateway:
    """One gateway per campus region.

    The gateway's *uplink* delivers LUs to a sink (normally the ADF).  An
    operational flag supports failure injection: a downed gateway silently
    discards traffic, as a real dead AP would.
    """

    def __init__(
        self,
        region: Region,
        uplink: WirelessChannel,
        sink: Callable[[LocationUpdate], None],
    ) -> None:
        self.region = region
        self._uplink = uplink
        self._sink = sink
        self.operational = True
        self.received = 0
        self.forwarded = 0
        self.discarded = 0

    @property
    def gateway_id(self) -> str:
        """Id of the gateway: ``gw.<region>``."""
        return f"gw.{self.region.region_id}"

    def covers(self, update: LocationUpdate) -> bool:
        """True when the update's fix lies inside this gateway's region."""
        return self.region.contains(update.position, tol=1e-6)

    def receive(self, update: LocationUpdate) -> None:
        """Accept an LU from an MN and forward it upstream."""
        self.received += 1
        if not self.operational:
            self.discarded += 1
            return
        accepted = self._uplink.send(update, self._deliver)
        if accepted:
            self.forwarded += 1
        else:
            self.discarded += 1

    def _deliver(self, message: Message) -> None:
        assert isinstance(message, LocationUpdate)
        self._sink(message)

    def fail(self) -> None:
        """Take the gateway down (failure injection)."""
        self.operational = False

    def restore(self) -> None:
        """Bring the gateway back up."""
        self.operational = True

    def __repr__(self) -> str:
        state = "up" if self.operational else "down"
        return f"WirelessGateway({self.gateway_id}, {state})"
