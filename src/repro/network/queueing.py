"""A bandwidth-limited uplink: FIFO queueing over a finite service rate.

The paper's core motivation: LU traffic "increases the system load of the
mobile grid in a limited bandwidth environment".  The plain
:class:`~repro.network.channel.WirelessChannel` models latency and loss
but infinite capacity; this module adds the missing piece — a serial
uplink that transmits one message at a time at ``bandwidth_bps``, queueing
arrivals FIFO up to ``queue_limit`` and dropping beyond it.

Under offered load above capacity the queue grows and per-message delay
explodes; cutting the offered load (what the ADF does) is then visible
directly as delay, not just message counts.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.network.messages import Message
from repro.simkernel import Simulator
from repro.telemetry import NULL_TELEMETRY
from repro.util.validation import check_positive

__all__ = ["QueueingStats", "QueueingChannel"]


@dataclass
class QueueingStats:
    """Counters and delay series of a queueing channel."""

    accepted: int = 0
    delivered: int = 0
    dropped_queue_full: int = 0
    total_delay: float = 0.0
    max_delay: float = 0.0
    delays: list[float] = field(default_factory=list)

    @property
    def mean_delay(self) -> float:
        """Average queueing + transmission delay of delivered messages."""
        return self.total_delay / self.delivered if self.delivered else 0.0

    @property
    def drop_rate(self) -> float:
        """Fraction of offered messages dropped for a full queue."""
        offered = self.accepted + self.dropped_queue_full
        return self.dropped_queue_full / offered if offered else 0.0


@dataclass
class _Pending:
    message: Message
    deliver: Callable[[Message], None]
    enqueued_at: float


class QueueingChannel:
    """A serial FIFO uplink with finite bandwidth.

    Service time per message is ``size_bytes * 8 / bandwidth_bps``.  The
    channel is work-conserving: it transmits whenever the queue is
    non-empty.  Delivery callbacks run at transmission-complete time on
    the shared simulator.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        bandwidth_bps: float,
        queue_limit: int = 256,
        name: str = "uplink",
        telemetry: Any = None,
    ) -> None:
        check_positive(bandwidth_bps, "bandwidth_bps")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self._sim = sim
        self._bandwidth = bandwidth_bps
        self._queue_limit = queue_limit
        self._queue: deque[_Pending] = deque()
        self._busy = False
        self.name = name
        self.stats = QueueingStats()
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_accepted = tm.counter("net.queue.accepted", queue=name)
        self._t_delivered = tm.counter("net.queue.delivered", queue=name)
        self._t_dropped = tm.counter("net.queue.dropped_full", queue=name)
        self._t_depth = tm.gauge("net.queue.depth", queue=name)
        self._t_delay = tm.histogram("net.queue.delay")

    @property
    def queue_length(self) -> int:
        """Messages currently waiting (excluding the one in service)."""
        return len(self._queue)

    def service_time(self, message: Message) -> float:
        """Seconds the link needs to transmit *message*."""
        return message.size_bytes * 8.0 / self._bandwidth

    def send(self, message: Message, deliver: Callable[[Message], None]) -> bool:
        """Offer a message; returns False when the queue is full."""
        instrumented = self._instrumented
        if len(self._queue) >= self._queue_limit:
            self.stats.dropped_queue_full += 1
            if instrumented:
                self._t_dropped.inc()
            return False
        self.stats.accepted += 1
        self._queue.append(_Pending(message, deliver, self._sim.now))
        if instrumented:
            self._t_accepted.inc()
            self._t_depth.set(len(self._queue))
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        pending = self._queue.popleft()
        if self._instrumented:
            self._t_depth.set(len(self._queue))
        duration = self.service_time(pending.message)

        def complete() -> None:
            delay = self._sim.now - pending.enqueued_at
            self.stats.delivered += 1
            self.stats.total_delay += delay
            self.stats.max_delay = max(self.stats.max_delay, delay)
            self.stats.delays.append(delay)
            if self._instrumented:
                self._t_delivered.inc()
                self._t_delay.observe(delay)
            pending.deliver(pending.message)
            self._start_next()

        self._sim.schedule_in(duration, complete, label=f"{self.name}:tx")
