"""repro — Adaptive Distance Filter-based Traffic Reduction for Mobile Grid.

A from-scratch reproduction of Kim, Jang & Lee (ICDCS Workshops 2007).  The
package builds the full stack the paper's evaluation depends on: a campus
world model, SS/RMS/LMS mobility, a wireless gateway/channel substrate, a
simplified HLA run-time infrastructure, the Adaptive Distance Filter itself
(mobility classification, sequential clustering, per-cluster distance
thresholds), and a grid broker with Brown's double-exponential-smoothing
location estimation.

Quickstart::

    from repro import ExperimentConfig, run_experiment, render_report

    result = run_experiment(ExperimentConfig(duration=300.0))
    print(render_report(result))
"""

from repro.core import (
    AdaptiveDistanceFilter,
    AdfConfig,
    ClassifierConfig,
    DistanceFilter,
    FilterDecision,
    GeneralDistanceFilterPolicy,
    IdealLUPolicy,
    MobilityClassifier,
    MotionFeature,
    SequentialClusterer,
)
from repro.broker import BrokerConfig, GridBroker, GridScheduler, ResourceRegistry
from repro.campus import Campus, default_campus
from repro.estimation import BrownTracker, LastKnownTracker, rmse
from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    MobileGridExperiment,
    render_report,
    run_experiment,
)
from repro.geometry import Vec2
from repro.mobility import MobileNode, build_population, table1_spec, tom_itinerary
from repro.telemetry import Telemetry, TelemetryConfig

__version__ = "1.0.0"

__all__ = [
    "AdaptiveDistanceFilter",
    "AdfConfig",
    "ClassifierConfig",
    "MobilityClassifier",
    "MotionFeature",
    "SequentialClusterer",
    "DistanceFilter",
    "FilterDecision",
    "IdealLUPolicy",
    "GeneralDistanceFilterPolicy",
    "GridBroker",
    "BrokerConfig",
    "GridScheduler",
    "ResourceRegistry",
    "Campus",
    "default_campus",
    "BrownTracker",
    "LastKnownTracker",
    "rmse",
    "ExperimentConfig",
    "ExperimentResult",
    "MobileGridExperiment",
    "run_experiment",
    "render_report",
    "Vec2",
    "MobileNode",
    "build_population",
    "table1_spec",
    "tom_itinerary",
    "Telemetry",
    "TelemetryConfig",
    "__version__",
]
