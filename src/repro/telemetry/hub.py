"""The telemetry facade components talk to, and its disabled twin.

Every instrumented layer takes an optional ``telemetry`` argument.  When
a real :class:`Telemetry` is passed, instruments register in its shared
:class:`~repro.telemetry.metrics.MetricsRegistry`, spans aggregate in its
:class:`~repro.telemetry.tracing.Tracer`, and events land in its
:class:`~repro.telemetry.events.EventLog`.  When nothing (or
:data:`NULL_TELEMETRY`) is passed, the same call sites receive no-op
instruments whose methods do nothing — the disabled path costs one
attribute call per hook and allocates nothing.

Components should cache instruments at construction time::

    self._m_drops = (telemetry or NULL_TELEMETRY).counter("net.drops")
    ...
    self._m_drops.inc()          # hot path: one call either way
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.events import EventLog, Severity
from repro.telemetry.metrics import (
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sampler import Sampler
from repro.telemetry.tracing import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel import Simulator

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


class Telemetry:
    """Live telemetry: one registry + tracer + event log + sampler."""

    enabled = True

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig(enabled=True)
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.events = EventLog(
            capacity=self.config.event_log_capacity,
            min_severity=self.config.min_severity,
        )
        self.sampler = Sampler(self.registry, self.config.sample_interval)
        self._clock: Callable[[], float] | None = None

    @classmethod
    def from_config(
        cls, config: TelemetryConfig | None
    ) -> "Telemetry | NullTelemetry":
        """A live Telemetry when enabled, the shared null one otherwise."""
        if config is not None and config.enabled:
            return cls(config)
        return NULL_TELEMETRY

    # -- instruments ------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        """Registry counter for ``(name, labels)``."""
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Registry gauge for ``(name, labels)``."""
        return self.registry.gauge(name, **labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] | None = None,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        **labels: Any,
    ) -> Histogram:
        """Registry histogram for ``(name, labels)``."""
        return self.registry.histogram(
            name, buckets=buckets, quantiles=quantiles, **labels
        )

    # -- tracing / events -------------------------------------------------
    def span(self, name: str) -> Span:
        """A tracer span; use with ``with``."""
        return self.tracer.span(name)

    def event(
        self,
        severity: Severity,
        message: str,
        *,
        source: str = "",
        time: float | None = None,
        **fields: Any,
    ) -> None:
        """Log a structured event (time defaults to the bound sim clock)."""
        if time is None:
            time = self._clock() if self._clock is not None else 0.0
        self.events.log(severity, message, time=time, source=source, **fields)

    # -- binding to a simulation ------------------------------------------
    def bind(self, sim: "Simulator", *, end: float) -> None:
        """Attach to *sim*: sim-clock for spans/events, periodic sampling.

        *end* bounds the sampler's self-perpetuating schedule (normally
        the experiment duration).
        """
        self._clock = lambda: sim.now
        self.tracer.set_sim_clock(self._clock)
        self.sampler.install(sim, end=end)

    # -- export ------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The full JSON-serialisable state of this telemetry instance.

        ``metrics`` and ``samples`` are seed-stable (pure sim-time data);
        ``spans`` carry wall-clock timings and vary run to run.
        """
        return {
            "metrics": self.registry.snapshot(),
            "samples": self.sampler.snapshot(),
            "spans": self.tracer.snapshot(),
            "events": self.events.snapshot(),
        }

    def summary(self) -> str:
        """Human-readable summary table (see :mod:`repro.telemetry.export`)."""
        from repro.telemetry.export import summary_table

        return summary_table(self)


class _NullInstrument:
    """Absorbs every counter/gauge/histogram method as a no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0.0
    count = 0


class _NullSpan:
    """A reusable context manager that does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled telemetry: same surface as :class:`Telemetry`, all no-ops."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **kwargs: Any) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def span(self, name: str) -> _NullSpan:
        """The shared no-op span."""
        return _NULL_SPAN

    def event(self, severity: Any, message: str, **kwargs: Any) -> None:
        """Dropped."""

    def bind(self, sim: Any, *, end: float) -> None:
        """Nothing to attach."""

    def snapshot(self) -> None:
        """Disabled telemetry has no state to dump."""
        return None

    def summary(self) -> str:
        """A one-line notice instead of a table."""
        return "telemetry disabled (enable via TelemetryConfig(enabled=True))"


#: The process-wide disabled telemetry every un-instrumented component uses.
NULL_TELEMETRY = NullTelemetry()
