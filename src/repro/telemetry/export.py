"""Exporters: JSON / CSV snapshots and the human-readable summary table.

The snapshot layout (see :meth:`Telemetry.snapshot`)::

    {
      "metrics": {"<name{labels}>": {"kind": ..., "value"/"count"/...}},
      "samples": {"<name{labels}>": {"times": [...], "values": [...]}},
      "spans":   {"<span name>":   {"count": ..., "wall_total": ...}},
      "events":  {"capacity": ..., "records": [...]}
    }

``metrics`` and ``samples`` are deterministic under a fixed seed; span
wall-clock timings are not, which is why they live in their own section.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.hub import Telemetry

__all__ = [
    "write_snapshot_json",
    "write_metrics_csv",
    "merge_snapshots",
    "summary_table",
]


def write_snapshot_json(snapshot: dict[str, Any], path: str | Path) -> Path:
    """Write a telemetry snapshot as indented JSON; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return out


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Combine several runs' telemetry snapshots into one cell summary.

    The sweep runner collects one snapshot per replication of a sweep
    cell; this folds them into cross-run aggregates:

    * counters — values summed across runs;
    * gauges — last values averaged across runs;
    * histograms — ``count``/``sum`` summed, ``min``/``max`` taken over
      all runs, ``mean`` recomputed from the merged totals (per-run P²
      quantile markers and buckets cannot be merged exactly and are
      dropped);
    * spans — ``count``/``wall_total``/``sim_total`` summed;
    * events — per-severity counts summed.

    Sample series are per-run time series and do not aggregate across
    runs, so they are omitted.
    """
    if not snapshots:
        raise ValueError("no snapshots to merge")
    metrics: dict[str, dict[str, Any]] = {}
    spans: dict[str, dict[str, float]] = {}
    event_counts: dict[str, int] = {}
    for snapshot in snapshots:
        for name, data in (snapshot.get("metrics") or {}).items():
            kind = data.get("kind", "counter")
            slot = metrics.setdefault(
                name, {"kind": kind, "runs": 0, "value": 0.0}
            )
            slot["runs"] += 1
            if kind == "histogram":
                slot.setdefault("count", 0)
                slot.setdefault("sum", 0.0)
                slot["count"] += data.get("count", 0)
                slot["sum"] += data.get("sum", 0.0)
                if data.get("count"):
                    slot["min"] = min(
                        slot.get("min", math.inf), data.get("min", math.inf)
                    )
                    slot["max"] = max(
                        slot.get("max", -math.inf), data.get("max", -math.inf)
                    )
                slot["mean"] = (
                    slot["sum"] / slot["count"] if slot["count"] else 0.0
                )
                slot.pop("value", None)
            else:
                slot["value"] += data.get("value", 0.0)
        for name, data in (snapshot.get("spans") or {}).items():
            slot = spans.setdefault(
                name, {"count": 0, "wall_total": 0.0, "sim_total": 0.0}
            )
            slot["count"] += data.get("count", 0)
            slot["wall_total"] += data.get("wall_total", 0.0)
            slot["sim_total"] += data.get("sim_total", 0.0)
        counts = (snapshot.get("events") or {}).get("counts") or {}
        for severity, count in counts.items():
            event_counts[severity] = event_counts.get(severity, 0) + count
    for slot in metrics.values():
        if slot["kind"] == "gauge" and slot["runs"]:
            slot["value"] /= slot["runs"]
    return {
        "runs": len(snapshots),
        "metrics": dict(sorted(metrics.items())),
        "spans": dict(sorted(spans.items())),
        "events": {"counts": dict(sorted(event_counts.items()))},
    }


def write_metrics_csv(snapshot: dict[str, Any], path: str | Path) -> Path:
    """Write the snapshot's metrics section as flat CSV rows.

    Columns: metric, kind, value, count, sum, mean, min, max, p50, p90,
    p99 (blank where a column does not apply to the instrument kind).
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    columns = [
        "metric",
        "kind",
        "value",
        "count",
        "sum",
        "mean",
        "min",
        "max",
        "p50",
        "p90",
        "p99",
    ]
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for name, data in sorted(snapshot.get("metrics", {}).items()):
            row: dict[str, Any] = {"metric": name, "kind": data.get("kind", "")}
            if data.get("kind") == "histogram":
                quantiles = data.get("quantiles", {})
                row.update(
                    count=data.get("count", 0),
                    sum=data.get("sum", 0.0),
                    mean=data.get("mean", 0.0),
                    min=data.get("min", 0.0),
                    max=data.get("max", 0.0),
                    p50=quantiles.get("0.5", ""),
                    p90=quantiles.get("0.9", ""),
                    p99=quantiles.get("0.99", ""),
                )
            else:
                row["value"] = data.get("value", 0.0)
            writer.writerow([row.get(c, "") for c in columns])
    return out


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def summary_table(telemetry: "Telemetry") -> str:
    """Render a run's telemetry as aligned, layer-grouped text tables."""
    lines: list[str] = []

    instruments = sorted(
        telemetry.registry.instruments(), key=lambda m: m.full_name
    )
    if instruments:
        lines.append("=== metrics ===")
        width = max(len(m.full_name) for m in instruments)
        last_layer = None
        for metric in instruments:
            layer = metric.name.split(".", 1)[0]
            if layer != last_layer:
                if last_layer is not None:
                    lines.append("")
                last_layer = layer
            if metric.kind == "histogram":
                lines.append(
                    f"  {metric.full_name:<{width}}  n={metric.count:<8} "
                    f"mean={_format_value(metric.mean):<10} "
                    f"p50={_format_value(metric.quantile(0.5)):<10} "
                    f"p99={_format_value(metric.quantile(0.99)):<10} "
                    f"max={_format_value(metric.max)}"
                )
            else:
                lines.append(
                    f"  {metric.full_name:<{width}}  "
                    f"{_format_value(metric.value)}"
                )
    else:
        lines.append("=== metrics === (none registered)")

    span_stats = telemetry.tracer.stats()
    if span_stats:
        lines.append("")
        lines.append("=== spans (wall-clock; non-deterministic) ===")
        width = max(len(name) for name in span_stats)
        ordered = sorted(
            span_stats.values(), key=lambda s: s.wall_total, reverse=True
        )
        for stats in ordered:
            lines.append(
                f"  {stats.name:<{width}}  n={stats.count:<8} "
                f"total={stats.wall_total * 1e3:>9.2f}ms "
                f"mean={stats.wall_mean * 1e6:>8.2f}us "
                f"max={(0.0 if math.isinf(stats.wall_max) else stats.wall_max) * 1e6:>8.2f}us"
            )

    log = telemetry.events
    lines.append("")
    counts = ", ".join(
        f"{name}={count}"
        for name, count in log.counts_by_severity().items()
        if count
    )
    lines.append(
        f"=== events === {log.total_logged} logged"
        f" ({counts or 'none'}), {log.dropped} dropped from ring"
    )
    for record in log.records()[-10:]:
        lines.append(
            f"  [{record.time:>8.1f}s {record.severity.name:<7}] "
            f"{record.source}: {record.message}"
        )
    return "\n".join(lines)
