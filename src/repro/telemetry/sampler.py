"""Periodic metric snapshots as :class:`TimeSeries`.

The :class:`Sampler` rides the shared :class:`~repro.simkernel.Simulator`
as a periodic activity: every ``interval`` simulated seconds it reads one
scalar per registered instrument (counter/gauge value, histogram count)
and appends it to a per-metric time series.  The result is the *trajectory*
of every metric over the run — queue depth over time, cumulative drops
over time — not just the final totals.

Sampling is pure observation driven by sim time, so a fixed seed yields
an identical sample set run-to-run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.telemetry.metrics import MetricsRegistry
from repro.util.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel import Simulator

__all__ = ["Sampler"]


class Sampler:
    """Snapshots a registry's scalars into time series on a sim-time grid."""

    def __init__(self, registry: MetricsRegistry, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._registry = registry
        self.interval = interval
        self._series: dict[str, TimeSeries] = {}
        self._installed = False

    @property
    def installed(self) -> bool:
        """Whether the sampler has been scheduled on a simulator."""
        return self._installed

    def install(self, sim: "Simulator", *, end: float) -> None:
        """Schedule periodic sampling on *sim* up to sim time *end*.

        *end* is required because the schedule self-perpetuates: an
        unbounded sampler would keep an otherwise-drained simulation
        alive forever under ``Simulator.run()``.
        """
        if self._installed:
            raise RuntimeError("sampler already installed")
        self._installed = True
        sim.schedule_every(
            self.interval,
            lambda: self.sample(sim.now),
            end=end,
            label="telemetry:sample",
        )

    def sample(self, now: float) -> None:
        """Take one snapshot at sim time *now* (callable directly in tests)."""
        for full_name, value in self._registry.value_map().items():
            series = self._series.get(full_name)
            if series is None:
                series = TimeSeries()
                self._series[full_name] = series
            series.append(now, value)

    @property
    def series(self) -> dict[str, TimeSeries]:
        """Per-metric trajectories keyed by full metric name."""
        return dict(self._series)

    def series_for(self, full_name: str) -> TimeSeries | None:
        """The trajectory of one metric, if it was ever sampled."""
        return self._series.get(full_name)

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable dump: times/values lists per metric."""
        return {
            name: {
                "times": [float(t) for t in self._series[name].times],
                "values": [float(v) for v in self._series[name].values],
            }
            for name in sorted(self._series)
        }
