"""repro.telemetry — unified metrics, tracing and event logging.

The observability substrate of the whole simulation stack:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments keyed by name + labels;
* :class:`Tracer` / :class:`Span` — nested sections timed in both
  wall-clock and sim-clock;
* :class:`EventLog` — a bounded ring of structured, JSON-serialisable
  event records;
* :class:`Sampler` — periodic metric snapshots into
  :class:`~repro.util.timeseries.TimeSeries`, riding the simulator;
* exporters to JSON/CSV and a human-readable summary table.

Everything hangs off a :class:`Telemetry` facade; the disabled twin
:data:`NULL_TELEMETRY` keeps un-instrumented runs at near-zero overhead.
See ``docs/telemetry.md`` for architecture and naming conventions.
"""

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.events import EventLog, EventRecord, Severity
from repro.telemetry.export import (
    merge_snapshots,
    summary_table,
    write_metrics_csv,
    write_snapshot_json,
)
from repro.telemetry.hub import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    TelemetryError,
)
from repro.telemetry.sampler import Sampler
from repro.telemetry.tracing import Span, SpanStats, Tracer

__all__ = [
    "TelemetryConfig",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetryError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "Tracer",
    "Span",
    "SpanStats",
    "EventLog",
    "EventRecord",
    "Severity",
    "Sampler",
    "merge_snapshots",
    "summary_table",
    "write_metrics_csv",
    "write_snapshot_json",
]
