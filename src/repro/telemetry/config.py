"""Telemetry configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.events import Severity

__all__ = ["TelemetryConfig"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Global telemetry switches for a run.

    ``enabled`` gates everything: when False every telemetry hook in the
    stack is a no-op with near-zero overhead and no state accumulates.
    ``sample_interval`` is the sim-time period of the periodic metric
    sampler; ``event_log_capacity`` bounds the structured event ring;
    ``min_severity`` drops events quieter than the threshold at the
    source.
    """

    enabled: bool = False
    sample_interval: float = 10.0
    event_log_capacity: int = 1024
    min_severity: Severity = Severity.DEBUG

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be > 0, got {self.sample_interval}"
            )
        if self.event_log_capacity < 1:
            raise ValueError(
                f"event_log_capacity must be >= 1, got {self.event_log_capacity}"
            )
