"""Metric instruments and the registry that owns them.

Three instrument kinds cover everything the simulation stack needs to
expose:

* :class:`Counter` — a monotonically increasing count (LUs received,
  events executed, messages dropped);
* :class:`Gauge` — a value that moves both ways (queue depth, live
  cluster count, staleness);
* :class:`Histogram` — a distribution (delivery latency, queueing
  delay) with fixed cumulative buckets *and* streaming quantile
  estimates (the P² algorithm, so no samples are retained).

Instruments are keyed by ``(name, labels)`` in a
:class:`MetricsRegistry`; asking twice for the same key returns the same
instrument, so call sites may re-derive instruments freely while hot
paths cache them once.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "TelemetryError",
    "LabelTuple",
    "Counter",
    "Gauge",
    "P2Quantile",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Canonical form of a label set: sorted ``(key, value)`` pairs.
LabelTuple = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds, tuned for the latencies and
#: delays (seconds) this simulation produces.  The implicit final bucket
#: is ``+inf``.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Quantiles every histogram estimates by default.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


class TelemetryError(RuntimeError):
    """Misuse of the telemetry API (type conflicts, bad arguments)."""


def _label_key(labels: dict[str, Any]) -> LabelTuple:
    """Canonicalise a label mapping to a hashable, ordered tuple."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_metric_name(name: str, labels: LabelTuple) -> str:
    """Render ``name{k=v,...}`` (just ``name`` when unlabelled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _Instrument:
    """Shared identity of all instruments."""

    kind = "instrument"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelTuple) -> None:
        self.name = name
        self.labels = labels

    @property
    def full_name(self) -> str:
        """The instrument's registry-unique display name."""
        return format_metric_name(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.full_name})"


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelTuple = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.full_name} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        return self._value

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable state."""
        return {"kind": self.kind, "value": self._value}


class Gauge(_Instrument):
    """A value that can move in both directions."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelTuple = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with *value*."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by *amount*."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by *amount*."""
        self._value -= amount

    @property
    def value(self) -> float:
        """The current level."""
        return self._value

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable state."""
        return {"kind": self.kind, "value": self._value}


class P2Quantile:
    """Streaming quantile estimation via the P² algorithm.

    Jain & Chlamtac (1985): five markers track the running quantile
    without retaining observations.  Estimates are exact for the first
    five samples and converge quickly after; memory is O(1) and every
    update is deterministic, which keeps telemetry snapshots seed-stable.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, q: float) -> None:
        if not (0.0 < q < 1.0):
            raise TelemetryError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    def observe(self, x: float) -> None:
        """Absorb one observation."""
        self._count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(x)
            heights.sort()
            return
        # Locate the cell containing x, extending extremes when needed.
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and not (heights[k] <= x < heights[k + 1]):
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers.
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            n_prev = self._positions[i - 1]
            n_here = self._positions[i]
            n_next = self._positions[i + 1]
            if (d >= 1.0 and n_next - n_here > 1.0) or (
                d <= -1.0 and n_prev - n_here < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return self._count

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        if not self._heights:
            return 0.0
        if len(self._heights) < 5:
            # Exact quantile over the few retained samples.
            idx = self.q * (len(self._heights) - 1)
            lo = int(math.floor(idx))
            hi = min(lo + 1, len(self._heights) - 1)
            frac = idx - lo
            return self._heights[lo] * (1.0 - frac) + self._heights[hi] * frac
        return self._heights[2]


class Histogram(_Instrument):
    """Distribution summary: fixed buckets plus streaming quantiles."""

    kind = "histogram"
    __slots__ = (
        "_buckets",
        "_bucket_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_quantiles",
    )

    def __init__(
        self,
        name: str,
        labels: LabelTuple = (),
        *,
        buckets: tuple[float, ...] | None = None,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise TelemetryError(
                f"histogram buckets must be non-empty and sorted, got {bounds}"
            )
        self._buckets = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # final bucket = +inf
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._quantiles = {q: P2Quantile(q) for q in quantiles}

    def observe(self, value: float) -> None:
        """Record one sample."""
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        # Linear scan: bucket lists are short and this avoids bisect's
        # per-call import indirection on the hot path.
        placed = False
        for i, upper in enumerate(self._buckets):
            if value <= upper:
                self._bucket_counts[i] += 1
                placed = True
                break
        if not placed:
            self._bucket_counts[-1] += 1
        for estimator in self._quantiles.values():
            estimator.observe(value)

    @property
    def count(self) -> int:
        """Samples recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Average sample (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Streaming estimate of quantile *q* (must have been configured)."""
        try:
            return self._quantiles[q].value
        except KeyError:
            raise TelemetryError(
                f"histogram {self.full_name} does not track quantile {q}; "
                f"tracked: {sorted(self._quantiles)}"
            ) from None

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative counts per bucket upper bound (last bound is inf)."""
        out: list[tuple[float, int]] = []
        running = 0
        for upper, count in zip(self._buckets, self._bucket_counts):
            running += count
            out.append((upper, running))
        out.append((math.inf, running + self._bucket_counts[-1]))
        return out

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable state (inf bucket rendered as a string)."""
        return {
            "kind": self.kind,
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "quantiles": {str(q): est.value for q, est in self._quantiles.items()},
            "buckets": [
                ["inf" if math.isinf(upper) else upper, count]
                for upper, count in self.bucket_counts()
            ],
        }


class MetricsRegistry:
    """Owns every instrument, keyed by ``(name, labels)``.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a key creates the instrument, later calls return it.  Re-using a
    name with a different instrument kind raises — one name means one
    kind of thing.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelTuple], _Instrument] = {}

    def _get_or_create(
        self,
        cls: type,
        name: str,
        labels: dict[str, Any],
        **kwargs: Any,
    ) -> Any:
        if not name:
            raise TelemetryError("metric name must be non-empty")
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument
        if not isinstance(instrument, cls):
            raise TelemetryError(
                f"metric {instrument.full_name} is a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] | None = None,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        **labels: Any,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        return self._get_or_create(
            Histogram, name, labels, buckets=buckets, quantiles=quantiles
        )

    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, in registration order."""
        return list(self._instruments.values())

    def get(self, name: str, **labels: Any) -> _Instrument | None:
        """Look up an instrument without creating it."""
        return self._instruments.get((name, _label_key(labels)))

    def __len__(self) -> int:
        return len(self._instruments)

    def value_map(self) -> dict[str, float]:
        """One scalar per instrument (counters/gauges: value; histograms:
        count) keyed by full name — the sampler's per-tick snapshot."""
        out: dict[str, float] = {}
        for instrument in self._instruments.values():
            if isinstance(instrument, Histogram):
                out[instrument.full_name] = float(instrument.count)
            else:
                out[instrument.full_name] = instrument.value  # type: ignore[attr-defined]
        return out

    def snapshot(self) -> dict[str, Any]:
        """Full JSON-serialisable dump of every instrument, sorted by name."""
        return {
            instrument.full_name: instrument.snapshot()
            for instrument in sorted(
                self._instruments.values(), key=lambda m: m.full_name
            )
        }
