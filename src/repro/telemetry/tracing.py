"""Sim-time-aware tracing: nested spans with wall- and sim-clock timing.

A :class:`Tracer` hands out :class:`Span` context managers.  Spans nest
(the tracer keeps the active stack), and on exit each span folds its
wall-clock duration *and* its sim-clock duration into per-span-name
aggregate statistics.  Wall-clock numbers measure where the Python
process spends real time; sim-clock numbers measure how much simulated
time elapsed inside the span (non-zero only when the span's action
advances the simulator, e.g. a nested ``run_until``).

Wall-clock durations are inherently non-deterministic; exporters keep
them separate from the seed-stable metric snapshot.
"""

from __future__ import annotations

import math
import time as _time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

__all__ = ["SpanStats", "Span", "Tracer"]


@dataclass
class SpanStats:
    """Aggregate timings for one span name."""

    name: str
    count: int = 0
    wall_total: float = 0.0
    wall_min: float = math.inf
    wall_max: float = 0.0
    sim_total: float = 0.0

    def record(self, wall: float, sim: float) -> None:
        """Fold one completed span into the aggregate."""
        self.count += 1
        self.wall_total += wall
        if wall < self.wall_min:
            self.wall_min = wall
        if wall > self.wall_max:
            self.wall_max = wall
        self.sim_total += sim

    @property
    def wall_mean(self) -> float:
        """Average wall-clock seconds per span."""
        return self.wall_total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable state."""
        return {
            "count": self.count,
            "wall_total": self.wall_total,
            "wall_mean": self.wall_mean,
            "wall_min": self.wall_min if self.count else 0.0,
            "wall_max": self.wall_max,
            "sim_total": self.sim_total,
        }


class Span:
    """One timed section; use as a context manager."""

    __slots__ = ("name", "_tracer", "_wall_start", "_sim_start", "depth")

    def __init__(self, name: str, tracer: "Tracer") -> None:
        self.name = name
        self._tracer = tracer
        self._wall_start = 0.0
        self._sim_start = 0.0
        #: Nesting depth at entry (0 = top level); set by ``__enter__``.
        self.depth = 0

    def __enter__(self) -> "Span":
        self.depth = self._tracer._enter(self)
        self._wall_start = _time.perf_counter()
        self._sim_start = self._tracer._sim_now()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        wall = _time.perf_counter() - self._wall_start
        sim = self._tracer._sim_now() - self._sim_start
        self._tracer._exit(self, wall, sim)


class Tracer:
    """Creates spans and aggregates their statistics by name."""

    def __init__(self, sim_clock: Callable[[], float] | None = None) -> None:
        self._sim_clock = sim_clock
        self._stats: dict[str, SpanStats] = {}
        self._stack: list[Span] = []

    def set_sim_clock(self, sim_clock: Callable[[], float] | None) -> None:
        """Install the simulation clock spans read (None: sim time = 0)."""
        self._sim_clock = sim_clock

    def _sim_now(self) -> float:
        return self._sim_clock() if self._sim_clock is not None else 0.0

    def span(self, name: str) -> Span:
        """A new span named *name*; enter it with ``with``."""
        return Span(name, self)

    # -- span lifecycle (called by Span) ----------------------------------
    def _enter(self, span: Span) -> int:
        depth = len(self._stack)
        self._stack.append(span)
        return depth

    def _exit(self, span: Span, wall: float, sim: float) -> None:
        # Pop through to this span; tolerates a span closed out of order
        # (e.g. an exception unwinding several levels at once).
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        stats = self._stats.get(span.name)
        if stats is None:
            stats = SpanStats(span.name)
            self._stats[span.name] = stats
        stats.record(wall, sim)

    # -- queries -----------------------------------------------------------
    @property
    def active_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def stats(self) -> dict[str, SpanStats]:
        """Aggregates keyed by span name (live objects, not copies)."""
        return dict(self._stats)

    def stats_for(self, name: str) -> SpanStats | None:
        """The aggregate for one span name, if it ever ran."""
        return self._stats.get(name)

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable aggregates, sorted by span name."""
        return {
            name: self._stats[name].snapshot() for name in sorted(self._stats)
        }
