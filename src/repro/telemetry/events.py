"""Structured event log: a bounded ring buffer of typed records.

Components log discrete happenings — a gateway failing, a recluster, a
queue overflowing — as :class:`EventRecord` entries with a severity, the
sim time, a source tag and free-form fields.  The log is a ring buffer:
it never grows past its capacity, old records fall off the front, and
every record is JSON-serialisable for export.
"""

from __future__ import annotations

import enum
from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Severity", "EventRecord", "EventLog"]


class Severity(enum.IntEnum):
    """Event severity, ordered so records filter by threshold."""

    DEBUG = 10
    INFO = 20
    WARNING = 30
    ERROR = 40


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One logged event."""

    time: float
    severity: Severity
    source: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (severity by name)."""
        return {
            "time": self.time,
            "severity": self.severity.name,
            "source": self.source,
            "message": self.message,
            "fields": dict(self.fields),
        }


class EventLog:
    """Bounded, severity-aware event buffer."""

    def __init__(
        self,
        capacity: int = 1024,
        *,
        min_severity: Severity = Severity.DEBUG,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._records: deque[EventRecord] = deque(maxlen=capacity)
        self._capacity = capacity
        self._min_severity = min_severity
        self._total = 0
        self._by_severity: _Counter[Severity] = _Counter()

    @property
    def capacity(self) -> int:
        """Maximum records retained."""
        return self._capacity

    @property
    def total_logged(self) -> int:
        """Records accepted over the log's lifetime (retained or not)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Records pushed out of the ring by newer ones."""
        return self._total - len(self._records)

    def log(
        self,
        severity: Severity,
        message: str,
        *,
        time: float = 0.0,
        source: str = "",
        **fields: Any,
    ) -> EventRecord | None:
        """Append a record; returns it, or None when below the threshold."""
        if severity < self._min_severity:
            return None
        record = EventRecord(
            time=time,
            severity=severity,
            source=source,
            message=message,
            fields=fields,
        )
        self._records.append(record)
        self._total += 1
        self._by_severity[severity] += 1
        return record

    def debug(self, message: str, **kwargs: Any) -> EventRecord | None:
        """Log at DEBUG."""
        return self.log(Severity.DEBUG, message, **kwargs)

    def info(self, message: str, **kwargs: Any) -> EventRecord | None:
        """Log at INFO."""
        return self.log(Severity.INFO, message, **kwargs)

    def warning(self, message: str, **kwargs: Any) -> EventRecord | None:
        """Log at WARNING."""
        return self.log(Severity.WARNING, message, **kwargs)

    def error(self, message: str, **kwargs: Any) -> EventRecord | None:
        """Log at ERROR."""
        return self.log(Severity.ERROR, message, **kwargs)

    def records(self, min_severity: Severity | None = None) -> list[EventRecord]:
        """Retained records, oldest first, optionally severity-filtered."""
        if min_severity is None:
            return list(self._records)
        return [r for r in self._records if r.severity >= min_severity]

    def counts_by_severity(self) -> dict[str, int]:
        """Lifetime record counts keyed by severity name."""
        return {sev.name: self._by_severity.get(sev, 0) for sev in Severity}

    def __len__(self) -> int:
        return len(self._records)

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable dump: stats plus the retained records."""
        return {
            "capacity": self._capacity,
            "total_logged": self._total,
            "dropped": self.dropped,
            "counts": self.counts_by_severity(),
            "records": [r.to_dict() for r in self._records],
        }
