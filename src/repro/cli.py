"""Command-line entry point: regenerate any figure or the full report.

Usage::

    python -m repro report --duration 1800
    python -m repro fig4 --duration 600 --plot
    python -m repro table1
    python -m repro map
    python -m repro confusion --duration 120
    python -m repro energy --duration 120
    python -m repro replicate --duration 60 --seeds 1 2 3
    python -m repro telemetry --duration 120 --export-json telemetry.json
    python -m repro sweep --grid sweep.toml --workers 4 --out sweep_out
    python -m repro sweep --smoke
    python -m repro profile --duration 20 --top 25
    python -m repro chaos --duration 300 --intensities 0 0.5 1.0
    python -m repro chaos --smoke --export-json resilience.json
    python -m repro lint
    python -m repro lint --paths src --lint-format json
    python -m repro serving --record trace.jsonl --duration 120
    python -m repro serving --replay trace.jsonl --rate 50000 --shards 8
    python -m repro serving --smoke --export-json serving.json
    python -m repro --list-targets

Targets are registered in a dispatch table via :func:`register_target`;
adding a new target is one decorated handler function (with a one-line
description for the ``--list-targets`` index), not another branch in an
``elif`` chain.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from repro.experiments import (
    ExperimentConfig,
    fig4_lus_per_second,
    fig5_accumulated_lus,
    fig6_transmission_rate_by_region,
    fig7_rmse_over_time,
    fig8_rmse_by_region_without_le,
    fig9_rmse_by_region_with_le,
    render_report,
    run_experiment,
    table1_specification,
)

__all__ = ["main", "register_target"]

Handler = Callable[[argparse.Namespace], int]

#: target name -> handler; populated by :func:`register_target`.
_HANDLERS: dict[str, Handler] = {}

#: target name -> one-line description shown by ``--list-targets``.
_DESCRIPTIONS: dict[str, str] = {}


def register_target(
    *names: str, description: str = ""
) -> Callable[[Handler], Handler]:
    """Register a handler for one or more CLI target names.

    *description* is the one-line blurb ``--list-targets`` shows for each
    of the names (falls back to the handler's first docstring line).
    """

    def decorate(handler: Handler) -> Handler:
        doc = (handler.__doc__ or "").strip()
        blurb = description or (doc.splitlines()[0] if doc else "")
        for name in names:
            if name in _HANDLERS:
                raise ValueError(f"duplicate CLI target {name!r}")
            _HANDLERS[name] = handler
            _DESCRIPTIONS[name] = blurb
        return handler

    return decorate


def list_targets() -> str:
    """The ``--list-targets`` index: every target with its description."""
    width = max(len(name) for name in _HANDLERS)
    lines = ["available targets:"]
    for name in sorted(_HANDLERS):
        lines.append(f"  {name:<{width}}  {_DESCRIPTIONS.get(name, '')}".rstrip())
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mobile-grid",
        description="Reproduce the ADF mobile-grid evaluation figures.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        choices=sorted(_HANDLERS),
        help="what to regenerate (omit to list the available targets)",
    )
    parser.add_argument(
        "--list-targets",
        action="store_true",
        help="list every registered target with a one-line description",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=1800.0,
        help="simulated seconds (paper: 1800)",
    )
    parser.add_argument("--seed", type=int, default=42, help="experiment seed")
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[1, 2, 3],
        help="seeds for the replicate target",
    )
    parser.add_argument(
        "--general-df",
        action="store_true",
        help="also run the general (global-DTH) distance filter lanes",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render the figure as an ASCII chart instead of numbers",
    )
    parser.add_argument(
        "--config",
        type=str,
        default=None,
        help="load the experiment configuration from a .toml/.json file "
        "(CLI flags for duration/seed still override)",
    )
    parser.add_argument(
        "--export-json",
        type=str,
        default=None,
        metavar="PATH",
        help="additionally write the full run summary as JSON",
    )
    parser.add_argument(
        "--export-csv",
        type=str,
        default=None,
        metavar="PATH",
        help="additionally write the per-second LU series as CSV",
    )
    parser.add_argument(
        "--markdown",
        type=str,
        default=None,
        metavar="PATH",
        help="with `report`: also write the run as a Markdown document",
    )
    profile = parser.add_argument_group("profile", "options for the profile target")
    profile.add_argument(
        "--top",
        type=int,
        default=25,
        help="how many hot functions to print (profile target)",
    )
    profile.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
        help="profile stat ordering (profile target)",
    )
    profile.add_argument(
        "--profile-out",
        type=str,
        default=None,
        metavar="PATH",
        help="also dump the raw pstats file (profile target)",
    )
    sweep = parser.add_argument_group("sweep", "options for the sweep target")
    sweep.add_argument(
        "--grid",
        type=str,
        default=None,
        metavar="PATH",
        help="sweep definition file (.toml/.json with axes/replications/base)",
    )
    sweep.add_argument(
        "--set",
        dest="axes",
        action="append",
        default=[],
        metavar="FIELD=V1,V2",
        help="add a sweep axis inline, e.g. --set duration=300,600 "
        "(repeatable; overrides the same axis from --grid)",
    )
    sweep.add_argument(
        "--replications",
        type=int,
        default=None,
        help="replications per grid cell (seeds derived from the base seed)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    sweep.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="DIR",
        help="checkpoint directory (enables resume after an interrupt)",
    )
    sweep.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every run even when a checkpoint exists",
    )
    sweep.add_argument(
        "--smoke",
        action="store_true",
        help="run a tiny built-in scenario (CI smoke test; sweep, chaos "
        "and serving)",
    )
    scaling = parser.add_argument_group(
        "scaling", "options for the population-scaling target"
    )
    scaling.add_argument(
        "--node-counts",
        type=int,
        nargs="+",
        default=[1_000, 10_000, 100_000],
        metavar="N",
        help="fleet sizes to sweep through the columnar engine",
    )
    scaling.add_argument(
        "--sweep-duration",
        type=float,
        default=10.0,
        help="simulated seconds per scaling point (the columnar sweep "
        "ignores --duration so the 1800 s default cannot explode a "
        "100k-node run)",
    )
    scaling.add_argument(
        "--exact-kernel",
        action="store_true",
        help="use the bit-exact math kernel instead of the fast one",
    )
    scaling.add_argument(
        "--cluster-mode",
        choices=("exact", "batched"),
        default="exact",
        help="BSAS placement path: exact (bit-faithful sequential) or "
        "batched (epoch-chunked, for the 1M-node rung)",
    )
    scaling.add_argument(
        "--city-blocks",
        type=int,
        nargs=2,
        default=None,
        metavar=("NX", "NY"),
        help="sweep a generated NX x NY grid city instead of the "
        "default campus",
    )
    scaling.add_argument(
        "--block-size",
        type=float,
        default=150.0,
        metavar="M",
        help="city block edge length in metres (with --city-blocks)",
    )
    scaling.add_argument(
        "--record-trace",
        type=str,
        default=None,
        metavar="FILE",
        help="record the largest rung's ADF LU stream as a "
        "repro-lu-trace file (see --trace-lane)",
    )
    chaos = parser.add_argument_group("chaos", "options for the chaos target")
    chaos.add_argument(
        "--intensities",
        type=float,
        nargs="+",
        default=None,
        metavar="I",
        help="fault intensities in [0, 1] to sweep (chaos target)",
    )
    chaos.add_argument(
        "--churn",
        action="store_true",
        help="also inject node churn faults (chaos target)",
    )
    lint = parser.add_argument_group("lint", "options for the lint target")
    lint.add_argument(
        "--paths",
        type=str,
        nargs="+",
        default=None,
        metavar="PATH",
        help="files/directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--lint-format",
        choices=("text", "json"),
        default="text",
        help="lint report format (lint target)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current lint findings (lint target)",
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only git-modified files (lint target)",
    )
    serving = parser.add_argument_group(
        "serving", "options for the serving target"
    )
    serving.add_argument(
        "--record",
        type=str,
        default=None,
        metavar="PATH",
        help="record the experiment's LU stream as a replayable trace",
    )
    serving.add_argument(
        "--replay",
        type=str,
        default=None,
        metavar="PATH",
        help="replay a recorded trace through the ingest service",
    )
    serving.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="MSG_PER_S",
        help="open-loop replay rate in msg/s (0 = as recorded)",
    )
    serving.add_argument(
        "--shards",
        type=int,
        default=4,
        help="location-store shard count (serving target)",
    )
    serving.add_argument(
        "--trace-lane",
        type=str,
        default="adf-1",
        metavar="LANE",
        help="which harness lane's LU stream to record (default adf-1)",
    )
    serving.add_argument(
        "--sweep-interval",
        type=float,
        default=0.0,
        metavar="SEC",
        help="trace-time seconds between estimation sweeps (0 = off)",
    )
    serving.add_argument(
        "--recovery",
        action="store_true",
        help="chaos lane: crash a shard mid-replay, recover from WAL + "
        "snapshot, and gate on convergence with the uncrashed run",
    )
    serving.add_argument(
        "--crash-shard",
        type=int,
        default=0,
        metavar="N",
        help="which store shard the recovery lane crashes (default 0)",
    )
    serving.add_argument(
        "--crash-at",
        type=float,
        default=0.45,
        metavar="FRAC",
        help="crash time as a fraction of the replay horizon (default 0.45)",
    )
    serving.add_argument(
        "--restart-at",
        type=float,
        default=0.75,
        metavar="FRAC",
        help="restart time as a fraction of the replay horizon (default 0.75)",
    )
    serving.add_argument(
        "--wal-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="directory for per-shard WALs and snapshots "
        "(default: a temporary directory)",
    )
    serving.add_argument(
        "--snapshot-every",
        type=int,
        default=2048,
        metavar="N",
        help="snapshot+compact a shard every N WAL'd LUs (0 = never)",
    )
    serving.add_argument(
        "--export-golden",
        type=str,
        default=None,
        metavar="PATH",
        help="write the uncrashed run's filtered store export (recovery lane)",
    )
    serving.add_argument(
        "--export-recovered",
        type=str,
        default=None,
        metavar="PATH",
        help="write the recovered run's filtered store export (recovery lane)",
    )
    return parser


@register_target(
    "table1", description="print the paper's Table 1 population specification"
)
def _table1_target(args: argparse.Namespace) -> int:
    for row in table1_specification():
        print(
            f"{row.region_kind:<9} x{row.region_count}  "
            f"{row.mobility_pattern:<4} {row.node_type:<8} "
            f"n={row.node_count:<4} VR={row.velocity_range}"
        )
    return 0


@register_target(
    "map", description="render the campus map with the node population"
)
def _map_target(args: argparse.Namespace) -> int:
    from repro.campus import default_campus
    from repro.mobility import build_population, table1_spec
    from repro.util.rng import RngRegistry
    from repro.viz import render_campus

    campus = default_campus()
    nodes = build_population(campus, table1_spec(), RngRegistry(args.seed))
    for node in nodes:
        node.advance(30.0)
    print(render_campus(campus, nodes))
    return 0


@register_target(
    "confusion",
    description="mobility-classifier confusion matrix on one run",
)
def _confusion_target(args: argparse.Namespace) -> int:
    from repro.analysis import evaluate_classifier

    duration = min(args.duration, 300.0)
    matrix = evaluate_classifier(ExperimentConfig(seed=args.seed), duration=duration)
    print(matrix.render())
    return 0


@register_target(
    "replicate",
    description="re-run key metrics across seeds with confidence intervals",
)
def _replicate_target(args: argparse.Namespace) -> int:
    from repro.analysis import replicate, summarize_metric

    config = ExperimentConfig(duration=args.duration, dth_factors=(1.0,))
    results = replicate(config, args.seeds)
    for metric, extractor in (
        ("reduction(adf-1)", lambda r: r.reduction_vs_ideal("adf-1")),
        ("rmse w/ LE", lambda r: r.lanes["adf-1"].mean_rmse(with_le=True)),
        ("rmse w/o LE", lambda r: r.lanes["adf-1"].mean_rmse(with_le=False)),
        ("classifier acc", lambda r: r.classification_accuracy),
    ):
        print(summarize_metric(results, extractor, metric=metric))
    return 0


@register_target(
    "lint",
    description="run the repo's determinism/invariant static analysis",
)
def _lint_target(args: argparse.Namespace) -> int:
    from repro.lint import main as lint_main

    argv = list(args.paths or ())
    argv += ["--format", args.lint_format]
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.changed:
        argv.append("--changed")
    return lint_main(argv)


@register_target(
    "profile",
    description="cProfile one experiment run and print the hottest functions",
)
def _profile_target(args: argparse.Namespace) -> int:
    """cProfile one experiment run and print the hottest functions.

    The duration default (1800 s) is sized for figures, not profiling;
    20-30 simulated seconds is plenty to rank the hot paths.
    """
    import cProfile
    import pstats

    config = _build_config(args)
    profiler = cProfile.Profile()
    profiler.enable()
    run_experiment(config)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.profile_out:
        stats.dump_stats(args.profile_out)
        print(f"wrote {args.profile_out}")
    return 0


def _parse_axis_token(token: str) -> object:
    """One inline axis value: int, then float, then bare string."""
    for parse in (int, float):
        try:
            return parse(token)
        except ValueError:
            continue
    return token


def _smoke_spec() -> "SweepSpec":
    """A tiny 2x2 grid over a reduced population (the CI smoke sweep)."""
    from repro.experiments import SweepSpec
    from repro.mobility.population import PopulationSpec

    base = ExperimentConfig(
        duration=8.0,
        dth_factors=(1.0,),
        population=PopulationSpec(
            road_humans_per_road=1,
            road_vehicles_per_road=1,
            building_stop=1,
            building_random=1,
            building_linear=1,
        ),
    )
    return SweepSpec.from_axes(
        {"duration": (6.0, 8.0), "channel_loss": (0.0, 0.01)},
        base=base,
        replications=1,
    )


@register_target(
    "chaos",
    description="fault-intensity resilience sweep (loss/outage/churn)",
)
def _chaos_target(args: argparse.Namespace) -> int:
    """Fault-intensity sweep; prints (and optionally exports) the report."""
    from repro.experiments import ChaosConfig, chaos_sweep
    from repro.mobility.population import PopulationSpec

    if args.smoke:
        config = ExperimentConfig(
            duration=40.0,
            seed=args.seed,
            population=PopulationSpec(
                road_humans_per_road=1,
                road_vehicles_per_road=1,
                building_stop=1,
                building_random=1,
                building_linear=1,
            ),
        )
        intensities = tuple(args.intensities or (0.0, 0.6))
    else:
        config = _build_config(args)
        intensities = tuple(args.intensities or (0.0, 0.25, 0.5, 0.75, 1.0))
    report = chaos_sweep(intensities, config, chaos=ChaosConfig(churn=args.churn))
    print(report.render())
    if args.export_json:
        with open(args.export_json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"wrote {args.export_json}")
    return 0


@register_target(
    "sweep",
    description="parameter-grid sweep with checkpoint/resume and workers",
)
def _sweep_target(args: argparse.Namespace) -> int:
    from repro.experiments import SweepSpec, load_sweep_spec, run_sweep

    if args.smoke:
        spec = _smoke_spec()
    elif args.grid:
        spec = load_sweep_spec(args.grid)
    else:
        spec = SweepSpec(base=_build_config(args))
    if args.axes:
        inline = {
            name: tuple(_parse_axis_token(token) for token in values.split(","))
            for name, _, values in (item.partition("=") for item in args.axes)
        }
        merged = dict(spec.axes)
        merged.update(inline)
        spec = SweepSpec.from_axes(
            merged, base=spec.base, replications=spec.replications
        )
    if args.replications is not None:
        spec = SweepSpec(
            base=spec.base, axes=spec.axes, replications=args.replications
        )
    result = run_sweep(
        spec,
        out_dir=args.out,
        workers=args.workers,
        resume=not args.no_resume,
        progress=print,
    )
    print(result.render())
    return 0


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    if args.config:
        from dataclasses import replace

        from repro.experiments.config_io import load_config

        config = load_config(args.config)
        return replace(
            config,
            duration=args.duration,
            seed=args.seed,
            include_general_df=args.general_df or config.include_general_df,
        )
    return ExperimentConfig(
        duration=args.duration,
        seed=args.seed,
        include_general_df=args.general_df,
    )


@register_target(
    "telemetry",
    description="run one experiment with telemetry on and dump the snapshot",
)
def _telemetry_target(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.experiments.harness import MobileGridExperiment
    from repro.telemetry import TelemetryConfig, write_snapshot_json

    config = replace(_build_config(args), telemetry=TelemetryConfig(enabled=True))
    experiment = MobileGridExperiment(config)
    experiment.run()
    print(experiment.telemetry.summary())
    if args.export_json:
        snapshot = experiment.telemetry.snapshot()
        print(f"wrote {write_snapshot_json(snapshot, args.export_json)}")
    return 0


@register_target(
    "energy",
    description="per-node-type transmission energy accounting report",
)
def _energy_target(args: argparse.Namespace) -> int:
    from repro.analysis import energy_report
    from repro.experiments.harness import MobileGridExperiment

    experiment = MobileGridExperiment(_build_config(args))
    result = experiment.run()
    print(energy_report(result, experiment.nodes).render())
    return 0


@register_target(
    "report",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    description="regenerate a paper figure (fig4..fig9) or the full report",
)
def _figure_target(args: argparse.Namespace) -> int:
    config = _build_config(args)
    result = run_experiment(config)
    if args.export_json:
        from repro.experiments.io import write_json

        print(f"wrote {write_json(result, args.export_json)}")
    if args.export_csv:
        from repro.experiments.io import write_series_csv

        print(f"wrote {write_series_csv(result, args.export_csv)}")
    if args.target == "report":
        print(render_report(result))
        if args.markdown:
            from repro.experiments.markdown_report import write_markdown_report

            print(f"wrote {write_markdown_report(result, args.markdown)}")
    elif args.target == "fig4":
        series = fig4_lus_per_second(result)
        if args.plot:
            from repro.viz import line_chart

            print(line_chart(series, title="Fig. 4: transmitted LUs per second"))
        else:
            for name, s in series.items():
                print(f"{name}: mean {s.mean():.1f} LU/s over {len(s)}s")
    elif args.target == "fig5":
        series = fig5_accumulated_lus(result)
        if args.plot:
            from repro.viz import line_chart

            print(line_chart(series, title="Fig. 5: accumulated LUs"))
        else:
            for name, s in series.items():
                _, total = s.last()
                print(f"{name}: {int(total)} accumulated LUs")
    elif args.target == "fig6":
        rates = fig6_transmission_rate_by_region(result)
        if args.plot:
            from repro.viz import bar_chart

            rows = [
                (f"{name}/{kind}", value * 100)
                for name, kinds in rates.items()
                for kind, value in kinds.items()
            ]
            print(bar_chart(rows, unit="%", title="Fig. 6: transmission rate"))
        else:
            for name, kinds in rates.items():
                print(
                    f"{name}: road {kinds['road']:.1%}, "
                    f"building {kinds['building']:.1%}"
                )
    elif args.target == "fig7":
        data = fig7_rmse_over_time(result)
        if args.plot:
            from repro.viz import line_chart

            flattened = {
                f"{name} ({mode})": series
                for name, modes in data.items()
                for mode, series in modes.items()
            }
            print(line_chart(flattened, title="Fig. 7: RMSE over time"))
        else:
            for name, series in data.items():
                print(
                    f"{name}: mean RMSE w/o LE "
                    f"{series['without_le'].mean():.2f} m, "
                    f"w/ LE {series['with_le'].mean():.2f} m"
                )
    elif args.target in ("fig8", "fig9"):
        data = (
            fig8_rmse_by_region_without_le(result)
            if args.target == "fig8"
            else fig9_rmse_by_region_with_le(result)
        )
        if args.plot:
            from repro.viz import bar_chart

            rows = [
                (f"{name}/{kind}", row[kind])
                for name, row in data.items()
                for kind in ("road", "building")
            ]
            print(bar_chart(rows, unit="m", title=f"{args.target}: RMSE by region"))
        else:
            for name, row in data.items():
                print(
                    f"{name}: road {row['road']:.2f} m, building "
                    f"{row['building']:.2f} m (ratio {row['ratio']:.2f}x)"
                )
    return 0


@register_target(
    "serving",
    description="broker-as-a-service: record / replay LU traces at rate",
)
def _serving_target(args: argparse.Namespace) -> int:
    """Record an LU trace and/or replay one through the ingest service."""
    from repro.serving import (
        ReplayConfig,
        ServingConfig,
        read_trace,
        record_trace,
        replay_trace,
    )
    from repro.telemetry import Telemetry, TelemetryConfig

    if args.smoke:
        from repro.mobility.population import PopulationSpec

        config = ExperimentConfig(
            duration=20.0,
            seed=args.seed,
            population=PopulationSpec(
                road_humans_per_road=1,
                road_vehicles_per_road=1,
                building_stop=1,
                building_random=1,
                building_linear=1,
            ),
        )
        meta, records = record_trace(
            config, lane=args.trace_lane, path=args.record
        )
        print(f"recorded {len(records)} LUs (lane {args.trace_lane})")
        rate = args.rate if args.rate is not None else 2000.0
        sweep = args.sweep_interval or 1.0
    elif args.replay:
        meta, records = read_trace(args.replay)
        print(f"loaded {len(records)} LUs from {args.replay}")
        rate = args.rate if args.rate is not None else 10_000.0
        sweep = args.sweep_interval
    elif args.record:
        meta, records = record_trace(
            _build_config(args), lane=args.trace_lane, path=args.record
        )
        print(
            f"wrote {args.record}: {len(records)} LUs "
            f"(lane {args.trace_lane}, seed {meta['seed']})"
        )
        return 0
    else:
        print(
            "serving needs --record PATH, --replay PATH or --smoke",
            file=sys.stderr,
        )
        return 2

    replay_config = ReplayConfig(
        rate=rate,
        sweep_interval=sweep,
        serving=ServingConfig(shards=args.shards),
    )
    if args.recovery:
        import tempfile

        from repro.serving import run_recovery_gate, write_filtered_export

        wal_dir = args.wal_dir or tempfile.mkdtemp(prefix="repro-wal-")
        gate, golden_export, recovered_export = run_recovery_gate(
            records,
            wal_dir,
            replay=replay_config,
            crash_shard=args.crash_shard,
            crash_fraction=args.crash_at,
            restart_fraction=args.restart_at,
            snapshot_every=args.snapshot_every,
            trace_meta=meta,
        )
        print(gate.summary())
        if args.export_golden:
            path = write_filtered_export(
                golden_export, gate.affected_nodes, args.export_golden
            )
            print(f"wrote {path}")
        if args.export_recovered:
            path = write_filtered_export(
                recovered_export, gate.affected_nodes, args.export_recovered
            )
            print(f"wrote {path}")
        if args.export_json:
            print(f"wrote {gate.write_json(args.export_json)}")
        if not gate.converged:
            print(
                "recovery DIVERGED on: "
                + ", ".join(gate.divergent_nodes),
                file=sys.stderr,
            )
            return 1
        return 0
    telemetry = Telemetry(TelemetryConfig(enabled=True))
    report = replay_trace(
        records, replay_config, trace_meta=meta, telemetry=telemetry
    )
    print(report.summary())
    if args.export_json:
        print(f"wrote {report.write_json(args.export_json)}")
    return 0


@register_target(
    "population-scaling",
    description="columnar-engine fleet-size sweep: LU rate & RMSE at 1k-100k+ nodes",
)
def _population_scaling_target(args: argparse.Namespace) -> int:
    """Sweep fleet sizes through the columnar engine and print the table."""
    from repro.core.columnar.kernels import EXACT_KERNEL, FAST_KERNEL
    from repro.experiments.scaling import population_sweep, render_population_table

    kernel = EXACT_KERNEL if args.exact_kernel else FAST_KERNEL
    campus = None
    if args.city_blocks is not None:
        import numpy as np

        from repro.campus.generator import generate_grid_campus

        nx, ny = args.city_blocks
        campus = generate_grid_campus(
            blocks_x=nx,
            blocks_y=ny,
            block_size=args.block_size,
            rng=np.random.default_rng(args.seed),
        )
    points = population_sweep(
        tuple(args.node_counts),
        duration=args.sweep_duration,
        seed=args.seed,
        kernel=kernel,
        campus=campus,
        cluster_mode=args.cluster_mode,
        trace_path=args.record_trace,
        trace_lane=args.trace_lane,
    )
    print(render_population_table(points))
    if args.record_trace:
        print(f"recorded trace to {args.record_trace}")
    if args.export_json:
        import json

        payload = [
            {
                "target_nodes": p.target_nodes,
                "node_count": p.node_count,
                "reduction": p.reduction,
                "lu_rate": p.lu_rate,
                "ideal_lu_rate": p.ideal_lu_rate,
                "rmse_with_le": p.rmse_with_le,
                "wall_seconds": p.wall_seconds,
                "steps": p.steps,
                "peak_rss_mb": p.peak_rss_mb,
                "node_steps_per_second": p.node_steps_per_second,
                "cluster_mode": args.cluster_mode,
            }
            for p in points
        ]
        with open(args.export_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.export_json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.target is None or args.list_targets:
        print(list_targets())
        return 0
    return _HANDLERS[args.target](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
