"""Small argument-validation helpers.

They raise ``ValueError`` with a uniform message format so call sites stay
one-liners and error messages stay greppable.
"""

from __future__ import annotations

import math

__all__ = [
    "check_finite",
    "check_positive",
    "check_non_negative",
    "check_in_range",
]


def check_finite(value: float, name: str) -> float:
    """Require *value* to be a finite real number; return it."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Require *value* to be strictly positive; return it."""
    check_finite(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require *value* to be >= 0; return it."""
    check_finite(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Require ``low <= value <= high`` (or strict, if not *inclusive*)."""
    check_finite(value, name)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value
