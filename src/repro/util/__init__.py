"""Shared utilities: seeded RNG streams, unit conversions, validation helpers.

These live at the bottom of the dependency stack; nothing in :mod:`repro.util`
imports any other ``repro`` package.
"""

from repro.util.rng import RngRegistry, child_rng
from repro.util.timeseries import TimeSeries
from repro.util.units import kmh_to_ms, ms_to_kmh
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = [
    "RngRegistry",
    "child_rng",
    "TimeSeries",
    "kmh_to_ms",
    "ms_to_kmh",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
]
