"""A light append-only time series used by meters and error trackers.

Keeps parallel (time, value) lists and converts to numpy arrays on demand.
The simulator produces per-second series of LU counts and RMSE values; this
class centralises binning, accumulation and windowed statistics for them.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["TimeSeries"]


class TimeSeries:
    """An append-only sequence of ``(time, value)`` samples.

    Times must be appended in non-decreasing order; this mirrors how the
    discrete-event simulator produces observations and lets windowed queries
    use binary search.
    """

    def __init__(self, points: Iterable[tuple[float, float]] | None = None) -> None:
        self._times: list[float] = []
        self._values: list[float] = []
        if points is not None:
            for t, v in points:
                self.append(t, v)

    def append(self, time: float, value: float) -> None:
        """Record *value* observed at *time* (non-decreasing times only)."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time must be non-decreasing: {time} < {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def __getitem__(self, index: int) -> tuple[float, float]:
        return self._times[index], self._values[index]

    @property
    def times(self) -> np.ndarray:
        """Sample times as a float array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Sample values as a float array."""
        return np.asarray(self._values, dtype=float)

    def is_empty(self) -> bool:
        """True when no samples have been recorded."""
        return not self._times

    def last(self) -> tuple[float, float]:
        """The most recent ``(time, value)`` sample."""
        if self.is_empty():
            raise IndexError("time series is empty")
        return self._times[-1], self._values[-1]

    def total(self) -> float:
        """Sum of all values (e.g. accumulated LU count)."""
        return float(np.sum(self.values)) if self._times else 0.0

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        if self.is_empty():
            raise ValueError("mean of empty time series")
        return float(np.mean(self.values))

    def cumulative(self) -> "TimeSeries":
        """Running-sum series, aligned to the same times (paper Fig. 5)."""
        out = TimeSeries()
        running = 0.0
        for t, v in self:
            running += v
            out.append(t, running)
        return out

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= time < end``."""
        if end < start:
            raise ValueError(f"window end {end} precedes start {start}")
        times = self.times
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="left"))
        out = TimeSeries()
        for i in range(lo, hi):
            out.append(self._times[i], self._values[i])
        return out

    def bin_sum(self, bin_width: float, duration: float) -> "TimeSeries":
        """Aggregate values into fixed-width bins covering ``[0, duration)``.

        Returns one sample per bin labelled with the bin's start time; empty
        bins contribute zero.  Bins are right-closed — bin ``i`` covers
        ``(i*w, (i+1)*w]`` — because a run of N reporting intervals emits
        events over ``(0, duration]``: each interval's events then land in
        exactly one bin.  A sample at exactly ``t = 0`` joins the first bin.
        """
        if bin_width <= 0:
            raise ValueError(f"bin_width must be > 0, got {bin_width}")
        n_bins = int(np.ceil(duration / bin_width))
        sums = np.zeros(n_bins, dtype=float)
        for t, v in self:
            if 0 <= t <= duration:
                index = int(np.ceil(t / bin_width)) - 1
                sums[max(index, 0)] += v
        out = TimeSeries()
        for i in range(n_bins):
            out.append(i * bin_width, float(sums[i]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeSeries(n={len(self)})"
