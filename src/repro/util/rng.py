"""Deterministic, named random-number streams.

Every stochastic component of the simulator draws from its own named child
generator so that (a) a single experiment seed reproduces the whole run and
(b) adding a new consumer of randomness does not perturb the draws seen by
existing components.  Streams are derived with :class:`numpy.random.SeedSequence`
``spawn``-style keying, which guarantees independence between children.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["child_rng", "spawn_seed", "RngRegistry"]


def _key_to_entropy(key: str) -> int:
    """Hash a stream name into a stable 128-bit integer.

    Python's built-in ``hash`` is salted per process, so we use BLAKE2 to keep
    stream derivation reproducible across runs and machines.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=16).digest()
    return int.from_bytes(digest, "big")


def child_rng(seed: int, name: str) -> np.random.Generator:
    """Return an independent generator for stream *name* under *seed*.

    The same ``(seed, name)`` pair always yields an identical stream, and
    distinct names yield streams that are statistically independent.
    """
    sequence = np.random.SeedSequence([seed, _key_to_entropy(name)])
    return np.random.default_rng(sequence)


def spawn_seed(seed: int, key: str) -> int:
    """Derive a child *experiment* seed for *key* under *seed*.

    Where :func:`child_rng` hands out generators inside one experiment,
    ``spawn_seed`` derives a whole new experiment-level seed — the sweep
    runner uses it to give every (cell, replication) pair its own
    independent seed while remaining reproducible from the base seed.
    The same ``(seed, key)`` pair always yields the same child seed.
    """
    sequence = np.random.SeedSequence([seed, _key_to_entropy(key)])
    return int(sequence.generate_state(1, np.uint64)[0])


class RngRegistry:
    """A factory of named random streams sharing one experiment seed.

    >>> reg = RngRegistry(seed=7)
    >>> a = reg.stream("mobility/mn-001")
    >>> b = reg.stream("mobility/mn-002")
    >>> a is reg.stream("mobility/mn-001")
    True

    Asking twice for the same name returns the *same* generator object, so a
    component may either hold on to its stream or re-fetch it by name.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The experiment-level seed all streams derive from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for stream *name*."""
        if name not in self._streams:
            self._streams[name] = child_rng(self._seed, name)
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a sub-registry whose streams are namespaced under *name*.

        Useful for handing a whole subsystem its own registry without risking
        stream-name collisions with other subsystems.
        """
        return _ForkedRegistry(self, name)

    def spawn_seed(self, name: str) -> int:
        """Derive an independent experiment seed keyed by *name*."""
        return spawn_seed(self._seed, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"


class _ForkedRegistry(RngRegistry):
    """A registry view that prefixes every stream name."""

    def __init__(self, parent: RngRegistry, prefix: str) -> None:
        super().__init__(parent.seed)
        self._parent = parent
        self._prefix = prefix

    def stream(self, name: str) -> np.random.Generator:
        return self._parent.stream(f"{self._prefix}/{name}")

    def fork(self, name: str) -> "RngRegistry":
        return _ForkedRegistry(self._parent, f"{self._prefix}/{name}")

    def spawn_seed(self, name: str) -> int:
        return self._parent.spawn_seed(f"{self._prefix}/{name}")
