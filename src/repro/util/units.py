"""Unit conversions used throughout the mobile-grid simulator.

All internal computation uses SI units: metres, seconds, metres/second.
The paper quotes some velocities in km/h (e.g. vehicles up to 40 km/h),
so conversions live here.
"""

from __future__ import annotations

__all__ = ["kmh_to_ms", "ms_to_kmh", "MINUTE", "HOUR"]

#: Seconds in a minute / hour, for readable scenario definitions.
MINUTE: float = 60.0
HOUR: float = 3600.0

_KMH_PER_MS = 3.6


def kmh_to_ms(kmh: float) -> float:
    """Convert kilometres/hour to metres/second."""
    return kmh / _KMH_PER_MS


def ms_to_kmh(ms: float) -> float:
    """Convert metres/second to kilometres/hour."""
    return ms * _KMH_PER_MS
