"""The full mobile-grid evaluation harness.

One run simulates the Table 1 population on the default campus and pushes
every node's per-second LU through several filtering "lanes" in parallel:

* ``ideal`` — no filtering (the paper's reference);
* ``adf-<f>`` — the Adaptive Distance Filter at DTH factor ``f``;
* ``gdf-<f>`` — the general DF baseline (optional, for ablation A1).

All lanes see the *same* mobility, so comparisons are paired exactly as in
the paper.  Each lane feeds two grid brokers — one with the Location
Estimator, one without — and per-second RMSE is measured against ground
truth for both, yielding every data series of Figs. 4-9 from a single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.broker.broker import BrokerConfig, GridBroker
from repro.campus import Campus, default_campus
from repro.core.adf import AdaptiveDistanceFilter
from repro.core.baselines import (
    FilterPolicy,
    GeneralDistanceFilterPolicy,
    IdealLUPolicy,
)
from repro.core.distance_filter import FilterDecision
from repro.estimation.metrics import rmse
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult, LaneResult, RegionErrors
from repro.mobility.node import MobileNode
from repro.mobility.population import build_population
from repro.network.association import AssociationManager
from repro.network.channel import WirelessChannel
from repro.network.gateway import WirelessGateway
from repro.network.messages import LocationUpdate
from repro.network.traffic import TrafficMeter
from repro.simkernel import Simulator
from repro.telemetry import Telemetry
from repro.util.rng import RngRegistry
from repro.util.timeseries import TimeSeries

__all__ = ["Lane", "MobileGridExperiment", "policy_kind", "run_experiment"]


def policy_kind(policy: FilterPolicy) -> str:
    """The lane-kind tag ("ideal" / "adf" / "gdf") for a filter policy."""
    if isinstance(policy, AdaptiveDistanceFilter):
        return "adf"
    if isinstance(policy, GeneralDistanceFilterPolicy):
        return "gdf"
    return "ideal"


@dataclass
class Lane:
    """One filtering policy plus its measurement apparatus."""

    name: str
    dth_factor: float | None
    policy: FilterPolicy
    meter: TrafficMeter
    broker_with_le: GridBroker
    broker_without_le: GridBroker
    gateways: dict[str, WirelessGateway] = field(default_factory=dict)
    rmse_with_le: TimeSeries = field(default_factory=TimeSeries)
    rmse_without_le: TimeSeries = field(default_factory=TimeSeries)
    region_errors_with_le: RegionErrors = field(default_factory=RegionErrors)
    region_errors_without_le: RegionErrors = field(default_factory=RegionErrors)
    cluster_series: TimeSeries = field(default_factory=TimeSeries)


class MobileGridExperiment:
    """Builds and runs the paper's evaluation."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        campus: Campus | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.campus = campus or default_campus()
        self.rng = RngRegistry(self.config.seed)
        self.telemetry = Telemetry.from_config(self.config.telemetry)
        self.sim = Simulator(telemetry=self.telemetry)
        if self.telemetry.enabled:
            self.telemetry.bind(self.sim, end=self.config.duration)
        self.nodes: list[MobileNode] = build_population(
            self.campus, self.config.population, self.rng
        )
        self._home_region_by_node: dict[str, str] = {
            node.node_id: node.home_region for node in self.nodes
        }
        self._road_region_ids: set[str] = {
            region.region_id for region in self.campus.roads()
        }
        self.lanes: list[Lane] = []
        self._build_lanes()
        # One association view for the whole experiment: which gateway
        # serves each node is a property of mobility, not of the filter
        # policy, so the ideal lane's gateways stand in for all lanes.
        self.associations = AssociationManager(self.lanes[0].gateways)
        self._speed_sum = 0.0
        self._speed_count = 0
        self._classified_right = 0
        self._classified_total = 0

    # -- construction -----------------------------------------------------------
    def _build_lanes(self) -> None:
        self._add_lane("ideal", None, IdealLUPolicy())
        for factor in self.config.dth_factors:
            adf = AdaptiveDistanceFilter(
                self.config.adf_config(factor), telemetry=self.telemetry
            )
            self._add_lane(f"adf-{factor:g}", factor, adf)
        if self.config.include_general_df:
            for factor in self.config.dth_factors:
                gdf = GeneralDistanceFilterPolicy(
                    factor, report_interval=self.config.report_interval
                )
                self._add_lane(f"gdf-{factor:g}", factor, gdf)

    def _add_lane(self, name: str, factor: float | None, policy: FilterPolicy) -> None:
        broker_cfg_on = BrokerConfig(
            use_location_estimator=True,
            smoothing_alpha=self.config.smoothing_alpha,
            report_interval=self.config.report_interval,
        )
        broker_cfg_off = BrokerConfig(
            use_location_estimator=False,
            report_interval=self.config.report_interval,
        )
        lane = Lane(
            name=name,
            dth_factor=factor,
            policy=policy,
            meter=TrafficMeter(
                name, bin_width=min(1.0, self.config.report_interval)
            ),
            broker_with_le=GridBroker(
                broker_cfg_on, telemetry=self.telemetry, name=f"{name}/le-on"
            ),
            broker_without_le=GridBroker(
                broker_cfg_off, telemetry=self.telemetry, name=f"{name}/le-off"
            ),
        )
        channel_rng = self.rng.stream(f"channel/{name}")
        for region in self.campus.regions.values():
            channel = WirelessChannel(
                self.sim,
                channel_rng,
                base_latency=self.config.channel_latency,
                loss_probability=self.config.channel_loss,
                name=f"{name}/{region.region_id}",
                telemetry=self.telemetry,
            )
            lane.gateways[region.region_id] = WirelessGateway(
                region,
                channel,
                sink=lambda lu, lane=lane: self._filter_and_forward(lane, lu),
                telemetry=self.telemetry,
            )
        self.lanes.append(lane)

    def lane(self, name: str) -> Lane:
        """Look up a lane by name (e.g. ``"ideal"``, ``"adf-1"``).

        Lane order is a construction detail; scripts that poke at a
        specific lane should address it by name, not index.
        """
        for lane in self.lanes:
            if lane.name == name:
                return lane
        raise KeyError(
            f"no lane named {name!r}; have {[lane.name for lane in self.lanes]}"
        )

    # -- per-LU path ---------------------------------------------------------------
    def _filter_and_forward(self, lane: Lane, update: LocationUpdate) -> None:
        decision = lane.policy.process(update)
        if decision is FilterDecision.TRANSMIT:
            dth = self._current_dth(lane.policy, update.node_id)
            if dth > 0:
                update = replace(update, dth=dth)
            lane.meter.count(
                update.timestamp,
                update.region_id,
                size_bytes=update.size_bytes,
                node_id=update.node_id,
            )
            lane.broker_with_le.receive_update(update)
            lane.broker_without_le.receive_update(update)

    @staticmethod
    def _current_dth(policy: FilterPolicy, node_id: str) -> float:
        """The DTH the filter will hold this node to until its next LU."""
        if isinstance(policy, AdaptiveDistanceFilter):
            return policy.dth_of(node_id)
        if isinstance(policy, GeneralDistanceFilterPolicy):
            return policy.dth_policy.dth_for(node_id)
        return 0.0

    # -- one reporting interval ------------------------------------------------------
    def _step(self) -> None:
        now = self.sim.now
        dt = self.config.report_interval
        updates: list[LocationUpdate] = []
        for node in self.nodes:
            sample = node.advance(dt)
            self._speed_sum += sample.speed
            self._speed_count += 1
            region = self.campus.region_at(sample.position)
            region_id = region.region_id if region else node.home_region
            update = LocationUpdate(
                sender=node.node_id,
                timestamp=now,
                node_id=node.node_id,
                position=sample.position,
                velocity=sample.velocity,
                region_id=region_id,
            )
            self.associations.observe(update)
            updates.append(update)
        for lane in self.lanes:
            for update in updates:
                self._gateway_for(lane, update).receive(update)
            if isinstance(lane.policy, AdaptiveDistanceFilter):
                lane.policy.tick(now)
                lane.cluster_series.append(
                    now,
                    float(lane.policy.cluster_manager.clusterer.cluster_count()),
                )
            lane.broker_with_le.tick(now)
            lane.broker_without_le.tick(now)
        self._measure(now)
        self._score_classifier()

    def _gateway_for(self, lane: Lane, update: LocationUpdate) -> WirelessGateway:
        """The gateway serving *update*'s region.

        When the update's region has no gateway (e.g. a node wandered off
        every mapped region), fall back to the gateway of *that node's*
        home region — not an arbitrary node's.  An update from an unknown
        node with an unmapped region falls back to the first gateway so a
        malformed update stays deterministic instead of crashing the run.
        """
        gateway = lane.gateways.get(update.region_id)
        if gateway is None:
            home = self._home_region_by_node.get(update.node_id, "")
            gateway = lane.gateways.get(home)
        if gateway is None:
            gateway = next(iter(lane.gateways.values()))
        return gateway

    def _node_on_road(self, node: MobileNode) -> bool:
        """Whether *node* currently stands on a road region.

        Classification is by membership of the node's *current* region in
        ``campus.roads()`` — not by its home region, which goes stale the
        moment the node moves, and not by a name-prefix convention, which
        breaks for campuses whose road ids don't start with "R".
        """
        region = self.campus.region_at(node.position)
        region_id = region.region_id if region is not None else node.home_region
        return region_id in self._road_region_ids

    def _measure(self, now: float) -> None:
        # Road membership is a property of mobility, not of the lane, so
        # resolve it once per node per step rather than once per lane.
        on_road = [self._node_on_road(node) for node in self.nodes]
        for lane in self.lanes:
            errors_on: list[float] = []
            errors_off: list[float] = []
            for node, is_road in zip(self.nodes, on_road):
                truth = node.position
                believed_on = lane.broker_with_le.location_db.position_of(
                    node.node_id
                )
                believed_off = lane.broker_without_le.location_db.position_of(
                    node.node_id
                )
                if believed_on is not None:
                    err = truth.distance_to(believed_on)
                    errors_on.append(err)
                    lane.region_errors_with_le.add(err, is_road=is_road)
                if believed_off is not None:
                    err = truth.distance_to(believed_off)
                    errors_off.append(err)
                    lane.region_errors_without_le.add(err, is_road=is_road)
            if errors_on:
                lane.rmse_with_le.append(now, rmse(errors_on))
            if errors_off:
                lane.rmse_without_le.append(now, rmse(errors_off))

    def _score_classifier(self) -> None:
        adf = next(
            (
                lane.policy
                for lane in self.lanes
                if isinstance(lane.policy, AdaptiveDistanceFilter)
            ),
            None,
        )
        if adf is None:
            return
        for node in self.nodes:
            if node.true_state is None:
                continue
            label = adf.label_of(node.node_id)
            if label is None:
                continue
            self._classified_total += 1
            if label is node.true_state:
                self._classified_right += 1

    # -- the run ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the configured duration and collect all measurements."""
        interval = self.config.report_interval
        self.sim.schedule_every(
            interval,
            self._step,
            start=interval,
            end=self.config.duration,
            label="experiment:step",
        )
        self.sim.run_until(self.config.duration)
        # Drain in-flight channel deliveries (non-zero latency puts the
        # final interval's LUs slightly past the nominal end time).  The
        # periodic step schedule is bounded by `end`, so this terminates.
        self.sim.run()
        return self._collect()

    def _collect(self) -> ExperimentResult:
        lanes: dict[str, LaneResult] = {}
        for lane in self.lanes:
            summary: dict[str, float] = {}
            if isinstance(lane.policy, AdaptiveDistanceFilter):
                summary = lane.policy.summary()
            lanes[lane.name] = LaneResult(
                name=lane.name,
                dth_factor=lane.dth_factor,
                meter=lane.meter,
                rmse_with_le=lane.rmse_with_le,
                rmse_without_le=lane.rmse_without_le,
                region_errors_with_le=lane.region_errors_with_le,
                region_errors_without_le=lane.region_errors_without_le,
                filter_summary=summary,
                cluster_series=lane.cluster_series,
                kind=policy_kind(lane.policy),
            )
        accuracy = (
            self._classified_right / self._classified_total
            if self._classified_total
            else 0.0
        )
        mean_speed = self._speed_sum / self._speed_count if self._speed_count else 0.0
        return ExperimentResult(
            duration=self.config.duration,
            report_interval=self.config.report_interval,
            node_count=len(self.nodes),
            lanes=lanes,
            road_region_ids=[r.region_id for r in self.campus.roads()],
            building_region_ids=[r.region_id for r in self.campus.buildings()],
            classification_accuracy=accuracy,
            average_fleet_speed=mean_speed,
            handoffs=self.associations.stats.handoffs,
            telemetry=self.telemetry.snapshot(),
        )


def run_experiment(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Convenience wrapper: build, run and collect in one call."""
    return MobileGridExperiment(config).run()
