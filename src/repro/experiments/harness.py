"""The full mobile-grid evaluation harness.

One run simulates the Table 1 population on the default campus and pushes
every node's per-second LU through several filtering "lanes" in parallel:

* ``ideal`` — no filtering (the paper's reference);
* ``adf-<f>`` — the Adaptive Distance Filter at DTH factor ``f``;
* ``gdf-<f>`` — the general DF baseline (optional, for ablation A1).

All lanes see the *same* mobility, so comparisons are paired exactly as in
the paper.  Each lane feeds two grid brokers — one with the Location
Estimator, one without — and per-second RMSE is measured against ground
truth for both, yielding every data series of Figs. 4-9 from a single run.
"""

from __future__ import annotations

import functools
import math
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.broker.broker import BrokerConfig, GridBroker
from repro.broker.location_db import LocationRecord, RecordSource
from repro.campus import Campus, default_campus
from repro.core.adf import AdaptiveDistanceFilter
from repro.core.baselines import (
    FilterPolicy,
    GeneralDistanceFilterPolicy,
    IdealLUPolicy,
)
from repro.core.distance_filter import FilterDecision
from repro.estimation.metrics import rmse
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult, LaneResult, RegionErrors
from repro.faults.injector import FaultInjector
from repro.mobility.node import MobileNode
from repro.mobility.population import build_population
from repro.network.association import AssociationManager
from repro.network.channel import WirelessChannel
from repro.network.gateway import WirelessGateway
from repro.network.messages import LocationUpdate, SequenceSource
from repro.network.traffic import TrafficMeter
from repro.simkernel import Simulator
from repro.telemetry import Telemetry
from repro.util.rng import RngRegistry
from repro.util.timeseries import TimeSeries

__all__ = ["Lane", "MobileGridExperiment", "policy_kind", "run_experiment"]


def policy_kind(policy: FilterPolicy) -> str:
    """The lane-kind tag ("ideal" / "adf" / "gdf") for a filter policy."""
    if isinstance(policy, AdaptiveDistanceFilter):
        return "adf"
    if isinstance(policy, GeneralDistanceFilterPolicy):
        return "gdf"
    return "ideal"


@dataclass
class Lane:
    """One filtering policy plus its measurement apparatus."""

    name: str
    dth_factor: float | None
    policy: FilterPolicy
    meter: TrafficMeter
    broker_with_le: GridBroker
    broker_without_le: GridBroker
    gateways: dict[str, WirelessGateway] = field(default_factory=dict)
    rmse_with_le: TimeSeries = field(default_factory=TimeSeries)
    rmse_without_le: TimeSeries = field(default_factory=TimeSeries)
    region_errors_with_le: RegionErrors = field(default_factory=RegionErrors)
    region_errors_without_le: RegionErrors = field(default_factory=RegionErrors)
    cluster_series: TimeSeries = field(default_factory=TimeSeries)
    #: Per-node DTH lookup bound once from the policy type (None for
    #: policies without one, e.g. ideal) — the per-LU isinstance dance of
    #: the seed's ``_current_dth`` resolved at lane construction instead.
    dth_getter: Callable[[str], float] | None = None
    #: True for the ideal lane: its policy transmits unconditionally, so
    #: the per-LU process() call reduces to a counter increment.
    is_ideal: bool = False


class MobileGridExperiment:
    """Builds and runs the paper's evaluation."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        campus: Campus | None = None,
        lu_observer: Callable[[str, LocationUpdate], None] | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        #: Called as ``lu_observer(lane_name, update)`` for every LU that
        #: survives a lane's filter (the serving trace recorder taps this).
        #: None costs one identity test per transmitted LU.
        self._lu_observer = lu_observer
        self.campus = campus or default_campus()
        self.rng = RngRegistry(self.config.seed)
        self.telemetry = Telemetry.from_config(self.config.telemetry)
        self.sim = Simulator(telemetry=self.telemetry)
        if self.telemetry.enabled:
            self.telemetry.bind(self.sim, end=self.config.duration)
        self.nodes: list[MobileNode] = build_population(
            self.campus, self.config.population, self.rng
        )
        self._home_region_by_node: dict[str, str] = {
            node.node_id: node.home_region for node in self.nodes
        }
        self._road_region_ids: set[str] = {
            region.region_id for region in self.campus.roads()
        }
        self._node_ids: list[str] = [node.node_id for node in self.nodes]
        # Per-run sequence source: every LU the harness emits takes its seq
        # from here, so seq values depend only on this run's own traffic —
        # not on whatever else the process built before (which made them
        # scheduling-dependent under the process-parallel sweep runner).
        self._seq = SequenceSource()
        self.lanes: list[Lane] = []
        self._build_lanes()
        # One association view for the whole experiment: which gateway
        # serves each node is a property of mobility, not of the filter
        # policy, so the ideal lane's gateways stand in for all lanes.
        self.associations = AssociationManager(self.lanes[0].gateways)
        self.fault_injector: FaultInjector | None = None
        if self.config.faults is not None and self.config.faults:
            self.fault_injector = FaultInjector(
                self.config.faults, telemetry=self.telemetry
            )
            self.fault_injector.attach(
                self.sim,
                gateways=[
                    gateway
                    for lane in self.lanes
                    for gateway in lane.gateways.values()
                ],
            )
        self._speed_sum = 0.0
        self._speed_count = 0
        self._classified_right = 0
        self._classified_total = 0

    # -- construction -----------------------------------------------------------
    def _build_lanes(self) -> None:
        self._add_lane("ideal", None, IdealLUPolicy())
        for factor in self.config.dth_factors:
            adf = AdaptiveDistanceFilter(
                self.config.adf_config(factor), telemetry=self.telemetry
            )
            self._add_lane(f"adf-{factor:g}", factor, adf)
        if self.config.include_general_df:
            for factor in self.config.dth_factors:
                gdf = GeneralDistanceFilterPolicy(
                    factor, report_interval=self.config.report_interval
                )
                self._add_lane(f"gdf-{factor:g}", factor, gdf)

    def _add_lane(self, name: str, factor: float | None, policy: FilterPolicy) -> None:
        broker_cfg_on = BrokerConfig(
            use_location_estimator=True,
            smoothing_alpha=self.config.smoothing_alpha,
            report_interval=self.config.report_interval,
        )
        broker_cfg_off = BrokerConfig(
            use_location_estimator=False,
            report_interval=self.config.report_interval,
        )
        lane = Lane(
            name=name,
            dth_factor=factor,
            policy=policy,
            meter=TrafficMeter(
                name, bin_width=min(1.0, self.config.report_interval)
            ),
            broker_with_le=GridBroker(
                broker_cfg_on, telemetry=self.telemetry, name=f"{name}/le-on"
            ),
            broker_without_le=GridBroker(
                broker_cfg_off, telemetry=self.telemetry, name=f"{name}/le-off"
            ),
            dth_getter=self._dth_getter(policy),
            is_ideal=type(policy) is IdealLUPolicy,
        )
        channel_rng = self.rng.stream(f"channel/{name}")
        for region in self.campus.regions.values():
            channel = WirelessChannel(
                self.sim,
                channel_rng,
                base_latency=self.config.channel_latency,
                loss_probability=self.config.channel_loss,
                name=f"{name}/{region.region_id}",
                telemetry=self.telemetry,
            )
            lane.gateways[region.region_id] = WirelessGateway(
                region,
                channel,
                sink=functools.partial(self._filter_and_forward, lane),
                telemetry=self.telemetry,
            )
        self.lanes.append(lane)

    def lane(self, name: str) -> Lane:
        """Look up a lane by name (e.g. ``"ideal"``, ``"adf-1"``).

        Lane order is a construction detail; scripts that poke at a
        specific lane should address it by name, not index.
        """
        for lane in self.lanes:
            if lane.name == name:
                return lane
        raise KeyError(
            f"no lane named {name!r}; have {[lane.name for lane in self.lanes]}"
        )

    # -- per-LU path ---------------------------------------------------------------
    def _filter_and_forward(self, lane: Lane, update: LocationUpdate) -> None:
        if lane.is_ideal:
            # IdealLUPolicy.process inlined: unconditional TRANSMIT plus its
            # transmitted counter; the ideal lane has no dth_getter, so the
            # update is forwarded unmodified.
            lane.policy.transmitted += 1
        else:
            decision = lane.policy.process(update)
            if decision is not FilterDecision.TRANSMIT:
                return
            getter = lane.dth_getter
            dth = getter(update.node_id) if getter is not None else 0.0
            if dth > 0:
                # Direct construction beats dataclasses.replace on the hot
                # path; seq is carried over, matching replace's semantics.
                update = LocationUpdate(
                    sender=update.sender,
                    timestamp=update.timestamp,
                    seq=update.seq,
                    node_id=update.node_id,
                    position=update.position,
                    velocity=update.velocity,
                    region_id=update.region_id,
                    dth=dth,
                )
        # Inlined TrafficMeter.count (same binning and counters): the meter
        # is charged once per transmitted LU, and the call plus its keyword
        # arguments showed up in every profile.
        meter = lane.meter
        timestamp = update.timestamp
        region_id = update.region_id
        node_id = update.node_id
        width = meter._bin_width
        if width is None:
            meter._events.append((timestamp, region_id))
        else:
            index = math.ceil(timestamp / width) - 1
            meter._bins[index if index > 0 else 0] += 1
        meter._total += 1
        meter._per_region[region_id] += 1
        if node_id:
            meter._per_node[node_id] += 1
        meter._bytes += update.size_bytes
        if self._lu_observer is not None:
            self._lu_observer(lane.name, update)
        # Both brokers store an identical RECEIVED record; build it once.
        record = LocationRecord(
            node_id=node_id,
            time=timestamp,
            position=update.position,
            source=RecordSource.RECEIVED,
        )
        lane.broker_with_le.receive_update(update, record)
        lane.broker_without_le.receive_update(update, record)

    @staticmethod
    def _dth_getter(policy: FilterPolicy) -> Callable[[str], float] | None:
        """The per-node DTH lookup for *policy*, resolved once per lane."""
        if isinstance(policy, AdaptiveDistanceFilter):
            # The getter runs immediately after process() for the same
            # update, so the DTH process() just derived is still current —
            # no second cluster lookup needed.
            return lambda node_id: policy.last_dth
        if isinstance(policy, GeneralDistanceFilterPolicy):
            return policy.dth_policy.dth_for
        return None

    # -- one reporting interval ------------------------------------------------------
    def _step(self) -> None:
        """Advance mobility one interval and push the results through every lane.

        Each node's region is resolved exactly *once* per step (via the
        campus spatial index) and threaded through to measurement — the
        seed code paid a second full region scan per node in
        ``_measure``'s road classification.
        """
        now = self.sim.now
        dt = self.config.report_interval
        updates: list[LocationUpdate] = []
        positions: list[tuple[float, float]] = []
        on_road: list[bool] = []
        region_at = self.campus.region_at
        road_ids = self._road_region_ids
        take_seq = self._seq.take
        observe = self.associations.observe
        # Read-only view of the serving map: observe() is a no-op when
        # the node's serving region is unchanged (the overwhelmingly common
        # case — handoffs are rare), so only region changes pay the call.
        serving = self.associations.serving_view
        speed_sum = self._speed_sum
        speed_count = self._speed_count
        for node in self.nodes:
            sample = node.advance(dt)
            velocity = sample.velocity
            # math.hypot == Vec2.norm == MotionSample.speed, sans two hops.
            speed_sum += math.hypot(velocity.x, velocity.y)
            speed_count += 1
            position = sample.position
            region = region_at(position)
            node_id = node.node_id
            region_id = region.region_id if region else node.home_region
            positions.append((position.x, position.y))
            on_road.append(region_id in road_ids)
            update = LocationUpdate(
                sender=node_id,
                timestamp=now,
                seq=take_seq(),
                node_id=node_id,
                position=position,
                velocity=velocity,
                region_id=region_id,
            )
            if serving.get(node_id) != region_id:
                observe(update)
            updates.append(update)
        self._speed_sum = speed_sum
        self._speed_count = speed_count
        for lane in self.lanes:
            gateways = lane.gateways
            fallback = self._gateway_for
            fwd = self._filter_and_forward
            for update in updates:
                gateway = gateways.get(update.region_id)
                if gateway is None:
                    gateway = fallback(lane, update)
                if gateway._fused_uplink and gateway.operational:
                    # Inlined WirelessGateway.receive fused fast path:
                    # same gateway/channel counters, synchronous delivery
                    # straight into the filter without the partial-bound
                    # sink hop.
                    gateway.received += 1
                    stats = gateway._uplink.stats
                    stats.sent += 1
                    stats.bytes_sent += update.size_bytes
                    stats.delivered += 1
                    gateway.forwarded += 1
                    fwd(lane, update)
                else:
                    gateway.receive(update)
            if isinstance(lane.policy, AdaptiveDistanceFilter):
                lane.policy.tick(now)
                lane.cluster_series.append(
                    now,
                    float(lane.policy.cluster_manager.clusterer.cluster_count()),
                )
            lane.broker_with_le.tick(now)
            lane.broker_without_le.tick(now)
        self._measure(now, positions, on_road)
        self._score_classifier()

    def _gateway_for(self, lane: Lane, update: LocationUpdate) -> WirelessGateway:
        """The gateway serving *update*'s region.

        When the update's region has no gateway (e.g. a node wandered off
        every mapped region), fall back to the gateway of *that node's*
        home region — not an arbitrary node's.  An update from an unknown
        node with an unmapped region falls back to the lexicographically
        first gateway region, so a malformed update lands on a gateway
        chosen by the campus, not by dict insertion history, and stays
        deterministic instead of crashing the run.
        """
        gateway = lane.gateways.get(update.region_id)
        if gateway is None:
            home = self._home_region_by_node.get(update.node_id, "")
            gateway = lane.gateways.get(home)
        if gateway is None:
            gateway = lane.gateways[min(lane.gateways)]
        return gateway

    def _measure(
        self,
        now: float,
        positions: list[tuple[float, float]],
        on_road: list[bool],
    ) -> None:
        """Per-lane location error against the *positions* ground truth.

        Road membership (*on_road*) and the truth positions were resolved
        once in ``_step`` — a property of mobility, not of the lane — and
        are shared by every lane and both brokers.  Per-node distances use
        scalar ``math.hypot`` (bit-identical with the seed's
        ``Vec2.distance_to``); the RMSE reduction over each error vector
        is batched through numpy.
        """
        node_ids = self._node_ids
        hypot = math.hypot
        for lane in self.lanes:
            for location_db, series, region_errors in (
                (
                    lane.broker_with_le.location_db,
                    lane.rmse_with_le,
                    lane.region_errors_with_le,
                ),
                (
                    lane.broker_without_le.location_db,
                    lane.rmse_without_le,
                    lane.region_errors_without_le,
                ),
            ):
                latest = location_db.latest_map
                errors: list[float] = []
                append = errors.append
                # Fold the per-kind squared sums locally in the same
                # per-sample order RegionErrors.add would, then write back
                # once — identical floating-point results, no method call
                # per sample.
                road_sq = region_errors.road_sq_sum
                road_n = region_errors.road_count
                bld_sq = region_errors.building_sq_sum
                bld_n = region_errors.building_count
                for (tx, ty), node_id, is_road in zip(positions, node_ids, on_road):
                    record = latest.get(node_id)
                    if record is None:
                        continue
                    believed = record.position
                    err = hypot(tx - believed.x, ty - believed.y)
                    append(err)
                    if is_road:
                        road_sq += err * err
                        road_n += 1
                    else:
                        bld_sq += err * err
                        bld_n += 1
                region_errors.road_sq_sum = road_sq
                region_errors.road_count = road_n
                region_errors.building_sq_sum = bld_sq
                region_errors.building_count = bld_n
                if errors:
                    series.append(now, rmse(np.asarray(errors)))

    def _score_classifier(self) -> None:
        adf = next(
            (
                lane.policy
                for lane in self.lanes
                if isinstance(lane.policy, AdaptiveDistanceFilter)
            ),
            None,
        )
        if adf is None:
            return
        labels = adf.classifier._labels
        right = 0
        total = 0
        for node in self.nodes:
            true_state = node.true_state
            if true_state is None:
                continue
            label = labels.get(node.node_id)
            if label is None:
                continue
            total += 1
            if label is true_state:
                right += 1
        self._classified_total += total
        self._classified_right += right

    # -- the run ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the configured duration and collect all measurements."""
        interval = self.config.report_interval
        self.sim.schedule_every(
            interval,
            self._step,
            start=interval,
            end=self.config.duration,
            label="experiment:step",
        )
        self.sim.run_until(self.config.duration)
        # Drain in-flight channel deliveries (non-zero latency puts the
        # final interval's LUs slightly past the nominal end time).  The
        # periodic step schedule is bounded by `end`, so this terminates.
        self.sim.run()
        return self._collect()

    def _collect(self) -> ExperimentResult:
        lanes: dict[str, LaneResult] = {}
        for lane in self.lanes:
            summary: dict[str, float] = {}
            if isinstance(lane.policy, AdaptiveDistanceFilter):
                summary = lane.policy.summary()
            lanes[lane.name] = LaneResult(
                name=lane.name,
                dth_factor=lane.dth_factor,
                meter=lane.meter,
                rmse_with_le=lane.rmse_with_le,
                rmse_without_le=lane.rmse_without_le,
                region_errors_with_le=lane.region_errors_with_le,
                region_errors_without_le=lane.region_errors_without_le,
                filter_summary=summary,
                cluster_series=lane.cluster_series,
                kind=policy_kind(lane.policy),
            )
        accuracy = (
            self._classified_right / self._classified_total
            if self._classified_total
            else 0.0
        )
        mean_speed = self._speed_sum / self._speed_count if self._speed_count else 0.0
        return ExperimentResult(
            duration=self.config.duration,
            report_interval=self.config.report_interval,
            node_count=len(self.nodes),
            lanes=lanes,
            road_region_ids=[r.region_id for r in self.campus.roads()],
            building_region_ids=[r.region_id for r in self.campus.buildings()],
            classification_accuracy=accuracy,
            average_fleet_speed=mean_speed,
            handoffs=self.associations.stats.handoffs,
            telemetry=self.telemetry.snapshot(),
        )


def run_experiment(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Convenience wrapper: build, run and collect in one call."""
    return MobileGridExperiment(config).run()
