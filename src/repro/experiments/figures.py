"""Per-figure/table data generators.

Each function turns an :class:`ExperimentResult` (or, for Table 1, just a
population spec) into the rows/series the corresponding paper figure
reports.  The benchmark harness prints these; EXPERIMENTS.md records them
against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campus import Campus, default_campus
from repro.experiments.results import ExperimentResult
from repro.mobility.population import PopulationSpec, table1_spec
from repro.util.timeseries import TimeSeries

__all__ = [
    "Table1Row",
    "table1_specification",
    "fig4_lus_per_second",
    "fig5_accumulated_lus",
    "fig6_transmission_rate_by_region",
    "fig7_rmse_over_time",
    "fig8_rmse_by_region_without_le",
    "fig9_rmse_by_region_with_le",
]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    region_kind: str
    region_count: int
    mobility_pattern: str
    node_type: str
    node_count: int
    velocity_range: str


def table1_specification(
    spec: PopulationSpec | None = None, campus: Campus | None = None
) -> list[Table1Row]:
    """Reproduce Table 1 (MN specification) from the population spec."""
    spec = spec or table1_spec()
    campus = campus or default_campus()
    n_roads = len(campus.roads())
    n_buildings = len(campus.buildings())

    def fmt(band) -> str:
        if band.low == band.high:
            return f"{band.low:g}m/s"
        return f"{band.low:g}~{band.high:g}m/s"

    return [
        Table1Row(
            "Road", n_roads, "LMS", "Human",
            n_roads * spec.road_humans_per_road, fmt(spec.road_human_band),
        ),
        Table1Row(
            "Road", n_roads, "LMS", "Vehicle",
            n_roads * spec.road_vehicles_per_road, fmt(spec.road_vehicle_band),
        ),
        Table1Row(
            "Building", n_buildings, "SS", "Human",
            n_buildings * spec.building_stop, fmt(spec.building_stop_band),
        ),
        Table1Row(
            "Building", n_buildings, "RMS", "Human",
            n_buildings * spec.building_random, fmt(spec.building_random_band),
        ),
        Table1Row(
            "Building", n_buildings, "LMS", "Human",
            n_buildings * spec.building_linear, fmt(spec.building_linear_band),
        ),
    ]


def fig4_lus_per_second(result: ExperimentResult) -> dict[str, TimeSeries]:
    """Fig. 4: transmitted LUs per second, per lane."""
    return {
        name: lane.meter.per_second(result.duration)
        for name, lane in result.lanes.items()
    }


def fig5_accumulated_lus(result: ExperimentResult) -> dict[str, TimeSeries]:
    """Fig. 5: accumulated LU count over the run, per lane."""
    return {
        name: lane.meter.accumulated(result.duration)
        for name, lane in result.lanes.items()
    }


def fig6_transmission_rate_by_region(
    result: ExperimentResult,
) -> dict[str, dict[str, float]]:
    """Fig. 6: fraction of ideal LUs transmitted, per region kind and lane.

    Only filtering lanes appear (the ideal lane is the 100 % reference).
    """
    return {
        name: result.transmission_rate_by_kind(name)
        for name in result.lanes
        if name != "ideal"
    }


def fig7_rmse_over_time(
    result: ExperimentResult,
) -> dict[str, dict[str, TimeSeries]]:
    """Fig. 7: per-second RMSE, with and without the Location Estimator."""
    return {
        name: {
            "with_le": lane.rmse_with_le,
            "without_le": lane.rmse_without_le,
        }
        for name, lane in result.lanes.items()
        if name != "ideal"
    }


def fig8_rmse_by_region_without_le(
    result: ExperimentResult,
) -> dict[str, dict[str, float]]:
    """Fig. 8: whole-run RMSE by region kind, LE disabled."""
    out: dict[str, dict[str, float]] = {}
    for name, lane in result.lanes.items():
        if name == "ideal":
            continue
        errors = lane.region_errors_without_le
        out[name] = {
            "road": errors.road_rmse,
            "building": errors.building_rmse,
            "ratio": errors.road_to_building_ratio,
        }
    return out


def fig9_rmse_by_region_with_le(
    result: ExperimentResult,
) -> dict[str, dict[str, float]]:
    """Fig. 9: whole-run RMSE by region kind, LE enabled."""
    out: dict[str, dict[str, float]] = {}
    for name, lane in result.lanes.items():
        if name == "ideal":
            continue
        errors = lane.region_errors_with_le
        out[name] = {
            "road": errors.road_rmse,
            "building": errors.building_rmse,
            "ratio": errors.road_to_building_ratio,
        }
    return out
