"""Chaos study: the ADF pipeline under injected faults.

The paper's evaluation runs on an ideal wireless substrate; this study
measures what the same pipeline does on a hostile one, and what the
recovery machinery buys back.  One run simulates the Table 1 population,
filters every LU through a single ADF (so all transports see *identical*
offered traffic), and delivers the surviving LUs over three paired lanes:

* ``baseline`` — a fault-free transparent transport (the control);
* ``plain``    — fire-and-forget through a wireless gateway whose uplink
  the fault schedule degrades (Gilbert–Elliott burst loss, latency) and
  whose gateway the schedule takes down;
* ``arq``      — the same faulty substrate, but through
  :class:`~repro.network.reliable.ReliableLink` (ack-by-seq, exponential
  backoff, bounded retries); arrivals during a gateway outage are not
  acked, so the retry budget rides out short outages.

Each lane feeds a :class:`~repro.broker.broker.GridBroker` running the
graceful-degradation policy (bounded extrapolation + quarantine), and the
study reports LU overhead, delivery, RMSE inflation versus baseline, and
post-fault recovery time.  Everything — the fault timeline included — is a
deterministic function of the seed and the fault intensity, so a chaos
report is byte-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.broker.broker import BrokerConfig, GridBroker
from repro.campus import Region, RegionKind, default_campus
from repro.campus.region import NetworkAccess
from repro.core.adf import AdaptiveDistanceFilter
from repro.core.distance_filter import FilterDecision
from repro.estimation.metrics import rmse
from repro.experiments.config import ExperimentConfig
from repro.faults import (
    ChannelDegradation,
    FaultInjector,
    FaultSchedule,
    GatewayOutage,
    RegionBlackout,
)
from repro.geometry import Rect, Vec2
from repro.mobility.population import build_population
from repro.network.channel import WirelessChannel
from repro.network.gateway import WirelessGateway
from repro.network.messages import LocationUpdate, SequenceSource
from repro.network.reliable import ReliableLink
from repro.simkernel import Simulator
from repro.util.rng import RngRegistry
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "ChaosConfig",
    "ChaosLaneStats",
    "ChaosResult",
    "ResilienceReport",
    "chaos_study",
    "chaos_sweep",
]

#: The synthetic region id the aggregate uplink gateway covers; fault
#: schedules target it by name.
UPLINK_REGION_ID = "uplink"


def _uplink_region() -> Region:
    """The synthetic region the chaos gateway nominally covers."""
    return Region(
        region_id=UPLINK_REGION_ID,
        name="chaos uplink",
        kind=RegionKind.BUILDING,
        bounds=Rect(-1e9, -1e9, 1e9, 1e9),
        access=NetworkAccess.CELLULAR,
        entrance=Vec2(0.0, 0.0),
    )


@dataclass(frozen=True)
class ChaosConfig:
    """Chaos-study tunables (on top of an :class:`ExperimentConfig`)."""

    dth_factor: float = 1.0
    #: ARQ parameters.  The default budget's cumulative backoff span
    #: (0.6 * (2^7 - 1) ≈ 76 s) deliberately exceeds the outage windows
    #: `FaultSchedule.from_intensity` generates, so the reliable lane can
    #: ride out a dead gateway, not just burst loss.
    ack_timeout: float = 0.6
    backoff_factor: float = 2.0
    max_retries: int = 6
    #: Broker graceful-degradation policy (reporting-interval multiples).
    max_extrapolation_intervals: float = 10.0
    quarantine_intervals: float = 30.0
    #: Include a gateway-outage window in intensity-derived schedules.
    outages: bool = True
    #: Include node churn in intensity-derived schedules.
    churn: bool = False
    #: Recovery detector: a lane has recovered from a fault window once its
    #: step RMSE returns within ``factor * baseline + slack`` metres.
    recovery_factor: float = 1.5
    recovery_slack: float = 0.75

    def __post_init__(self) -> None:
        check_positive(self.dth_factor, "dth_factor")
        check_positive(self.ack_timeout, "ack_timeout")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        check_positive(self.max_extrapolation_intervals, "max_extrapolation_intervals")
        check_positive(self.quarantine_intervals, "quarantine_intervals")
        check_positive(self.recovery_factor, "recovery_factor")
        if self.recovery_slack < 0:
            raise ValueError(
                f"recovery_slack must be >= 0, got {self.recovery_slack}"
            )


@dataclass(frozen=True)
class ChaosLaneStats:
    """One transport lane's outcome."""

    name: str
    delivered: int
    lost: int
    transmissions: int
    retransmits: int
    duplicates: int
    gave_up: int
    acks_sent: int
    bytes_sent: int
    mean_rmse: float
    rmse_inflation: float
    recovery_time: float
    quarantines: int
    resyncs: int
    stale_lus_dropped: int

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "delivered": self.delivered,
            "lost": self.lost,
            "transmissions": self.transmissions,
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
            "gave_up": self.gave_up,
            "acks_sent": self.acks_sent,
            "bytes_sent": self.bytes_sent,
            "mean_rmse": self.mean_rmse,
            "rmse_inflation": self.rmse_inflation,
            "recovery_time": self.recovery_time,
            "quarantines": self.quarantines,
            "resyncs": self.resyncs,
            "stale_lus_dropped": self.stale_lus_dropped,
        }


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one chaos run at one fault intensity."""

    intensity: float
    seed: int
    duration: float
    node_count: int
    offered: int
    baseline_rmse: float
    plain: ChaosLaneStats
    arq: ChaosLaneStats
    #: Of the LUs the plain lane lost, the fraction the ARQ lane delivered.
    recovered_fraction: float
    #: ARQ data transmissions per offered LU (1.0 = no retransmits).
    lu_overhead: float
    schedule: tuple[dict, ...]
    timeline: tuple[dict, ...]
    disconnections: int

    def to_json_dict(self) -> dict:
        return {
            "intensity": self.intensity,
            "seed": self.seed,
            "duration": self.duration,
            "node_count": self.node_count,
            "offered": self.offered,
            "baseline_rmse": self.baseline_rmse,
            "plain": self.plain.to_json_dict(),
            "arq": self.arq.to_json_dict(),
            "recovered_fraction": self.recovered_fraction,
            "lu_overhead": self.lu_overhead,
            "schedule": list(self.schedule),
            "timeline": list(self.timeline),
            "disconnections": self.disconnections,
        }


class _Lane:
    """One transport lane's live plumbing during a run."""

    __slots__ = ("name", "broker", "delivered", "step_rmse")

    def __init__(self, name: str, broker: GridBroker) -> None:
        self.name = name
        self.broker = broker
        self.delivered = 0
        self.step_rmse: list[float] = []

    def ingest(self, update: LocationUpdate) -> None:
        self.delivered += 1
        self.broker.receive_update(update)


def chaos_study(
    config: ExperimentConfig | None = None,
    *,
    chaos: ChaosConfig | None = None,
    intensity: float = 0.5,
    schedule: FaultSchedule | None = None,
) -> ChaosResult:
    """Run the Table 1 population through faulted transports.

    *schedule* overrides the intensity-derived fault schedule (the
    intensity is still recorded in the result for labelling).
    """
    check_in_range(intensity, "intensity", 0.0, 1.0)
    config = config or ExperimentConfig(duration=120.0)
    chaos = chaos or ChaosConfig()
    duration = config.duration
    dt = config.report_interval
    if schedule is None:
        schedule = FaultSchedule.from_intensity(
            intensity,
            duration,
            regions=(UPLINK_REGION_ID,) if chaos.outages else (),
            churn=chaos.churn,
        )

    sim = Simulator()
    registry = RngRegistry(config.seed)
    campus = default_campus()
    nodes = build_population(campus, config.population, registry)
    seq = SequenceSource()
    adf = AdaptiveDistanceFilter(config.adf_config(chaos.dth_factor))

    broker_config = BrokerConfig(
        use_location_estimator=True,
        smoothing_alpha=config.smoothing_alpha,
        report_interval=dt,
        max_extrapolation_age=chaos.max_extrapolation_intervals * dt,
        quarantine_age=chaos.quarantine_intervals * dt,
    )
    baseline = _Lane("baseline", GridBroker(broker_config, name="chaos/baseline"))
    plain = _Lane("plain", GridBroker(broker_config, name="chaos/plain"))
    arq = _Lane("arq", GridBroker(broker_config, name="chaos/arq"))

    # The physical substrate: one aggregate gateway for the whole campus
    # (its region id is what outage faults target) whose uplink carries the
    # plain lane; the ARQ lane runs over its own data/ack channels but
    # shares the *same* gateway state — a dead gateway acks nothing.
    region = _uplink_region()
    channel_plain = WirelessChannel(
        sim, registry.stream("chaos/channel/plain"), name="chaos/plain"
    )
    gateway = WirelessGateway(region, channel_plain, sink=plain.ingest)
    channel_data = WirelessChannel(
        sim, registry.stream("chaos/channel/arq-data"), name="chaos/arq-data"
    )
    channel_ack = WirelessChannel(
        sim, registry.stream("chaos/channel/arq-ack"), name="chaos/arq-ack"
    )
    link = ReliableLink(
        sim,
        channel_data,
        sink=arq.ingest,
        ack_channel=channel_ack,
        accept=lambda message: gateway.operational,
        ack_timeout=chaos.ack_timeout,
        backoff_factor=chaos.backoff_factor,
        max_retries=chaos.max_retries,
        seq_source=seq,
        name="chaos/arq",
    )

    injector = FaultInjector(schedule)
    injector.attach(
        sim,
        gateways=[gateway],
        channels=[channel_data, channel_ack],
        allow_churn=True,  # churn is honoured by the step loop below
    )

    churn_rng = registry.stream("faults/churn")
    offline_until: dict[str, float] = {}
    disconnections = 0
    offered = 0

    lanes = (baseline, plain, arq)

    def step() -> None:
        nonlocal offered, disconnections
        now = sim.now
        churn_window = schedule.churn_window(now)
        truths: list[tuple[str, Vec2]] = []
        for node in nodes:
            sample = node.advance(dt)
            node_id = node.node_id
            until = offline_until.get(node_id)
            if until is not None:
                if now < until:
                    continue  # still dark
                del offline_until[node_id]
                adf.forget(node_id)
            elif churn_window is not None and churn_rng.random() < churn_window.hazard:
                disconnections += 1
                outage = float(churn_rng.exponential(churn_window.mean_outage))
                offline_until[node_id] = now + max(outage, dt)
                continue
            truths.append((node_id, sample.position))
            update = LocationUpdate(
                sender=node_id,
                timestamp=now,
                seq=seq.take(),
                node_id=node_id,
                position=sample.position,
                velocity=sample.velocity,
                region_id=node.home_region,
            )
            decision = adf.process(update)
            if decision is not FilterDecision.TRANSMIT:
                continue
            dth = adf.dth_of(node_id)
            if dth > 0:
                update = LocationUpdate(
                    sender=update.sender,
                    timestamp=update.timestamp,
                    seq=update.seq,
                    node_id=node_id,
                    position=update.position,
                    velocity=update.velocity,
                    region_id=update.region_id,
                    dth=dth,
                )
            offered += 1
            baseline.ingest(update)
            gateway.receive(update)
            link.send(update)
        adf.tick(now)
        for lane in lanes:
            lane.broker.tick(now)
            errors: list[float] = []
            for node_id, truth in truths:
                believed = lane.broker.believed_position(node_id, now)
                if believed is not None:
                    errors.append(truth.distance_to(believed))
            lane.step_rmse.append(rmse(errors) if errors else 0.0)

    sim.schedule_every(dt, step, start=dt, end=duration, label="chaos:step")
    sim.run_until(duration)
    # Drain in-flight ARQ retries/acks; the retry budget bounds this.
    sim.run()

    # -- aggregation ---------------------------------------------------------
    step_times = [(i + 1) * dt for i in range(len(baseline.step_rmse))]
    windows = [
        fault.end
        for fault in schedule.faults
        if isinstance(fault, (GatewayOutage, RegionBlackout, ChannelDegradation))
    ]

    def recovery_time(lane: _Lane) -> float:
        worst = 0.0
        for end in windows:
            recovered_at = None
            for t, lane_rmse, base_rmse in zip(
                step_times, lane.step_rmse, baseline.step_rmse
            ):
                if t < end:
                    continue
                if lane_rmse <= base_rmse * chaos.recovery_factor + chaos.recovery_slack:
                    recovered_at = t
                    break
            took = (recovered_at - end) if recovered_at is not None else duration - end
            worst = max(worst, max(took, 0.0))
        return worst

    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    base_mean = mean(baseline.step_rmse)

    def lane_stats(lane: _Lane, transmissions: int, extra: dict) -> ChaosLaneStats:
        lane_mean = mean(lane.step_rmse)
        return ChaosLaneStats(
            name=lane.name,
            delivered=lane.delivered,
            lost=offered - lane.delivered,
            transmissions=transmissions,
            retransmits=extra.get("retransmits", 0),
            duplicates=extra.get("duplicates", 0),
            gave_up=extra.get("gave_up", 0),
            acks_sent=extra.get("acks_sent", 0),
            bytes_sent=extra.get("bytes_sent", 0),
            mean_rmse=lane_mean,
            rmse_inflation=lane_mean / base_mean if base_mean > 0 else 1.0,
            recovery_time=recovery_time(lane),
            quarantines=lane.broker.quarantines,
            resyncs=lane.broker.resyncs,
            stale_lus_dropped=lane.broker.stale_lus_dropped,
        )

    plain_stats = lane_stats(
        plain,
        channel_plain.stats.sent,
        {"bytes_sent": channel_plain.stats.bytes_sent},
    )
    arq_stats = lane_stats(
        arq,
        link.stats.transmissions,
        {
            "retransmits": link.stats.retransmits,
            "duplicates": link.stats.duplicates,
            "gave_up": link.stats.gave_up,
            "acks_sent": link.stats.acks_sent,
            "bytes_sent": channel_data.stats.bytes_sent
            + channel_ack.stats.bytes_sent,
        },
    )
    plain_lost = plain_stats.lost
    recovered = (
        (plain_lost - arq_stats.lost) / plain_lost if plain_lost > 0 else 1.0
    )
    return ChaosResult(
        intensity=intensity,
        seed=config.seed,
        duration=duration,
        node_count=len(nodes),
        offered=offered,
        baseline_rmse=base_mean,
        plain=plain_stats,
        arq=arq_stats,
        recovered_fraction=recovered,
        lu_overhead=link.stats.transmissions / offered if offered else 0.0,
        schedule=tuple(schedule.to_json_dict()),
        timeline=tuple(injector.timeline_json()),
        disconnections=disconnections,
    )


@dataclass(frozen=True)
class ResilienceReport:
    """A fault-intensity sweep's outcomes, renderable and serialisable."""

    results: tuple[ChaosResult, ...]

    def render(self) -> str:
        """ASCII resilience table (one row per intensity per lane)."""
        lines = [
            "Resilience report "
            f"(seed {self.results[0].seed}, {self.results[0].duration:g}s, "
            f"{self.results[0].node_count} nodes)"
            if self.results
            else "Resilience report (empty)",
            f"{'intensity':>9}  {'lane':<6} {'delivered':>9} {'lost':>6} "
            f"{'retx':>6} {'overhead':>8} {'rmse':>7} {'inflation':>9} "
            f"{'recovery':>8}",
        ]
        for result in self.results:
            for lane in (result.plain, result.arq):
                overhead = (
                    lane.transmissions / result.offered if result.offered else 0.0
                )
                lines.append(
                    f"{result.intensity:>9.2f}  {lane.name:<6} "
                    f"{lane.delivered:>9} {lane.lost:>6} "
                    f"{lane.retransmits:>6} {overhead:>8.3f} "
                    f"{lane.mean_rmse:>7.2f} {lane.rmse_inflation:>9.2f} "
                    f"{lane.recovery_time:>8.1f}s"
                )
            lines.append(
                f"{'':>9}  arq recovered {result.recovered_fraction:.1%} of "
                f"plain-lane losses; baseline rmse {result.baseline_rmse:.2f} m"
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {"results": [result.to_json_dict() for result in self.results]}

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — byte-stable for a given seed."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)


def chaos_sweep(
    intensities: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    config: ExperimentConfig | None = None,
    *,
    chaos: ChaosConfig | None = None,
) -> ResilienceReport:
    """Sweep fault intensity and collect a resilience report."""
    if not intensities:
        raise ValueError("need at least one intensity")
    results = tuple(
        chaos_study(config, chaos=chaos, intensity=intensity)
        for intensity in intensities
    )
    return ResilienceReport(results)
