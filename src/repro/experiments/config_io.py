"""Experiment configuration files (TOML or JSON).

Lets a user pin an experiment in version control::

    # experiment.toml
    duration = 1800.0
    dth_factors = [0.75, 1.0, 1.25]
    seed = 7
    [population]
    road_humans_per_road = 5
    building_stop = 5

Unknown keys raise — silently ignored configuration is how reproductions
rot.
"""

from __future__ import annotations

import dataclasses
import json
import tomllib
from pathlib import Path
from typing import Any

from repro.experiments.config import ExperimentConfig
from repro.mobility.population import PopulationSpec

__all__ = ["config_from_dict", "load_config", "apply_overrides"]

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(ExperimentConfig)}
_POPULATION_FIELDS = {f.name for f in dataclasses.fields(PopulationSpec)}


def config_from_dict(data: dict[str, Any]) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from plain data.

    ``population`` may be a nested mapping of :class:`PopulationSpec`
    fields (velocity bands keep their defaults).  Any unknown key raises
    ``ValueError``.
    """
    data = dict(data)
    population_data = data.pop("population", None)
    unknown = set(data) - _CONFIG_FIELDS
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    if "dth_factors" in data:
        data["dth_factors"] = tuple(data["dth_factors"])
    kwargs: dict[str, Any] = dict(data)
    if population_data is not None:
        bad = set(population_data) - _POPULATION_FIELDS
        if bad:
            raise ValueError(f"unknown population keys: {sorted(bad)}")
        kwargs["population"] = PopulationSpec(**population_data)
    return ExperimentConfig(**kwargs)


def apply_overrides(
    config: ExperimentConfig, params: dict[str, Any]
) -> ExperimentConfig:
    """Return *config* with sweep-axis *params* applied.

    Keys are :class:`ExperimentConfig` field names, or dotted
    ``population.<field>`` names for mobility knobs (e.g.
    ``population.road_vehicles_per_road``).  Unknown keys raise — a
    silently ignored sweep axis would make every cell identical.
    """
    top: dict[str, Any] = {}
    population: dict[str, Any] = {}
    for key, value in params.items():
        if key.startswith("population."):
            field = key.split(".", 1)[1]
            if field not in _POPULATION_FIELDS:
                raise ValueError(f"unknown population field {field!r}")
            population[field] = value
        elif key == "population":
            raise ValueError(
                "override individual 'population.<field>' keys, "
                "not the whole population"
            )
        elif key not in _CONFIG_FIELDS:
            raise ValueError(f"unknown config field {key!r}")
        else:
            top[key] = value
    if "dth_factors" in top:
        top["dth_factors"] = tuple(top["dth_factors"])
    if population:
        top["population"] = dataclasses.replace(config.population, **population)
    return dataclasses.replace(config, **top)


def load_config(path: str | Path) -> ExperimentConfig:
    """Load a config from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if path.suffix == ".toml":
        data = tomllib.loads(path.read_text())
    elif path.suffix == ".json":
        data = json.loads(path.read_text())
    else:
        raise ValueError(f"unsupported config format {path.suffix!r}")
    return config_from_dict(data)
