"""ASCII report rendering of a full experiment run."""

from __future__ import annotations

from io import StringIO

from repro.experiments.figures import (
    fig6_transmission_rate_by_region,
    fig8_rmse_by_region_without_le,
    fig9_rmse_by_region_with_le,
    table1_specification,
)
from repro.experiments.results import ExperimentResult

__all__ = ["render_report"]


def _rule(out: StringIO, title: str) -> None:
    out.write(f"\n=== {title} ===\n")


def render_report(result: ExperimentResult) -> str:
    """A human-readable summary covering every figure of the paper."""
    out = StringIO()
    out.write(
        f"Mobile-grid experiment: {result.node_count} MNs, "
        f"{result.duration:g}s at {result.report_interval:g}s intervals\n"
    )
    out.write(
        f"fleet average speed {result.average_fleet_speed:.2f} m/s, "
        f"classifier accuracy {result.classification_accuracy:.1%}, "
        f"{result.handoffs} gateway handoffs\n"
    )

    _rule(out, "Table 1: MN specification")
    for row in table1_specification():
        out.write(
            f"  {row.region_kind:<9} x{row.region_count}  {row.mobility_pattern:<4} "
            f"{row.node_type:<8} n={row.node_count:<4} VR={row.velocity_range}\n"
        )

    _rule(out, "Fig. 4/5: location updates")
    ideal_total = result.ideal.total_lus
    steps = max(result.duration / result.report_interval, 1.0)
    out.write(
        f"  {'lane':<12} {'LU/s':>8} {'total':>10} {'reduction':>10}\n"
    )
    for name, lane in result.lanes.items():
        reduction = result.reduction_vs_ideal(name)
        out.write(
            f"  {name:<12} {lane.total_lus / steps:>8.1f} "
            f"{lane.total_lus:>10d} {reduction:>9.1%}\n"
        )
    del ideal_total

    _rule(out, "Fig. 6: transmission rate vs ideal, by region kind")
    for name, rates in fig6_transmission_rate_by_region(result).items():
        out.write(
            f"  {name:<12} road={rates['road']:.1%}  "
            f"building={rates['building']:.1%}\n"
        )

    _rule(out, "Fig. 7: mean RMSE (m), with vs without Location Estimator")
    for name, lane in result.lanes.items():
        if name == "ideal":
            continue
        with_le = lane.mean_rmse(with_le=True)
        without_le = lane.mean_rmse(with_le=False)
        out.write(
            f"  {name:<12} w/o LE={without_le:>7.2f}  w/ LE={with_le:>7.2f}  "
            f"(LE keeps {lane.le_improvement():.1%} of the error)\n"
        )

    _rule(out, "Fig. 8: RMSE by region kind, without LE")
    for name, row in fig8_rmse_by_region_without_le(result).items():
        out.write(
            f"  {name:<12} road={row['road']:>7.2f}  "
            f"building={row['building']:>7.2f}  ratio={row['ratio']:.2f}x\n"
        )

    _rule(out, "Fig. 9: RMSE by region kind, with LE")
    for name, row in fig9_rmse_by_region_with_le(result).items():
        out.write(
            f"  {name:<12} road={row['road']:>7.2f}  "
            f"building={row['building']:>7.2f}  ratio={row['ratio']:.2f}x\n"
        )
    return out.getvalue()
