"""The grid workload study: location accuracy -> scheduling quality.

The entire point of tracking MN locations is using MNs as grid resources.
This study runs the campus population, lets a lane's broker accumulate its
(filtered + estimated) world view, and then repeatedly schedules
proximity-anchored jobs from that view.  Scheduling quality is the overlap
between the nodes the broker *chose* and the nodes that were *actually*
nearest the anchor — directly measuring the application-level cost of the
DTH factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broker.jobs import Job
from repro.broker.resources import ResourceRegistry
from repro.broker.scheduler import GridScheduler, SchedulingPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import MobileGridExperiment
from repro.geometry import Vec2

__all__ = ["WorkloadPoint", "workload_study"]


@dataclass(frozen=True)
class WorkloadPoint:
    """Scheduling quality for one lane (one DTH factor)."""

    lane: str
    dth_factor: float | None
    reduction: float
    mean_rmse: float
    #: Mean fraction of chosen nodes that are truly among the k nearest.
    placement_precision: float
    jobs_scheduled: int


def _precision_at_anchor(
    experiment: MobileGridExperiment,
    broker,
    anchor: Vec2,
    now: float,
    k: int,
) -> float:
    registry = ResourceRegistry()
    for node in experiment.nodes:
        registry.register(node.node_id, node.device)
    scheduler = GridScheduler(
        broker, registry, policy=SchedulingPolicy.PROXIMITY
    )
    job = Job.uniform(n_tasks=k, mega_instructions=1000.0, submitted_at=now)
    scheduler.schedule(job, now, anchor=anchor)
    chosen = {t.assigned_to for t in job.assigned_tasks() if t.assigned_to}
    if not chosen:
        return 0.0
    truly_nearest = {
        n.node_id
        for n in sorted(
            experiment.nodes, key=lambda n: n.position.distance_to(anchor)
        )[: len(chosen)]
    }
    return len(chosen & truly_nearest) / len(chosen)


def workload_study(
    config: ExperimentConfig | None = None,
    *,
    tasks_per_job: int = 15,
    anchors: tuple[str, ...] = ("B3", "B4", "B6"),
) -> list[WorkloadPoint]:
    """Run the experiment once, then score placement per lane.

    One proximity-anchored job is scheduled per anchor region against each
    lane's with-LE broker; precision is averaged over anchors.  The ideal
    lane provides the ceiling (its broker view is exact up to one
    reporting interval).
    """
    config = config or ExperimentConfig(duration=120.0)
    experiment = MobileGridExperiment(config)
    result = experiment.run()
    now = config.duration
    points: list[WorkloadPoint] = []
    for lane in experiment.lanes:
        precisions = []
        for region_id in anchors:
            anchor = experiment.campus.region(region_id).bounds.center
            precisions.append(
                _precision_at_anchor(
                    experiment, lane.broker_with_le, anchor, now, tasks_per_job
                )
            )
        lane_result = result.lanes[lane.name]
        points.append(
            WorkloadPoint(
                lane=lane.name,
                dth_factor=lane.dth_factor,
                reduction=result.reduction_vs_ideal(lane.name),
                mean_rmse=lane_result.mean_rmse(with_le=True),
                placement_precision=sum(precisions) / len(precisions),
                jobs_scheduled=len(anchors),
            )
        )
    return points
