"""Process-parallel sweep/replication runner with checkpoint-resume.

The paper's figures and every ablation are built from many independent
``run_experiment`` invocations, and conclusions only stabilise across
sweeps over population, speed and mobility parameters.  This module runs
those sweeps as fast as the hardware allows:

* a :class:`SweepSpec` is a base :class:`ExperimentConfig` plus a
  parameter grid (axes) and a replication count;
* every (cell, replication) pair gets its own deterministic seed via
  :func:`repro.util.rng.spawn_seed`, so a sweep is reproducible from the
  base seed alone and a cell's result does not depend on whether it ran
  serially, in a worker process, or after a resume;
* runs fan out over a ``ProcessPoolExecutor`` with bounded dispatch
  (at most ``workers * 4`` tasks are in flight, so million-cell grids
  don't materialise a million pickled configs at once) and one retry per
  failed task;
* each completed run is checkpointed as a JSON artifact (atomic
  write-then-rename via :func:`repro.experiments.io.write_json_atomic`),
  and an interrupted sweep resumes by skipping finished cells;
* per-cell aggregates (mean/CI across replications) come from
  :func:`repro.analysis.multirun.summarize_values`, and telemetry
  snapshots are combined per cell with
  :func:`repro.telemetry.export.merge_snapshots`.

The CLI front-end is ``python -m repro sweep``; see ``docs/sweeps.md``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
import tomllib
from collections import deque
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.analysis.multirun import MetricSummary, summarize_values
from repro.experiments.config import ExperimentConfig
from repro.experiments.config_io import apply_overrides, config_from_dict
from repro.experiments.harness import run_experiment
from repro.experiments.io import load_json, result_to_dict, write_json_atomic
from repro.telemetry.export import merge_snapshots
from repro.util.rng import spawn_seed

__all__ = [
    "SweepSpec",
    "RunTask",
    "CellResult",
    "SweepResult",
    "cell_key",
    "run_sweep",
    "load_sweep_spec",
    "sweep_spec_from_dict",
]


# -- grid definition ---------------------------------------------------------
def _format_value(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "+".join(_format_value(v) for v in value)
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def cell_key(params: Mapping[str, Any]) -> str:
    """Canonical human-readable key of one grid cell.

    Axis order is preserved (it is part of the sweep definition), so the
    same spec always produces the same keys — which is what resume uses
    to match checkpoints to cells.
    """
    if not params:
        return "base"
    return ",".join(f"{k}={_format_value(v)}" for k, v in params.items())


def _cell_dirname(key: str) -> str:
    """A filesystem-safe directory name for a cell, collision-proofed.

    The readable slug may lose characters to sanitisation, so a short
    content hash of the exact key keeps distinct cells distinct.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=4).hexdigest()
    slug = re.sub(r"[^A-Za-z0-9_.=+,-]", "_", key)[:80]
    return f"{slug}-{digest}"


@dataclass
class RunTask:
    """One (cell, replication) unit of sweep work."""

    cell_key: str
    params: dict[str, Any]
    replication: int
    seed: int
    config: ExperimentConfig
    checkpoint: str | None = None

    @property
    def run_id(self) -> str:
        """Stable identifier of this unit (cell key + replication)."""
        return f"{self.cell_key}#rep{self.replication}"


@dataclass(frozen=True)
class SweepSpec:
    """A base config, a parameter grid, and a replication count.

    ``axes`` maps :class:`ExperimentConfig` field names (or dotted
    ``population.<field>`` names) to the values to sweep; the grid is
    the cartesian product in axis order.  Each cell runs
    ``replications`` times with per-run seeds derived from
    ``base.seed``.
    """

    base: ExperimentConfig = field(default_factory=ExperimentConfig)
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    replications: int = 1

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError(
                f"replications must be >= 1, got {self.replications}"
            )
        for name, values in self.axes:
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            if name == "seed":
                raise ValueError(
                    "'seed' cannot be a sweep axis; per-run seeds are "
                    "derived from the base seed — use replications for "
                    "seed variation"
                )
            # Fail at definition time, not mid-sweep in a worker.
            apply_overrides(self.base, {name: values[0]})

    @classmethod
    def from_axes(
        cls,
        axes: Mapping[str, Sequence[Any]],
        *,
        base: ExperimentConfig | None = None,
        replications: int = 1,
    ) -> "SweepSpec":
        """Build a spec from a plain ``{axis: values}`` mapping."""
        normalised = tuple(
            (name, tuple(values)) for name, values in axes.items()
        )
        return cls(
            base=base or ExperimentConfig(),
            axes=normalised,
            replications=replications,
        )

    def cells(self) -> list[dict[str, Any]]:
        """Every grid cell as an ``{axis: value}`` dict, in grid order."""
        if not self.axes:
            return [{}]
        names = [name for name, _ in self.axes]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(values for _, values in self.axes))
        ]

    def tasks(self, out_dir: str | Path | None = None) -> list[RunTask]:
        """All (cell, replication) tasks, with checkpoint paths if given."""
        tasks: list[RunTask] = []
        out = Path(out_dir) if out_dir is not None else None
        for params in self.cells():
            key = cell_key(params)
            config = apply_overrides(self.base, params)
            for rep in range(self.replications):
                seed = spawn_seed(self.base.seed, f"sweep/{key}#rep{rep}")
                checkpoint = None
                if out is not None:
                    checkpoint = str(
                        out / "runs" / _cell_dirname(key) / f"rep{rep:03d}.json"
                    )
                tasks.append(
                    RunTask(
                        cell_key=key,
                        params=params,
                        replication=rep,
                        seed=seed,
                        config=replace(config, seed=seed),
                        checkpoint=checkpoint,
                    )
                )
        return tasks

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable description (for the sweep manifest)."""
        return {
            "base_seed": self.base.seed,
            "replications": self.replications,
            "axes": {name: list(values) for name, values in self.axes},
            "cells": [cell_key(params) for params in self.cells()],
        }


def sweep_spec_from_dict(data: dict[str, Any]) -> SweepSpec:
    """Build a :class:`SweepSpec` from plain data.

    Layout::

        {"axes": {"duration": [300, 600], "population.building_stop": [5, 10]},
         "replications": 3,
         "base": {...ExperimentConfig fields...}}
    """
    data = dict(data)
    base_data = data.pop("base", None)
    axes = data.pop("axes", {})
    replications = data.pop("replications", 1)
    if data:
        raise ValueError(f"unknown sweep keys: {sorted(data)}")
    base = config_from_dict(base_data) if base_data else ExperimentConfig()
    return SweepSpec.from_axes(axes, base=base, replications=replications)


def load_sweep_spec(path: str | Path) -> SweepSpec:
    """Load a sweep definition from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if path.suffix == ".toml":
        data = tomllib.loads(path.read_text())
    elif path.suffix == ".json":
        data = json.loads(path.read_text())
    else:
        raise ValueError(f"unsupported sweep format {path.suffix!r}")
    return sweep_spec_from_dict(data)


# -- execution ---------------------------------------------------------------
def _execute_task(task: RunTask) -> dict[str, Any]:
    """Run one task and (optionally) checkpoint it.  Runs in a worker.

    The payload is round-tripped through JSON before returning so that a
    freshly computed run and one loaded from a checkpoint are the same
    object shape (tuples become lists, keys become strings) — this is
    what makes serial, parallel and resumed sweeps bit-identical.
    """
    result = run_experiment(task.config)
    payload = {
        "sweep": {
            "cell_key": task.cell_key,
            "params": task.params,
            "replication": task.replication,
            "seed": task.seed,
        },
        "result": result_to_dict(result),
    }
    payload = json.loads(json.dumps(payload))
    if task.checkpoint:
        write_json_atomic(payload, task.checkpoint)
    return payload


def _valid_checkpoint(task: RunTask) -> dict[str, Any] | None:
    """Load the task's checkpoint if it exists and matches the task."""
    if not task.checkpoint or not Path(task.checkpoint).exists():
        return None
    try:
        payload = load_json(task.checkpoint)
    except (OSError, json.JSONDecodeError):
        return None
    meta = payload.get("sweep", {})
    expected = json.loads(json.dumps(task.params))
    if meta.get("seed") != task.seed or meta.get("params") != expected:
        return None  # stale artifact from a different spec: recompute
    return payload


# -- results -----------------------------------------------------------------
@dataclass
class CellResult:
    """All replications of one grid cell, plus cross-run aggregates."""

    key: str
    params: dict[str, Any]
    runs: list[dict[str, Any]] = field(default_factory=list)

    def metrics(self) -> dict[str, list[float]]:
        """Per-metric value lists, one value per replication."""
        out: dict[str, list[float]] = {}
        for payload in self.runs:
            for metric, value in _run_metrics(payload["result"]).items():
                out.setdefault(metric, []).append(value)
        return out

    def summaries(self, *, confidence: float = 0.95) -> dict[str, MetricSummary]:
        """Mean/CI of every standard metric across this cell's runs."""
        return {
            metric: summarize_values(values, metric=metric, confidence=confidence)
            for metric, values in self.metrics().items()
        }

    def telemetry(self) -> dict[str, Any] | None:
        """The cell's replication telemetry snapshots merged into one."""
        snapshots = [
            payload["result"]["telemetry"]
            for payload in self.runs
            if payload["result"].get("telemetry") is not None
        ]
        if not snapshots:
            return None
        return merge_snapshots(snapshots)


def _run_metrics(result: dict[str, Any]) -> dict[str, float]:
    """The scalar metrics aggregated across a cell's replications."""
    out: dict[str, float] = {
        "classification_accuracy": result["classification_accuracy"],
        "average_fleet_speed": result["average_fleet_speed"],
    }
    for name, lane in sorted(result["lanes"].items()):
        if lane.get("kind") == "adf":
            out[f"reduction({name})"] = lane["reduction_vs_ideal"]
            out[f"rmse_with_le({name})"] = lane["mean_rmse_with_le"]
            out[f"rmse_without_le({name})"] = lane["mean_rmse_without_le"]
    return out


@dataclass
class SweepResult:
    """The outcome of :func:`run_sweep`."""

    spec: SweepSpec
    cells: dict[str, CellResult]
    #: run_ids actually executed in this invocation.
    executed: list[str] = field(default_factory=list)
    #: run_ids restored from checkpoints instead of executed.
    resumed: list[str] = field(default_factory=list)
    #: run_ids that failed once and succeeded on retry.
    retried: list[str] = field(default_factory=list)

    def render(self) -> str:
        """A human-readable per-cell summary table."""
        lines: list[str] = []
        for cell in self.cells.values():
            lines.append(f"cell {cell.key} (n={len(cell.runs)})")
            for summary in cell.summaries().values():
                lines.append(f"  {summary}")
        lines.append(
            f"{len(self.executed)} run(s) executed, "
            f"{len(self.resumed)} resumed from checkpoints, "
            f"{len(self.retried)} retried"
        )
        return "\n".join(lines)


def run_sweep(
    spec: SweepSpec,
    *,
    out_dir: str | Path | None = None,
    workers: int = 1,
    resume: bool = True,
    retries: int = 1,
    max_outstanding: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Run the whole sweep, fanning cells out over worker processes.

    With *out_dir*, every completed run is checkpointed there and a
    ``manifest.json`` records the grid; a re-invocation with the same
    spec and *resume* ``True`` skips runs whose checkpoint already
    exists (matching on cell params and derived seed, so a stale
    artifact from a different grid is recomputed, not trusted).

    ``workers <= 1`` runs everything in-process — the results are
    identical either way because each run's seed is derived from its
    (cell, replication) identity, never from execution order.
    """
    say = progress or (lambda _msg: None)
    tasks = spec.tasks(out_dir)
    if out_dir is not None:
        write_json_atomic(spec.to_dict(), Path(out_dir) / "manifest.json")

    result = SweepResult(spec=spec, cells={})
    for params in spec.cells():
        key = cell_key(params)
        result.cells[key] = CellResult(key=key, params=params)

    pending: deque[RunTask] = deque()
    for task in tasks:
        payload = _valid_checkpoint(task) if resume else None
        if payload is not None:
            result.cells[task.cell_key].runs.append(payload)
            result.resumed.append(task.run_id)
            say(f"resume {task.run_id}")
        else:
            pending.append(task)

    def record(task: RunTask, payload: dict[str, Any]) -> None:
        result.cells[task.cell_key].runs.append(payload)
        result.executed.append(task.run_id)
        say(f"done {task.run_id}")

    if workers <= 1:
        for task in pending:
            record(task, _run_with_retry(task, retries, result, say))
    else:
        _run_pool(
            pending, workers, retries, max_outstanding, record, result, say
        )

    for cell in result.cells.values():
        cell.runs.sort(key=lambda payload: payload["sweep"]["replication"])
    return result


def _run_with_retry(
    task: RunTask,
    retries: int,
    result: SweepResult,
    say: Callable[[str], None],
) -> dict[str, Any]:
    """Serial execution with the same retry budget as the pool path."""
    attempts = retries + 1
    for attempt in range(attempts):
        try:
            payload = _execute_task(task)
        except Exception:
            if attempt + 1 >= attempts:
                raise
            say(f"retry {task.run_id}")
            result.retried.append(task.run_id)
        else:
            return payload
    raise AssertionError("unreachable")  # pragma: no cover


def _run_pool(
    pending: deque[RunTask],
    workers: int,
    retries: int,
    max_outstanding: int | None,
    record: Callable[[RunTask, dict[str, Any]], None],
    result: SweepResult,
    say: Callable[[str], None],
) -> None:
    """Bounded chunked dispatch over a process pool, one retry per task."""
    limit = max_outstanding or workers * 4
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures: dict[Any, tuple[RunTask, int]] = {}
        while pending or futures:
            while pending and len(futures) < limit:
                task = pending.popleft()
                futures[pool.submit(_execute_task, task)] = (task, 0)
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                task, attempt = futures.pop(future)
                error = future.exception()
                if error is None:
                    record(task, future.result())
                elif attempt < retries:
                    say(f"retry {task.run_id}")
                    result.retried.append(task.run_id)
                    futures[pool.submit(_execute_task, task)] = (
                        task,
                        attempt + 1,
                    )
                else:
                    raise RuntimeError(
                        f"sweep task {task.run_id} failed after "
                        f"{attempt + 1} attempt(s)"
                    ) from error
