"""Churn study: nodes leaving and rejoining the mobile grid.

"Frequent disconnectivity" is the first constraint the paper lists, yet
its evaluation keeps all 140 MNs connected throughout.  This study makes
nodes churn: each connected node disconnects with a per-second hazard and
reconnects after a random outage.  Disconnected nodes send nothing (their
LUs never reach a gateway); on return, the ADF has forgotten them and
their first LU transmits unconditionally.

Measured: LU reduction (now including the reconnection overhead), broker
error over connected nodes, and how many reconnection LUs the churn forced.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.broker.broker import BrokerConfig, GridBroker
from repro.campus import default_campus
from repro.core.adf import AdaptiveDistanceFilter
from repro.core.distance_filter import FilterDecision
from repro.estimation.metrics import rmse
from repro.experiments.config import ExperimentConfig
from repro.mobility.population import build_population
from repro.network.messages import LocationUpdate, SequenceSource
from repro.util.rng import RngRegistry
from repro.util.validation import check_in_range, check_positive

__all__ = ["ChurnResult", "churn_study"]


@dataclass(frozen=True)
class ChurnResult:
    """Outcome of one churn configuration."""

    disconnect_hazard: float
    mean_outage: float
    node_count: int
    duration: float
    reduction: float
    mean_rmse: float
    disconnections: int
    reconnection_transmits: int

    @property
    def reconnect_overhead(self) -> float:
        """Reconnection LUs per disconnection (>= 1 when churn occurred)."""
        if self.disconnections == 0:
            return 0.0
        return self.reconnection_transmits / self.disconnections


def churn_study(
    config: ExperimentConfig | None = None,
    *,
    disconnect_hazard: float = 0.005,
    mean_outage: float = 20.0,
    dth_factor: float = 1.0,
) -> ChurnResult:
    """Run the Table 1 population with node churn through the ADF."""
    check_in_range(disconnect_hazard, "disconnect_hazard", 0.0, 1.0)
    check_positive(mean_outage, "mean_outage")
    config = config or ExperimentConfig(duration=120.0)
    campus = default_campus()
    registry = RngRegistry(config.seed)
    nodes = build_population(campus, config.population, registry)
    churn_rng = registry.stream("churn")
    seq = SequenceSource()  # per-run seqs: deterministic under sweep workers

    adf = AdaptiveDistanceFilter(config.adf_config(dth_factor))
    broker = GridBroker(
        BrokerConfig(
            use_location_estimator=True,
            smoothing_alpha=config.smoothing_alpha,
        )
    )

    offline_until: dict[str, float] = {}
    just_returned: set[str] = set()
    disconnections = 0
    reconnection_transmits = 0
    sent = 0
    offered = 0
    errors: list[float] = []

    steps = config.steps()
    dt = config.report_interval
    for i in range(1, steps + 1):
        now = i * dt
        step_errors: list[float] = []
        for node in nodes:
            sample = node.advance(dt)
            until = offline_until.get(node.node_id)
            if until is not None:
                if now < until:
                    continue  # still dark
                del offline_until[node.node_id]
                just_returned.add(node.node_id)
            elif churn_rng.random() < disconnect_hazard:
                disconnections += 1
                outage = float(churn_rng.exponential(mean_outage))
                offline_until[node.node_id] = now + max(outage, dt)
                adf.forget(node.node_id)
                continue
            offered += 1
            update = LocationUpdate(
                sender=node.node_id,
                timestamp=now,
                seq=seq.take(),
                node_id=node.node_id,
                position=sample.position,
                velocity=sample.velocity,
                region_id=node.home_region,
            )
            decision = adf.process(update)
            if decision is FilterDecision.TRANSMIT:
                sent += 1
                if node.node_id in just_returned:
                    reconnection_transmits += 1
                broker.receive_update(
                    replace(update, dth=adf.dth_of(node.node_id))
                )
            just_returned.discard(node.node_id)
        adf.tick(now)
        broker.tick(now)
        for node in nodes:
            if node.node_id in offline_until:
                continue
            believed = broker.location_db.position_of(node.node_id)
            if believed is not None:
                step_errors.append(node.position.distance_to(believed))
        if step_errors:
            errors.append(rmse(step_errors))

    return ChurnResult(
        disconnect_hazard=disconnect_hazard,
        mean_outage=mean_outage,
        node_count=len(nodes),
        duration=config.duration,
        reduction=1.0 - sent / offered if offered else 0.0,
        mean_rmse=sum(errors) / len(errors) if errors else 0.0,
        disconnections=disconnections,
        reconnection_transmits=reconnection_transmits,
    )
