"""Staging study: location traffic vs task data on a shared uplink.

The full-circle version of the paper's motivation.  A mobile grid does two
things with its constrained wireless links: keep the broker's location view
fresh (LUs) and move the actual work (task inputs/outputs).  Both share
the same bandwidth, so every filtered LU is bandwidth handed back to the
workload.

The study replays each lane's recorded LU stream *and* a bag-of-tasks data
staging workload through one FIFO uplink and measures the job's data
completion time and the LU delay.  Under the ideal (unfiltered) policy the
link saturates and staging crawls; under the ADF the same job finishes in
a fraction of the time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.experiments.results import ExperimentResult
from repro.network.messages import DataTransfer, LocationUpdate
from repro.network.queueing import QueueingChannel
from repro.simkernel import Simulator
from repro.util.validation import check_positive

__all__ = ["StagingPoint", "staging_study"]


@dataclass(frozen=True)
class StagingPoint:
    """Shared-uplink outcome for one lane."""

    lane: str
    bandwidth_bps: float
    n_tasks: int
    task_bytes: int
    #: When the last task's input finished staging (inf if never).
    staging_completed_at: float
    mean_lu_delay: float
    lu_drop_rate: float

    @property
    def staging_finished(self) -> bool:
        """True when every task's data made it through."""
        return self.staging_completed_at != float("inf")


def _replay(
    result: ExperimentResult,
    lane_name: str,
    *,
    bandwidth_bps: float,
    n_tasks: int,
    task_bytes: int,
    job_start: float,
) -> StagingPoint:
    sim = Simulator()
    channel = QueueingChannel(
        sim, bandwidth_bps=bandwidth_bps, queue_limit=10_000, name=lane_name
    )
    lu_delays: list[float] = []
    lu_dropped = 0
    lu_offered = 0
    staged: list[float] = []

    def deliver_lu(message) -> None:
        pass

    # Location traffic: the lane's recorded per-second LU counts.
    series = result.lanes[lane_name].meter.per_second(result.duration)
    for second, count in series:
        for k in range(int(count)):
            at = second + (k + 0.5) / max(count, 1.0)
            update = LocationUpdate(sender=lane_name, timestamp=at)

            def offer(u=update, t=at):
                nonlocal lu_offered, lu_dropped
                lu_offered += 1
                enqueued = sim.now
                ok = channel.send(
                    u, lambda m, e=enqueued: lu_delays.append(sim.now - e)
                )
                if not ok:
                    lu_dropped += 1

            sim.schedule_at(max(at, 0.0), offer)

    # Task data: staged sequentially — chunk k+1 is offered when chunk k
    # completes (a stop-and-wait transfer loop, as a real staging client
    # over a shared FIFO link behaves).  Sequential submission is what
    # makes the link's *residual* capacity visible: between two chunks the
    # ongoing LU stream reclaims its share of the queue.
    def stage(task: int) -> None:
        if task >= n_tasks:
            return
        transfer = DataTransfer(
            sender="broker",
            timestamp=sim.now,
            task_id=task,
            payload_bytes=task_bytes,
        )

        def done(_message) -> None:
            staged.append(sim.now)
            stage(task + 1)

        if not channel.send(transfer, done):
            # Queue full: retry shortly rather than losing the task.
            sim.schedule_in(1.0, lambda: stage(task))

    sim.schedule_at(job_start, lambda: stage(0))

    sim.run()
    completed = max(staged) if len(staged) == n_tasks else float("inf")
    mean_delay = sum(lu_delays) / len(lu_delays) if lu_delays else 0.0
    return StagingPoint(
        lane=lane_name,
        bandwidth_bps=bandwidth_bps,
        n_tasks=n_tasks,
        task_bytes=task_bytes,
        staging_completed_at=completed,
        mean_lu_delay=mean_delay,
        lu_drop_rate=lu_dropped / lu_offered if lu_offered else 0.0,
    )


def staging_study(
    config: ExperimentConfig | None = None,
    *,
    bandwidth_bps: float = 120_000.0,
    n_tasks: int = 20,
    task_bytes: int = 30_000,
    job_start: float = 10.0,
) -> list[StagingPoint]:
    """Run the experiment, then replay each lane + the staging workload.

    Defaults: a 120 kbit/s uplink, comfortably above the ideal LU load
    (~107 kbit/s) alone — but the moment the job's 20 x 30 kB inputs
    arrive, the unfiltered lane has almost no headroom to move them.
    """
    check_positive(bandwidth_bps, "bandwidth_bps")
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    check_positive(task_bytes, "task_bytes")
    config = config or ExperimentConfig(duration=120.0)
    if job_start >= config.duration:
        raise ValueError("job_start must fall inside the run")
    result = run_experiment(config)
    return [
        _replay(
            result,
            lane_name,
            bandwidth_bps=bandwidth_bps,
            n_tasks=n_tasks,
            task_bytes=task_bytes,
            job_start=job_start,
        )
        for lane_name in result.lanes
    ]
