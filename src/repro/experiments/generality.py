"""Generality study: does the ADF work beyond the paper's mobility model?

The paper's mobility is hand-derived (SS/RMS/LMS on a campus).  Here the
same ADF + Location Estimator pipeline runs over fleets driven by the
standard generators of the mobile-networking literature — Random Waypoint,
Gauss-Markov and Manhattan grid — in an open field.  If the reduction and
bounded-error properties only held for the campus generator, the
reproduction would be suspect; they hold for all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broker.broker import BrokerConfig, GridBroker
from repro.core.adf import AdaptiveDistanceFilter, AdfConfig
from repro.core.distance_filter import FilterDecision
from repro.estimation.metrics import rmse
from repro.geometry import Rect
from repro.mobility.classic import (
    GaussMarkovModel,
    ManhattanGridModel,
    RandomWaypointModel,
)
from repro.mobility.node import MobileNode
from repro.mobility.states import VelocityBand
from repro.network.messages import LocationUpdate
from repro.util.rng import RngRegistry

__all__ = ["GeneralityResult", "MOBILITY_GENERATORS", "generality_study"]

#: The open-field arena the classic models roam.
_ARENA = Rect(0.0, 0.0, 400.0, 400.0)
_BAND = VelocityBand(0.5, 4.0)


def _rwp(position, rng):
    return RandomWaypointModel(position, _ARENA, _BAND, rng, max_pause=20.0)


def _gauss_markov(position, rng):
    return GaussMarkovModel(position, _ARENA, _BAND, rng, alpha=0.85)


def _manhattan(position, rng):
    return ManhattanGridModel(position, _ARENA, _BAND, rng, block=50.0)


MOBILITY_GENERATORS = {
    "random-waypoint": _rwp,
    "gauss-markov": _gauss_markov,
    "manhattan": _manhattan,
}


@dataclass(frozen=True)
class GeneralityResult:
    """ADF behaviour under one mobility generator."""

    model: str
    node_count: int
    duration: float
    reduction: float
    mean_rmse_with_le: float
    mean_rmse_without_le: float

    @property
    def le_ratio(self) -> float:
        """RMSE(with LE) / RMSE(without LE)."""
        if self.mean_rmse_without_le == 0:
            return 1.0
        return self.mean_rmse_with_le / self.mean_rmse_without_le


def generality_study(
    *,
    models: dict | None = None,
    n_nodes: int = 40,
    duration: float = 120.0,
    dth_factor: float = 1.0,
    seed: int = 42,
) -> list[GeneralityResult]:
    """Run the ADF pipeline over each mobility generator.

    One fleet per generator, identical sizes and seeds; per-second LUs
    through an ADF at *dth_factor* into two brokers (LE on/off); returns
    reduction and mean RMSE per generator.
    """
    models = models if models is not None else MOBILITY_GENERATORS
    if not models:
        raise ValueError("need at least one mobility generator")
    out: list[GeneralityResult] = []
    for label, factory in models.items():
        registry = RngRegistry(seed).fork(label)
        nodes = []
        for i in range(n_nodes):
            rng = registry.stream(f"node-{i}")
            start = _ARENA.random_point(rng)
            nodes.append(MobileNode(f"{label}-{i}", factory(start, rng)))
        adf = AdaptiveDistanceFilter(AdfConfig(dth_factor=dth_factor))
        broker_on = GridBroker(BrokerConfig(use_location_estimator=True))
        broker_off = GridBroker(BrokerConfig(use_location_estimator=False))
        sent = 0
        errors_on: list[float] = []
        errors_off: list[float] = []
        steps = int(round(duration))
        for i in range(1, steps + 1):
            now = float(i)
            for node in nodes:
                sample = node.advance(1.0)
                update = LocationUpdate(
                    sender=node.node_id,
                    timestamp=now,
                    node_id=node.node_id,
                    position=sample.position,
                    velocity=sample.velocity,
                    region_id="arena",
                )
                if adf.process(update) is FilterDecision.TRANSMIT:
                    sent += 1
                    from dataclasses import replace

                    forwarded = replace(update, dth=adf.dth_of(node.node_id))
                    broker_on.receive_update(forwarded)
                    broker_off.receive_update(forwarded)
            adf.tick(now)
            broker_on.tick(now)
            broker_off.tick(now)
            step_on = []
            step_off = []
            for node in nodes:
                truth = node.position
                believed_on = broker_on.location_db.position_of(node.node_id)
                believed_off = broker_off.location_db.position_of(node.node_id)
                if believed_on is not None:
                    step_on.append(truth.distance_to(believed_on))
                if believed_off is not None:
                    step_off.append(truth.distance_to(believed_off))
            if step_on:
                errors_on.append(rmse(step_on))
            if step_off:
                errors_off.append(rmse(step_off))
        ideal = n_nodes * steps
        out.append(
            GeneralityResult(
                model=label,
                node_count=n_nodes,
                duration=duration,
                reduction=1.0 - sent / ideal,
                mean_rmse_with_le=sum(errors_on) / len(errors_on),
                mean_rmse_without_le=sum(errors_off) / len(errors_off),
            )
        )
    return out
