"""Experiment harness reproducing the paper's evaluation (§4).

The setup: 140 MNs on the 11-region campus for 1800 simulated seconds, one
LU per node per second, DTH factors 0.75 / 1.0 / 1.25 x average velocity.
Every figure and table of the paper has a generator here; the benchmarks in
``benchmarks/`` and the CLI drive them.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult, LaneResult, RegionErrors
from repro.experiments.harness import MobileGridExperiment, run_experiment
from repro.experiments.chaos import (
    ChaosConfig,
    ChaosResult,
    ResilienceReport,
    chaos_study,
    chaos_sweep,
)
from repro.experiments.runner import (
    CellResult,
    SweepResult,
    SweepSpec,
    load_sweep_spec,
    run_sweep,
)
from repro.experiments.figures import (
    fig4_lus_per_second,
    fig5_accumulated_lus,
    fig6_transmission_rate_by_region,
    fig7_rmse_over_time,
    fig8_rmse_by_region_without_le,
    fig9_rmse_by_region_with_le,
    table1_specification,
)
from repro.experiments.report import render_report

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "LaneResult",
    "RegionErrors",
    "MobileGridExperiment",
    "run_experiment",
    "ChaosConfig",
    "ChaosResult",
    "ResilienceReport",
    "chaos_study",
    "chaos_sweep",
    "SweepSpec",
    "SweepResult",
    "CellResult",
    "run_sweep",
    "load_sweep_spec",
    "table1_specification",
    "fig4_lus_per_second",
    "fig5_accumulated_lus",
    "fig6_transmission_rate_by_region",
    "fig7_rmse_over_time",
    "fig8_rmse_by_region_without_le",
    "fig9_rmse_by_region_with_le",
    "render_report",
]
