"""The experiment as an HLA federation (paper §3.4: HLA 1.3 simulation).

The paper runs its evaluation as a distributed HLA simulation.  This module
wires the same experiment through :class:`repro.hla.RTIKernel` with three
federates, exercising publish/subscribe attribute reflection, interactions
and conservative time management end-to-end:

* **MobilityFederate** — owns one ``MobileNode`` object instance per MN and
  publishes per-second position/velocity attribute updates (TSO);
* **AdfFederate** — subscribes to MN attributes, runs the ADF pipeline, and
  sends surviving LUs as ``LocationUpdate`` interactions (TSO);
* **BrokerFederate** — subscribes to the interactions, maintains the
  location DB and runs the Location Estimator each granted step.

All three are time-regulating and time-constrained with lookahead equal to
the reporting interval, advancing in lock-step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.broker.broker import BrokerConfig, GridBroker
from repro.campus import Campus, default_campus
from repro.core.adf import AdaptiveDistanceFilter
from repro.core.distance_filter import FilterDecision
from repro.estimation.metrics import rmse
from repro.experiments.config import ExperimentConfig
from repro.geometry import Vec2
from repro.hla import FederateAmbassador, FederationObjectModel, RTIKernel
from repro.mobility.node import MobileNode
from repro.mobility.population import build_population
from repro.network.messages import LocationUpdate
from repro.util.rng import RngRegistry
from repro.util.timeseries import TimeSeries

__all__ = [
    "MOBILE_NODE_CLASS",
    "LOCATION_UPDATE_INTERACTION",
    "mobile_grid_fom",
    "MobilityFederate",
    "AdfFederate",
    "BrokerFederate",
    "FederationResult",
    "run_federated_experiment",
]

MOBILE_NODE_CLASS = "MobileNode"
LOCATION_UPDATE_INTERACTION = "LocationUpdate"


def mobile_grid_fom() -> FederationObjectModel:
    """The federation object model the three federates agree on."""
    fom = FederationObjectModel()
    fom.add_object_class(
        MOBILE_NODE_CLASS, ("x", "y", "vx", "vy", "region", "node_id")
    )
    fom.add_interaction_class(
        LOCATION_UPDATE_INTERACTION,
        ("node_id", "x", "y", "vx", "vy", "region", "time", "dth"),
    )
    return fom


class MobilityFederate(FederateAmbassador):
    """Owns the MN instances and publishes their kinematics."""

    def __init__(
        self,
        rti: RTIKernel,
        campus: Campus,
        nodes: list[MobileNode],
        step: float,
    ) -> None:
        self._rti = rti
        self._campus = campus
        self._nodes = nodes
        self._step = step
        self.handle = rti.join("mobility", self)
        rti.publish_object_class(self.handle, MOBILE_NODE_CLASS)
        rti.enable_time_regulation(self.handle, lookahead=step)
        rti.enable_time_constrained(self.handle)
        self._instances = {
            node.node_id: rti.register_object_instance(
                self.handle, MOBILE_NODE_CLASS, node.node_id
            )
            for node in nodes
        }
        self.granted_time = 0.0

    def advance_and_publish(self, to_time: float) -> None:
        """Move every node one step and push TSO attribute updates.

        Region resolution goes through the campus spatial index — one
        point query per node per step is the mobility federate's hottest
        geometric operation.
        """
        region_at = self._campus.region_at
        for node in self._nodes:
            sample = node.advance(self._step)
            region = region_at(sample.position)
            self._rti.update_attribute_values(
                self.handle,
                self._instances[node.node_id],
                {
                    "x": sample.position.x,
                    "y": sample.position.y,
                    "vx": sample.velocity.x,
                    "vy": sample.velocity.y,
                    "region": region.region_id if region else node.home_region,
                    "node_id": node.node_id,
                },
                timestamp=to_time,
            )

    def request_advance(self, to_time: float) -> None:
        """Issue the TAR for this step."""
        self._rti.time_advance_request(self.handle, to_time)

    def time_advance_grant(self, time: float) -> None:
        self.granted_time = time


class AdfFederate(FederateAmbassador):
    """Runs the ADF over reflected MN attributes; emits LU interactions."""

    def __init__(self, rti: RTIKernel, adf: AdaptiveDistanceFilter, step: float) -> None:
        self._rti = rti
        self.adf = adf
        self._step = step
        self.handle = rti.join("adf", self)
        rti.subscribe_object_class(self.handle, MOBILE_NODE_CLASS)
        rti.publish_interaction_class(self.handle, LOCATION_UPDATE_INTERACTION)
        rti.enable_time_regulation(self.handle, lookahead=step)
        rti.enable_time_constrained(self.handle)
        self.granted_time = 0.0
        self.reflections = 0
        self.forwarded = 0

    def reflect_attribute_values(
        self, instance: int, attributes: dict[str, Any], timestamp: float | None
    ) -> None:
        self.reflections += 1
        time = timestamp if timestamp is not None else self.granted_time
        update = LocationUpdate(
            sender=str(attributes["node_id"]),
            timestamp=time,
            node_id=str(attributes["node_id"]),
            position=Vec2(float(attributes["x"]), float(attributes["y"])),
            velocity=Vec2(float(attributes["vx"]), float(attributes["vy"])),
            region_id=str(attributes["region"]),
        )
        decision = self.adf.process(update)
        if decision is FilterDecision.TRANSMIT:
            self.forwarded += 1
            self._rti.send_interaction(
                self.handle,
                LOCATION_UPDATE_INTERACTION,
                {
                    "node_id": update.node_id,
                    "x": update.position.x,
                    "y": update.position.y,
                    "vx": update.velocity.x,
                    "vy": update.velocity.y,
                    "region": update.region_id,
                    "time": time,
                    "dth": self.adf.dth_of(update.node_id),
                },
                timestamp=time + self._step,
            )

    def request_advance(self, to_time: float) -> None:
        """Issue the TAR for this step; reclusters on grant."""
        self._rti.time_advance_request(self.handle, to_time)

    def time_advance_grant(self, time: float) -> None:
        self.granted_time = time
        self.adf.tick(time)


class BrokerFederate(FederateAmbassador):
    """Consumes LU interactions; estimates silent nodes on each grant."""

    def __init__(self, rti: RTIKernel, broker: GridBroker, step: float) -> None:
        self._rti = rti
        self.broker = broker
        self._step = step
        self.handle = rti.join("broker", self)
        rti.subscribe_interaction_class(self.handle, LOCATION_UPDATE_INTERACTION)
        rti.enable_time_constrained(self.handle)
        rti.enable_time_regulation(self.handle, lookahead=step)
        self.granted_time = 0.0
        self.received = 0

    def receive_interaction(
        self, class_name: str, parameters: dict[str, Any], timestamp: float | None
    ) -> None:
        self.received += 1
        update = LocationUpdate(
            sender=str(parameters["node_id"]),
            timestamp=float(parameters["time"]),
            node_id=str(parameters["node_id"]),
            position=Vec2(float(parameters["x"]), float(parameters["y"])),
            velocity=Vec2(float(parameters["vx"]), float(parameters["vy"])),
            region_id=str(parameters["region"]),
            dth=float(parameters["dth"]),
        )
        self.broker.receive_update(update)

    def request_advance(self, to_time: float) -> None:
        """Issue the TAR for this step."""
        self._rti.time_advance_request(self.handle, to_time)

    def time_advance_grant(self, time: float) -> None:
        self.granted_time = time
        self.broker.tick(time)


@dataclass
class FederationResult:
    """Measurements of a federated run."""

    duration: float
    lus_forwarded: int
    lus_received_by_broker: int
    reflections: int
    rmse_series: TimeSeries
    reduction_vs_ideal: float


def run_federated_experiment(
    config: ExperimentConfig | None = None,
    *,
    dth_factor: float = 1.0,
    telemetry: Any = None,
) -> FederationResult:
    """Run the experiment through the HLA federation.

    One ADF lane at *dth_factor*, brokers with the Location Estimator on.
    The interaction timestamps carry one-step lookahead, so the broker sees
    each LU one reporting interval after the fix was taken — the RTI's
    conservative time management in action.
    """
    config = config or ExperimentConfig()
    campus = default_campus()
    rng = RngRegistry(config.seed)
    nodes = build_population(campus, config.population, rng)

    rti = RTIKernel("mobile-grid", mobile_grid_fom(), telemetry=telemetry)
    step = config.report_interval
    mobility = MobilityFederate(rti, campus, nodes, step)
    adf = AdfFederate(
        rti,
        AdaptiveDistanceFilter(config.adf_config(dth_factor), telemetry=telemetry),
        step,
    )
    broker = BrokerFederate(
        rti,
        GridBroker(
            BrokerConfig(
                use_location_estimator=True,
                smoothing_alpha=config.smoothing_alpha,
                report_interval=step,
            ),
            telemetry=telemetry,
            name="federation",
        ),
        step,
    )

    # Initialization barrier, as a real HLA federation would do: nobody
    # advances time until every federate has achieved "population-ready".
    rti.register_synchronization_point(mobility.handle, "population-ready")
    for federate in (mobility, adf, broker):
        rti.synchronization_point_achieved(federate.handle, "population-ready")
    assert rti.pending_synchronization("population-ready") == set()

    rmse_series = TimeSeries()
    steps = config.steps()
    ideal_total = 0
    for i in range(1, steps + 1):
        now = i * step
        mobility.advance_and_publish(now)
        ideal_total += len(nodes)
        mobility.request_advance(now)
        adf.request_advance(now)
        broker.request_advance(now)
        errors = []
        for node in nodes:
            believed = broker.broker.location_db.position_of(node.node_id)
            if believed is not None:
                errors.append(node.position.distance_to(believed))
        if errors:
            rmse_series.append(now, rmse(errors))

    reduction = 1.0 - (broker.received / ideal_total if ideal_total else 0.0)
    return FederationResult(
        duration=config.duration,
        lus_forwarded=adf.forwarded,
        lus_received_by_broker=broker.received,
        reflections=adf.reflections,
        rmse_series=rmse_series,
        reduction_vs_ideal=reduction,
    )
