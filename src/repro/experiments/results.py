"""Result containers for the evaluation harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.network.traffic import TrafficMeter
from repro.util.timeseries import TimeSeries

__all__ = ["RegionErrors", "LaneResult", "ExperimentResult", "LANE_KINDS"]


@dataclass
class RegionErrors:
    """Accumulated squared location errors, split by region kind.

    Figures 8 and 9 report per-region-kind RMSE over the whole run, so we
    keep running sums of squared errors and sample counts for roads and
    buildings separately.
    """

    road_sq_sum: float = 0.0
    road_count: int = 0
    building_sq_sum: float = 0.0
    building_count: int = 0

    def add(self, error: float, *, is_road: bool) -> None:
        """Record one per-node error sample."""
        if error < 0:
            raise ValueError(f"error must be >= 0, got {error}")
        if is_road:
            self.road_sq_sum += error * error
            self.road_count += 1
        else:
            self.building_sq_sum += error * error
            self.building_count += 1

    @property
    def road_rmse(self) -> float:
        """RMSE over all road-node samples."""
        if self.road_count == 0:
            return 0.0
        return math.sqrt(self.road_sq_sum / self.road_count)

    @property
    def building_rmse(self) -> float:
        """RMSE over all building-node samples."""
        if self.building_count == 0:
            return 0.0
        return math.sqrt(self.building_sq_sum / self.building_count)

    @property
    def road_to_building_ratio(self) -> float:
        """How much worse roads are than buildings (paper: ~4.5-4.7x)."""
        building = self.building_rmse
        return self.road_rmse / building if building > 0 else math.inf


#: Valid values of :attr:`LaneResult.kind`.
LANE_KINDS = ("ideal", "adf", "gdf")


@dataclass
class LaneResult:
    """Everything measured for one filtering policy ("lane") in a run."""

    name: str
    dth_factor: float | None
    meter: TrafficMeter
    rmse_with_le: TimeSeries = field(default_factory=TimeSeries)
    rmse_without_le: TimeSeries = field(default_factory=TimeSeries)
    region_errors_with_le: RegionErrors = field(default_factory=RegionErrors)
    region_errors_without_le: RegionErrors = field(default_factory=RegionErrors)
    filter_summary: dict[str, float] = field(default_factory=dict)
    #: Per-second live cluster count (empty for non-ADF lanes).
    cluster_series: TimeSeries = field(default_factory=TimeSeries)
    #: Which policy family produced this lane ("ideal" / "adf" / "gdf").
    #: Set from the policy type by the harness — lane *names* are free-form
    #: display labels and must not be parsed for semantics.
    kind: str = "ideal"

    def __post_init__(self) -> None:
        if self.kind not in LANE_KINDS:
            raise ValueError(
                f"kind must be one of {LANE_KINDS}, got {self.kind!r}"
            )

    @property
    def total_lus(self) -> int:
        """Total LUs this lane transmitted to the broker."""
        return self.meter.total

    def mean_rmse(self, *, with_le: bool) -> float:
        """Run-average of the per-second RMSE series."""
        series = self.rmse_with_le if with_le else self.rmse_without_le
        return series.mean() if len(series) else 0.0

    def le_improvement(self) -> float:
        """RMSE(with LE) / RMSE(without LE); paper reports 0.33-0.47."""
        without = self.mean_rmse(with_le=False)
        if without == 0:
            return 1.0
        return self.mean_rmse(with_le=True) / without


@dataclass
class ExperimentResult:
    """The output of one full harness run."""

    duration: float
    report_interval: float
    node_count: int
    lanes: dict[str, LaneResult]
    road_region_ids: list[str]
    building_region_ids: list[str]
    classification_accuracy: float = 0.0
    average_fleet_speed: float = 0.0
    #: Gateway handoffs observed over the run (mobility-driven signalling
    #: that exists regardless of LU filtering).
    handoffs: int = 0
    #: Telemetry snapshot (metrics/samples/spans/events) when the run had
    #: telemetry enabled; ``None`` otherwise.
    telemetry: dict | None = None

    @property
    def ideal(self) -> LaneResult:
        """The unfiltered reference lane."""
        return self.lanes["ideal"]

    def adf_lanes(self) -> list[LaneResult]:
        """The ADF lanes ordered by DTH factor.

        Selection keys off the stored policy ``kind`` (plus the DTH
        factor for ordering), not the lane name — names are display
        labels and may be customised freely.
        """
        adf = [
            lane
            for lane in self.lanes.values()
            if lane.kind == "adf" and lane.dth_factor is not None
        ]
        return sorted(adf, key=lambda lane: lane.dth_factor)

    def reduction_vs_ideal(self, lane_name: str) -> float:
        """Fractional LU reduction of a lane relative to the ideal lane."""
        ideal_total = self.ideal.total_lus
        if ideal_total == 0:
            return 0.0
        return 1.0 - self.lanes[lane_name].total_lus / ideal_total

    def transmission_rate_by_kind(self, lane_name: str) -> dict[str, float]:
        """Fraction of ideal LUs a lane transmitted, per region kind (Fig. 6)."""
        lane = self.lanes[lane_name]
        out: dict[str, float] = {}
        for kind, region_ids in (
            ("road", self.road_region_ids),
            ("building", self.building_region_ids),
        ):
            ideal_count = self.ideal.meter.total_for_regions(region_ids)
            lane_count = lane.meter.total_for_regions(region_ids)
            out[kind] = lane_count / ideal_count if ideal_count else 0.0
        return out
