"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.adf import AdfConfig
from repro.faults.schedule import FaultSchedule
from repro.mobility.population import PopulationSpec, table1_spec
from repro.telemetry import TelemetryConfig
from repro.util.validation import check_positive

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a full evaluation run needs.

    Defaults reproduce the paper: 140 MNs, 1800 s, 1 Hz reporting, DTH
    factors 0.75/1.0/1.25 x average velocity.  ``duration`` can be shrunk
    for tests and benchmarks — the qualitative orderings are stable well
    below 1800 s.
    """

    duration: float = 1800.0
    report_interval: float = 1.0
    dth_factors: tuple[float, ...] = (0.75, 1.0, 1.25)
    seed: int = 42
    population: PopulationSpec = field(default_factory=table1_spec)
    alpha: float = 0.75
    direction_weight: float = 0.0
    recluster_interval: float = 30.0
    smoothing_alpha: float = 0.4
    include_general_df: bool = False
    channel_loss: float = 0.0
    channel_latency: float = 0.0
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    #: Deterministic fault injection (None = the paper's ideal substrate).
    #: The harness binds the schedule to every lane's gateways and channels
    #: via :class:`repro.faults.FaultInjector`; churn faults are only
    #: honoured by the chaos/churn studies and are rejected here.
    faults: FaultSchedule | None = None

    def __post_init__(self) -> None:
        check_positive(self.duration, "duration")
        check_positive(self.report_interval, "report_interval")
        if not self.dth_factors:
            raise ValueError("need at least one DTH factor")
        for factor in self.dth_factors:
            check_positive(factor, "dth_factor")
        check_positive(self.alpha, "alpha")
        check_positive(self.recluster_interval, "recluster_interval")

    def adf_config(self, dth_factor: float) -> AdfConfig:
        """The ADF configuration for one DTH factor under this experiment."""
        return AdfConfig(
            dth_factor=dth_factor,
            alpha=self.alpha,
            direction_weight=self.direction_weight,
            recluster_interval=self.recluster_interval,
            report_interval=self.report_interval,
        )

    def steps(self) -> int:
        """Number of reporting intervals in the run."""
        return int(round(self.duration / self.report_interval))

    def with_duration(self, duration: float) -> "ExperimentConfig":
        """A copy with a different duration (tests/benchmarks)."""
        return replace(self, duration=duration)
