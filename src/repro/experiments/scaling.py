"""Scalability study: does the ADF's behaviour survive bigger fleets?

The paper evaluates exactly 140 MNs.  A system claim like "reduces
communication traffic" should be robust to fleet size, and a grid broker
cares about how the cluster structure grows.  Two sweeps live here:

* :func:`scaling_sweep` multiplies the Table 1 population through the
  *object* harness (2x-4x the paper's fleet) — full fidelity, object
  speed.
* :func:`population_sweep` pushes to 1k-100k+ nodes through the
  *columnar* engine with the fast kernel and the native array mobility
  source, reporting LU rate, reduction and RMSE versus fleet size along
  with stepping throughput.  This is the regime the object path cannot
  reach in reasonable wall-clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment

__all__ = [
    "ScalingPoint",
    "scaling_sweep",
    "PopulationPoint",
    "population_sweep",
    "render_population_table",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One population size of the scaling sweep."""

    factor: int
    node_count: int
    reduction: float
    clusters: float
    rmse_with_le: float
    wall_seconds: float

    def nodes_per_cluster(self) -> float:
        """Average cluster occupancy (moving nodes only)."""
        return self.node_count / self.clusters if self.clusters else 0.0


def scaling_sweep(
    factors: tuple[int, ...] = (1, 2, 4),
    *,
    duration: float = 60.0,
    dth_factor: float = 1.0,
    seed: int = 42,
) -> list[ScalingPoint]:
    """Run the experiment at several population multipliers.

    Each factor multiplies every Table 1 per-region count, so factor 2
    means 280 MNs on the same campus.
    """
    if not factors:
        raise ValueError("need at least one factor")
    base = ExperimentConfig(
        duration=duration, dth_factors=(dth_factor,), seed=seed
    )
    lane_name = f"adf-{dth_factor:g}"
    points: list[ScalingPoint] = []
    for factor in factors:
        config = replace(base, population=base.population.scaled(factor))
        start = time.perf_counter()
        result = run_experiment(config)
        wall = time.perf_counter() - start
        lane = result.lanes[lane_name]
        points.append(
            ScalingPoint(
                factor=factor,
                node_count=result.node_count,
                reduction=result.reduction_vs_ideal(lane_name),
                clusters=lane.filter_summary.get("clusters", 0.0),
                rmse_with_le=lane.mean_rmse(with_le=True),
                wall_seconds=wall,
            )
        )
    return points


@dataclass(frozen=True)
class PopulationPoint:
    """One fleet size of the columnar population sweep."""

    target_nodes: int
    node_count: int
    reduction: float
    lu_rate: float
    ideal_lu_rate: float
    rmse_with_le: float
    wall_seconds: float
    steps: int

    @property
    def node_steps_per_second(self) -> float:
        """Stepping throughput: node-steps per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.node_count * self.steps / self.wall_seconds


def population_sweep(
    node_counts: tuple[int, ...] = (1_000, 10_000, 100_000),
    *,
    duration: float = 10.0,
    dth_factor: float = 1.0,
    seed: int = 42,
    kernel=None,
) -> list[PopulationPoint]:
    """LU rate and estimation error versus fleet size, at array speed.

    Each requested size is realised by scaling the Table 1 per-region
    counts to the nearest multiple of the base 140-node fleet and running
    the columnar engine over a native :class:`ColumnarMobilitySource`
    population (the fast kernel by default — bit-parity with the object
    path is the parity test's job, not the scaling study's).
    """
    from repro.campus import default_campus
    from repro.core.columnar import ColumnarMobilitySource, run_columnar_experiment
    from repro.core.columnar.kernels import FAST_KERNEL
    from repro.mobility.population import table1_spec

    if not node_counts:
        raise ValueError("need at least one node count")
    kernel = kernel if kernel is not None else FAST_KERNEL
    campus = default_campus()
    base_spec = table1_spec()
    base_size = base_spec.total_for(
        len(campus.roads()), len(campus.buildings())
    )
    lane_name = f"adf-{dth_factor:g}"
    points: list[PopulationPoint] = []
    for target in node_counts:
        if target < 1:
            raise ValueError(f"node counts must be >= 1, got {target}")
        factor = max(1, round(target / base_size))
        source = ColumnarMobilitySource(
            campus, base_spec.scaled(factor), seed=seed
        )
        config = ExperimentConfig(
            duration=duration, dth_factors=(dth_factor,), seed=seed
        )
        start = time.perf_counter()
        result = run_columnar_experiment(
            config, campus=campus, source=source, kernel=kernel
        )
        wall = time.perf_counter() - start
        lane = result.lanes[lane_name]
        ideal = result.lanes["ideal"]
        points.append(
            PopulationPoint(
                target_nodes=target,
                node_count=result.node_count,
                reduction=result.reduction_vs_ideal(lane_name),
                lu_rate=lane.meter.mean_rate(duration),
                ideal_lu_rate=ideal.meter.mean_rate(duration),
                rmse_with_le=lane.mean_rmse(with_le=True),
                wall_seconds=wall,
                steps=config.steps(),
            )
        )
    return points


def render_population_table(points: list[PopulationPoint]) -> str:
    """The population sweep as an aligned text table."""
    header = (
        f"{'nodes':>9}  {'LU/s (adf)':>11}  {'LU/s (ideal)':>12}  "
        f"{'reduction':>9}  {'RMSE w/LE':>9}  {'wall s':>8}  {'knode-steps/s':>13}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.node_count:>9d}  {p.lu_rate:>11.1f}  {p.ideal_lu_rate:>12.1f}  "
            f"{p.reduction:>8.1%}  {p.rmse_with_le:>9.2f}  {p.wall_seconds:>8.2f}  "
            f"{p.node_steps_per_second / 1e3:>13.0f}"
        )
    return "\n".join(lines)
