"""Scalability study: does the ADF's behaviour survive bigger fleets?

The paper evaluates exactly 140 MNs.  A system claim like "reduces
communication traffic" should be robust to fleet size, and a grid broker
cares about how the cluster structure grows.  Two sweeps live here:

* :func:`scaling_sweep` multiplies the Table 1 population through the
  *object* harness (2x-4x the paper's fleet) — full fidelity, object
  speed.
* :func:`population_sweep` pushes to 1k-100k+ nodes through the
  *columnar* engine with the fast kernel and the native array mobility
  source, reporting LU rate, reduction and RMSE versus fleet size along
  with stepping throughput.  This is the regime the object path cannot
  reach in reasonable wall-clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment

__all__ = [
    "ScalingPoint",
    "scaling_sweep",
    "PopulationPoint",
    "population_sweep",
    "render_population_table",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One population size of the scaling sweep."""

    factor: int
    node_count: int
    reduction: float
    clusters: float
    rmse_with_le: float
    wall_seconds: float

    def nodes_per_cluster(self) -> float:
        """Average cluster occupancy (moving nodes only)."""
        return self.node_count / self.clusters if self.clusters else 0.0


def scaling_sweep(
    factors: tuple[int, ...] = (1, 2, 4),
    *,
    duration: float = 60.0,
    dth_factor: float = 1.0,
    seed: int = 42,
) -> list[ScalingPoint]:
    """Run the experiment at several population multipliers.

    Each factor multiplies every Table 1 per-region count, so factor 2
    means 280 MNs on the same campus.
    """
    if not factors:
        raise ValueError("need at least one factor")
    base = ExperimentConfig(
        duration=duration, dth_factors=(dth_factor,), seed=seed
    )
    lane_name = f"adf-{dth_factor:g}"
    points: list[ScalingPoint] = []
    for factor in factors:
        config = replace(base, population=base.population.scaled(factor))
        start = time.perf_counter()
        result = run_experiment(config)
        wall = time.perf_counter() - start
        lane = result.lanes[lane_name]
        points.append(
            ScalingPoint(
                factor=factor,
                node_count=result.node_count,
                reduction=result.reduction_vs_ideal(lane_name),
                clusters=lane.filter_summary.get("clusters", 0.0),
                rmse_with_le=lane.mean_rmse(with_le=True),
                wall_seconds=wall,
            )
        )
    return points


@dataclass(frozen=True)
class PopulationPoint:
    """One fleet size of the columnar population sweep."""

    target_nodes: int
    node_count: int
    reduction: float
    lu_rate: float
    ideal_lu_rate: float
    rmse_with_le: float
    wall_seconds: float
    steps: int
    peak_rss_mb: float = 0.0

    @property
    def node_steps_per_second(self) -> float:
        """Stepping throughput: node-steps per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.node_count * self.steps / self.wall_seconds


def _peak_rss_mb() -> float:
    """Process high-water RSS in MB (0.0 where resource is unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0.0
    # ru_maxrss is KB on Linux (bytes on macOS, where this over-reports
    # by 1024x — the sweep is benched on Linux, so keep the simple unit).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def population_sweep(
    node_counts: tuple[int, ...] = (1_000, 10_000, 100_000),
    *,
    duration: float = 10.0,
    dth_factor: float = 1.0,
    seed: int = 42,
    kernel=None,
    campus=None,
    cluster_mode: str = "exact",
    trace_path=None,
    trace_lane: str | None = None,
) -> list[PopulationPoint]:
    """LU rate and estimation error versus fleet size, at array speed.

    Each requested size is realised by scaling the Table 1 per-region
    counts to the nearest multiple of the base fleet for *campus* (the
    default campus, or a generated grid city) and running the columnar
    engine over a native :class:`ColumnarMobilitySource` population (the
    fast kernel by default — bit-parity with the object path is the
    parity test's job, not the scaling study's).

    *cluster_mode* selects the BSAS placement path: ``"exact"`` for the
    bit-faithful sequential sweep, ``"batched"`` for the epoch-chunked
    1M-node mode.  Each point reports the process's peak RSS after its
    run; ``ru_maxrss`` is a high-water mark, so the column is
    non-decreasing down the table and a rung's own footprint is the
    delta from the previous row.

    When *trace_path* is given, the **largest** rung's run records the
    ADF lane's LU stream (or *trace_lane*) as a ``repro-lu-trace`` file
    for serving replay.
    """
    from repro.campus import default_campus
    from repro.core.columnar import ColumnarMobilitySource, run_columnar_experiment
    from repro.core.columnar.kernels import FAST_KERNEL
    from repro.mobility.population import table1_spec

    if not node_counts:
        raise ValueError("need at least one node count")
    kernel = kernel if kernel is not None else FAST_KERNEL
    campus = campus if campus is not None else default_campus()
    base_spec = table1_spec()
    base_size = base_spec.total_for(
        len(campus.roads()), len(campus.buildings())
    )
    lane_name = f"adf-{dth_factor:g}"
    trace_target = max(node_counts) if trace_path is not None else None
    points: list[PopulationPoint] = []
    for target in node_counts:
        if target < 1:
            raise ValueError(f"node counts must be >= 1, got {target}")
        factor = max(1, round(target / base_size))
        source = ColumnarMobilitySource(
            campus, base_spec.scaled(factor), seed=seed
        )
        config = ExperimentConfig(
            duration=duration, dth_factors=(dth_factor,), seed=seed
        )
        recorder = None
        if trace_target is not None and target == trace_target:
            from repro.serving.trace import ColumnarTraceRecorder

            recorder = ColumnarTraceRecorder(trace_lane or lane_name)
            trace_target = None  # record once even with duplicate counts
        start = time.perf_counter()
        if recorder is None:
            result = run_columnar_experiment(
                config,
                campus=campus,
                source=source,
                kernel=kernel,
                cluster_mode=cluster_mode,
            )
        else:
            from repro.core.columnar import ColumnarExperiment

            experiment = ColumnarExperiment(
                config,
                campus=campus,
                source=source,
                kernel=kernel,
                cluster_mode=cluster_mode,
                lu_observer=recorder,
            )
            recorder.bind(
                experiment.node_ids, experiment.resolver.region_ids
            )
            result = experiment.run()
        wall = time.perf_counter() - start
        lane = result.lanes[lane_name]
        ideal = result.lanes["ideal"]
        points.append(
            PopulationPoint(
                target_nodes=target,
                node_count=result.node_count,
                reduction=result.reduction_vs_ideal(lane_name),
                lu_rate=lane.meter.mean_rate(duration),
                ideal_lu_rate=ideal.meter.mean_rate(duration),
                rmse_with_le=lane.mean_rmse(with_le=True),
                wall_seconds=wall,
                steps=config.steps(),
                peak_rss_mb=_peak_rss_mb(),
            )
        )
        if recorder is not None:
            from repro.serving.trace import write_trace

            write_trace(
                recorder.records,
                trace_path,
                meta={
                    "lane": recorder.lane,
                    "seed": seed,
                    "duration": duration,
                    "report_interval": config.report_interval,
                    "node_count": result.node_count,
                    "engine": "columnar",
                    "cluster_mode": cluster_mode,
                },
            )
    return points


def render_population_table(points: list[PopulationPoint]) -> str:
    """The population sweep as an aligned text table."""
    header = (
        f"{'nodes':>9}  {'LU/s (adf)':>11}  {'LU/s (ideal)':>12}  "
        f"{'reduction':>9}  {'RMSE w/LE':>9}  {'wall s':>8}  "
        f"{'peak MB':>8}  {'knode-steps/s':>13}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.node_count:>9d}  {p.lu_rate:>11.1f}  {p.ideal_lu_rate:>12.1f}  "
            f"{p.reduction:>8.1%}  {p.rmse_with_le:>9.2f}  {p.wall_seconds:>8.2f}  "
            f"{p.peak_rss_mb:>8.0f}  {p.node_steps_per_second / 1e3:>13.0f}"
        )
    return "\n".join(lines)
