"""Scalability study: does the ADF's behaviour survive bigger fleets?

The paper evaluates exactly 140 MNs.  A system claim like "reduces
communication traffic" should be robust to fleet size, and a grid broker
cares about how the cluster structure grows.  This module sweeps the
population multiplier and reports, per size: LU reduction, cluster count,
mean RMSE and wall-clock cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment

__all__ = ["ScalingPoint", "scaling_sweep"]


@dataclass(frozen=True)
class ScalingPoint:
    """One population size of the scaling sweep."""

    factor: int
    node_count: int
    reduction: float
    clusters: float
    rmse_with_le: float
    wall_seconds: float

    def nodes_per_cluster(self) -> float:
        """Average cluster occupancy (moving nodes only)."""
        return self.node_count / self.clusters if self.clusters else 0.0


def scaling_sweep(
    factors: tuple[int, ...] = (1, 2, 4),
    *,
    duration: float = 60.0,
    dth_factor: float = 1.0,
    seed: int = 42,
) -> list[ScalingPoint]:
    """Run the experiment at several population multipliers.

    Each factor multiplies every Table 1 per-region count, so factor 2
    means 280 MNs on the same campus.
    """
    if not factors:
        raise ValueError("need at least one factor")
    base = ExperimentConfig(
        duration=duration, dth_factors=(dth_factor,), seed=seed
    )
    lane_name = f"adf-{dth_factor:g}"
    points: list[ScalingPoint] = []
    for factor in factors:
        config = replace(base, population=base.population.scaled(factor))
        start = time.perf_counter()
        result = run_experiment(config)
        wall = time.perf_counter() - start
        lane = result.lanes[lane_name]
        points.append(
            ScalingPoint(
                factor=factor,
                node_count=result.node_count,
                reduction=result.reduction_vs_ideal(lane_name),
                clusters=lane.filter_summary.get("clusters", 0.0),
                rmse_with_le=lane.mean_rmse(with_le=True),
                wall_seconds=wall,
            )
        )
    return points
