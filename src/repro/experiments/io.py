"""Result serialisation: JSON and CSV export of experiment runs.

A downstream user wants the regenerated figures as data, not console text.
``result_to_dict`` produces a plain-JSON-serialisable structure covering
every figure; ``write_json`` / ``write_series_csv`` persist it.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.experiments.figures import (
    fig6_transmission_rate_by_region,
    fig8_rmse_by_region_without_le,
    fig9_rmse_by_region_with_le,
)
from repro.experiments.results import ExperimentResult
from repro.util.timeseries import TimeSeries

__all__ = [
    "result_to_dict",
    "write_json",
    "write_json_atomic",
    "write_series_csv",
    "load_json",
]


def _series_to_lists(series: TimeSeries) -> dict[str, list[float]]:
    return {
        "times": [float(t) for t in series.times],
        "values": [float(v) for v in series.values],
    }


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """A JSON-serialisable summary of a run (all figures included)."""
    lanes: dict[str, Any] = {}
    for name, lane in result.lanes.items():
        lanes[name] = {
            "kind": lane.kind,
            "dth_factor": lane.dth_factor,
            "total_lus": lane.total_lus,
            "reduction_vs_ideal": result.reduction_vs_ideal(name),
            "per_region": lane.meter.per_region(),
            "rmse_with_le": _series_to_lists(lane.rmse_with_le),
            "rmse_without_le": _series_to_lists(lane.rmse_without_le),
            "mean_rmse_with_le": lane.mean_rmse(with_le=True),
            "mean_rmse_without_le": lane.mean_rmse(with_le=False),
            "filter_summary": lane.filter_summary,
        }
    out = {
        "duration": result.duration,
        "report_interval": result.report_interval,
        "node_count": result.node_count,
        "classification_accuracy": result.classification_accuracy,
        "average_fleet_speed": result.average_fleet_speed,
        "road_regions": result.road_region_ids,
        "building_regions": result.building_region_ids,
        "lanes": lanes,
        "fig6": fig6_transmission_rate_by_region(result),
        "fig8": fig8_rmse_by_region_without_le(result),
        "fig9": fig9_rmse_by_region_with_le(result),
    }
    if result.telemetry is not None:
        out["telemetry"] = result.telemetry
    return out


def write_json(result: ExperimentResult, path: str | Path) -> Path:
    """Serialise a run to pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2, sort_keys=True))
    return path


def write_json_atomic(data: dict[str, Any], path: str | Path) -> Path:
    """Write *data* as JSON via a temp file + rename; returns the path.

    Sweep checkpoints use this so an interrupted run never leaves a
    half-written artifact behind: a checkpoint file either exists in
    full or not at all, which is what makes resume-by-skipping safe.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True))
    tmp.replace(path)
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Load a previously exported run summary."""
    return json.loads(Path(path).read_text())


def write_series_csv(
    result: ExperimentResult,
    path: str | Path,
    *,
    kind: str = "lus_per_second",
) -> Path:
    """Export one per-second series family as CSV (column per lane).

    *kind* is one of ``lus_per_second``, ``rmse_with_le``,
    ``rmse_without_le``.
    """
    path = Path(path)
    columns: dict[str, TimeSeries] = {}
    for name, lane in result.lanes.items():
        if kind == "lus_per_second":
            columns[name] = lane.meter.per_second(result.duration)
        elif kind == "rmse_with_le":
            columns[name] = lane.rmse_with_le
        elif kind == "rmse_without_le":
            columns[name] = lane.rmse_without_le
        else:
            raise ValueError(f"unknown series kind {kind!r}")
    columns = {name: s for name, s in columns.items() if len(s)}
    if not columns:
        raise ValueError(f"no data for series kind {kind!r}")
    length = min(len(s) for s in columns.values())
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", *columns.keys()])
        reference = next(iter(columns.values()))
        for i in range(length):
            time, _ = reference[i]
            writer.writerow(
                [time, *(f"{columns[name][i][1]:.6g}" for name in columns)]
            )
    return path
