"""Markdown report generation: the whole evaluation as one document.

``write_markdown_report`` renders a run into a self-contained Markdown
file — summary, every figure as a table, and the per-second series as
fenced ASCII charts — suitable for committing next to EXPERIMENTS.md or
attaching to a CI run.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.figures import (
    fig4_lus_per_second,
    fig6_transmission_rate_by_region,
    fig7_rmse_over_time,
    fig8_rmse_by_region_without_le,
    fig9_rmse_by_region_with_le,
    table1_specification,
)
from repro.experiments.results import ExperimentResult
from repro.viz import line_chart

__all__ = ["render_markdown_report", "write_markdown_report"]


def _table(headers: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def render_markdown_report(result: ExperimentResult, *, title: str = "") -> str:
    """The full run as a Markdown document (returned as a string)."""
    title = title or "Mobile-grid evaluation report"
    parts: list[str] = [f"# {title}", ""]
    parts.append(
        f"{result.node_count} mobile nodes, {result.duration:g} s at "
        f"{result.report_interval:g} s reporting intervals.  Fleet average "
        f"speed {result.average_fleet_speed:.2f} m/s; classifier accuracy "
        f"{result.classification_accuracy:.1%}; {result.handoffs} gateway "
        f"handoffs."
    )

    parts.append("\n## Table 1 — population specification\n")
    parts.append(
        _table(
            ["Region", "#R", "Pattern", "Type", "#MN", "Velocity"],
            [
                [
                    r.region_kind,
                    str(r.region_count),
                    r.mobility_pattern,
                    r.node_type,
                    str(r.node_count),
                    r.velocity_range,
                ]
                for r in table1_specification()
            ],
        )
    )

    parts.append("\n## Figs. 4-5 — location updates\n")
    steps = max(result.duration / result.report_interval, 1.0)
    parts.append(
        _table(
            ["lane", "LU/s", "total", "reduction vs ideal"],
            [
                [
                    name,
                    f"{lane.total_lus / steps:.1f}",
                    str(lane.total_lus),
                    f"{result.reduction_vs_ideal(name):.1%}",
                ]
                for name, lane in result.lanes.items()
            ],
        )
    )
    parts.append("\n```\n" + line_chart(
        fig4_lus_per_second(result), title="LUs per second", height=10
    ) + "\n```")

    parts.append("\n## Fig. 6 — transmission rate by region kind\n")
    parts.append(
        _table(
            ["lane", "road", "building"],
            [
                [name, f"{r['road']:.1%}", f"{r['building']:.1%}"]
                for name, r in fig6_transmission_rate_by_region(result).items()
            ],
        )
    )

    parts.append("\n## Fig. 7 — RMSE with vs without the Location Estimator\n")
    fig7 = fig7_rmse_over_time(result)
    parts.append(
        _table(
            ["lane", "RMSE w/o LE (m)", "RMSE w/ LE (m)", "LE keeps"],
            [
                [
                    name,
                    f"{series['without_le'].mean():.2f}",
                    f"{series['with_le'].mean():.2f}",
                    f"{series['with_le'].mean() / series['without_le'].mean():.1%}"
                    if series["without_le"].mean()
                    else "-",
                ]
                for name, series in fig7.items()
            ],
        )
    )

    for heading, data in (
        ("Fig. 8 — RMSE by region, without LE", fig8_rmse_by_region_without_le(result)),
        ("Fig. 9 — RMSE by region, with LE", fig9_rmse_by_region_with_le(result)),
    ):
        parts.append(f"\n## {heading}\n")
        parts.append(
            _table(
                ["lane", "road (m)", "building (m)", "ratio"],
                [
                    [
                        name,
                        f"{row['road']:.2f}",
                        f"{row['building']:.2f}",
                        f"{row['ratio']:.1f}x",
                    ]
                    for name, row in data.items()
                ],
            )
        )

    adf_clusters = {
        name: lane.cluster_series
        for name, lane in result.lanes.items()
        if len(lane.cluster_series)
    }
    if adf_clusters:
        parts.append("\n## Cluster dynamics\n")
        parts.append(
            "```\n"
            + line_chart(adf_clusters, title="Live clusters over time", height=8)
            + "\n```"
        )
    return "\n".join(parts) + "\n"


def write_markdown_report(
    result: ExperimentResult, path: str | Path, *, title: str = ""
) -> Path:
    """Render and write the Markdown report; returns the path."""
    path = Path(path)
    path.write_text(render_markdown_report(result, title=title))
    return path
