"""Congestion study: LU traffic through a bandwidth-limited uplink.

The paper's motivation made quantitative: all of a region's LUs share one
constrained uplink (e.g. a base station backhaul).  The study plays the
per-second LU streams of the ideal lane and the ADF lanes through
identical :class:`~repro.network.queueing.QueueingChannel` instances and
measures queueing delay and overflow drops.  Where the ideal stream
saturates the link, the ADF's reduced stream stays fast — that delta *is*
the paper's "system load" argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.experiments.results import ExperimentResult
from repro.network.messages import LocationUpdate
from repro.network.queueing import QueueingChannel
from repro.simkernel import Simulator
from repro.util.validation import check_positive

__all__ = ["CongestionPoint", "congestion_study"]

#: Over-the-air size of one LU (header + payload), from the message model.
_LU_BYTES = LocationUpdate(sender="x", timestamp=0.0).size_bytes


@dataclass(frozen=True)
class CongestionPoint:
    """Uplink behaviour for one lane at one bandwidth."""

    lane: str
    bandwidth_bps: float
    offered: int
    delivered: int
    mean_delay: float
    max_delay: float
    drop_rate: float
    utilisation: float


def _replay_lane(
    result: ExperimentResult, lane_name: str, bandwidth_bps: float
) -> CongestionPoint:
    """Play a lane's recorded per-second LU counts through one uplink."""
    sim = Simulator()
    channel = QueueingChannel(
        sim, bandwidth_bps=bandwidth_bps, name=lane_name
    )
    series = result.lanes[lane_name].meter.per_second(result.duration)
    offered = 0
    for second, count in series:
        for k in range(int(count)):
            # Spread the second's LUs uniformly across the interval.
            at = second + (k + 0.5) / max(count, 1.0)
            message = LocationUpdate(
                sender=lane_name, timestamp=at, node_id=f"{k}"
            )
            sim.schedule_at(
                max(at, sim.now),
                lambda m=message: channel.send(m, lambda _m: None),
            )
            offered += 1
    sim.run()
    busy_time = channel.stats.delivered * (_LU_BYTES * 8.0 / bandwidth_bps)
    return CongestionPoint(
        lane=lane_name,
        bandwidth_bps=bandwidth_bps,
        offered=offered,
        delivered=channel.stats.delivered,
        mean_delay=channel.stats.mean_delay,
        max_delay=channel.stats.max_delay,
        drop_rate=channel.stats.drop_rate,
        utilisation=min(busy_time / result.duration, 1.0),
    )


def congestion_study(
    config: ExperimentConfig | None = None,
    *,
    bandwidth_bps: float = 60_000.0,
) -> list[CongestionPoint]:
    """Run the experiment, then replay every lane through the same uplink.

    The default bandwidth (60 kbit/s — a GPRS-class uplink, period-correct
    for 2007) sits just *below* the ideal lane's offered load of
    ``140 LU/s x 96 B = ~107 kbit/s``, so the unfiltered stream saturates
    while the ADF lanes fit.
    """
    check_positive(bandwidth_bps, "bandwidth_bps")
    config = config or ExperimentConfig(duration=120.0)
    result = run_experiment(config)
    return [
        _replay_lane(result, lane_name, bandwidth_bps)
        for lane_name in result.lanes
    ]
