"""Struct-of-arrays BSAS clustering for the columnar engine.

:class:`ColumnarClusterer` re-implements :class:`SequentialClusterer`
(paper §3.2.1) over parallel per-slot columns instead of ``Cluster`` /
``MotionFeature`` objects.  Centroid state — member count, speed sum and
(optionally) the cos/sin heading sums — lives in parallel arrays indexed
by *slot*; a placement compares one node's feature against *every*
centroid at once instead of walking a Python object list.

Two placement modes:

* **exact** (the default) preserves BSAS's sequential semantics to the
  bit: nodes are placed one at a time in stream order, each placement
  sees the centroids exactly as the previous placement left them, ties
  resolve to the earliest-created cluster, and every float op matches
  the scalar path's op (``|s - c|`` subtract/abs, ``sum/n`` divides,
  ``max(·, 0.0)`` clamps, ``atan2`` centroid directions).  The parity
  suite locks this against :class:`SequentialClusterer` on random
  streams, and the golden determinism fixture locks the engine on top
  of it.

  The nearest-centroid search is adaptive: below
  :attr:`ColumnarClusterer.scan_limit` live+dead slots a tight scalar
  scan over Python-float mirrors wins (numpy's ~0.5 µs per-call
  overhead exceeds the work of comparing a handful of centroids);
  beyond it the search is one vectorised ``subtract/abs/argmin`` over
  the numpy mirror.  Both compute the identical first-minimum.  The
  numpy mirror is synchronised lazily — while the population stays in
  the scalar-scan regime no per-placement array writes happen at all.

* **batched** trades the per-node sequencing for epoch-chunked bulk
  assignment: each chunk of nodes is assigned against the centroids as
  *frozen at the start of the chunk* (one distance matrix + argmin),
  joins are applied with ``bincount``, and only out-of-range nodes fall
  back to the exact sequential step (creating clusters as BSAS would).
  This is the ROADMAP's "batch or approximate it" path for the 1M-node
  rung; it is *not* bit-identical to exact mode, and the quality gate
  (``tests/core/test_columnar_clustering.py``) bounds its LU-reduction
  and RMSE drift against exact mode at 10k nodes by
  :data:`BATCHED_REDUCTION_TOLERANCE` / :data:`BATCHED_RMSE_TOLERANCE`.

Slot lifecycle: slots are append-only while clusters live; an emptied
cluster leaves an ``inf``-speed tombstone (never matched by the
nearest-centroid search) so live slots keep their creation order — the
property BSAS tie-breaking and ``np.argmin``'s first-occurrence rule
both rely on.  Tombstones are compacted away (with an O(capacity)
node-slot remap) only when they outnumber the live clusters by
:data:`_COMPACT_SLACK`.

Nodes are integer indices ``0 .. capacity-1`` (the columnar engine's row
numbers), not string ids.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "BATCHED_REDUCTION_TOLERANCE",
    "BATCHED_RMSE_TOLERANCE",
    "ColumnarClusterer",
]

_INF = math.inf
_TWO_PI = 2.0 * math.pi

#: Compact tombstoned slots once they outnumber live clusters by this
#: many — compaction costs an O(capacity) remap, so it must stay rare.
_COMPACT_SLACK = 32

#: Batched-mode epoch sizes: the first chunk is small so the sequential
#: fallback that seeds the initial centroids stays cheap; later chunks
#: amortise the numpy call overhead over many rows.
_SEED_CHUNK = 4_096
_EPOCH_CHUNK = 65_536

#: Declared batched-vs-exact quality tolerances (the satellite quality
#: test asserts them at 10k nodes): absolute drift of the LU-reduction
#: fraction, and relative drift of the with-LE RMSE.
BATCHED_REDUCTION_TOLERANCE = 0.02
BATCHED_RMSE_TOLERANCE = 0.15


class ColumnarClusterer:
    """BSAS over integer node rows with struct-of-arrays centroids.

    Mirrors :class:`SequentialClusterer`'s parameters and placement
    semantics (``alpha`` similarity bound, optional direction weighting,
    ``max_clusters`` saturation that forces out-of-range nodes into
    their nearest cluster).  ``track_directions`` controls whether the
    cos/sin heading sums are maintained — they are only *read* when
    ``direction_weight > 0``, so by default they are tracked exactly
    then (skipping two trig calls and two column writes per placement
    on the speed-only path).
    """

    def __init__(
        self,
        alpha: float,
        *,
        capacity: int,
        direction_weight: float = 0.0,
        max_clusters: int | None = None,
        mode: str = "exact",
        scan_limit: int = 24,
        track_directions: bool | None = None,
    ) -> None:
        check_positive(alpha, "alpha")
        check_non_negative(direction_weight, "direction_weight")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_clusters is not None and max_clusters < 1:
            raise ValueError(f"max_clusters must be >= 1, got {max_clusters}")
        if mode not in ("exact", "batched"):
            raise ValueError(f"mode must be 'exact' or 'batched', got {mode!r}")
        if scan_limit < 0:
            raise ValueError(f"scan_limit must be >= 0, got {scan_limit}")
        self.alpha = alpha
        self.capacity = capacity
        self.direction_weight = direction_weight
        self.max_clusters = max_clusters
        self.mode = mode
        self.scan_limit = scan_limit
        if track_directions is None:
            track_directions = direction_weight > 0.0
        elif not track_directions and direction_weight > 0.0:
            raise ValueError(
                "direction_weight > 0 needs track_directions (the weighted "
                "distance reads the centroid headings)"
            )
        self.track_directions = track_directions
        self._ids = itertools.count(1)
        # Per-slot centroid columns (Python-float mirrors are the hot-loop
        # representation; numpy mirrors are synchronised lazily for the
        # vectorised search).  A tombstoned slot has count 0 / speed inf.
        self._count: list[int] = []
        self._speed_sum: list[float] = []
        self._cspeed: list[float] = []
        self._cid: list[int] = []
        self._dirx_sum: list[float] = []
        self._diry_sum: list[float] = []
        self._cdir: list[float] = []
        self._nslots = 0
        self._live = 0
        # Numpy mirrors (valid only while ``_synced``).
        self._cspeed_np = np.empty(0)
        self._cdir_np = np.empty(0)
        self._scratch = np.empty(0)
        self._synced = False
        # Per-node membership: slot index (-1 = unassigned) plus the
        # exact feature contributions to subtract on removal.
        self._node_slot: list[int] = [-1] * capacity
        self._node_speed: list[float] = [0.0] * capacity
        self._node_cx: list[float] = [0.0] * capacity
        self._node_cy: list[float] = [0.0] * capacity

    # -- queries -------------------------------------------------------------
    def cluster_count(self) -> int:
        """Number of live clusters."""
        return self._live

    def cluster_sizes(self) -> list[int]:
        """Member counts of the live clusters, in creation order."""
        return [c for c in self._count if c > 0]

    def cluster_ids(self) -> list[int]:
        """Ids of the live clusters, in creation order."""
        return [
            cid for cid, c in zip(self._cid, self._count) if c > 0
        ]

    def cluster_of(self, node: int) -> int | None:
        """The id of the cluster *node* belongs to, if any."""
        slot = self._node_slot[node]
        return self._cid[slot] if slot >= 0 else None

    def assigned_count(self) -> int:
        """Number of currently clustered nodes."""
        return sum(c for c in self._count if c > 0)

    def centroid_speed(self, cluster_id: int) -> float:
        """Mean member speed of a live cluster (KeyError when unknown)."""
        slot = self._slot_of(cluster_id)
        return self._cspeed[slot]

    def centroid_direction(self, cluster_id: int) -> float:
        """Circular-mean heading of a live cluster's members.

        Only available when ``track_directions`` is on — without the
        heading sums there is nothing to reconstruct the angle from.
        """
        if not self.track_directions:
            raise ValueError(
                "centroid directions are not tracked "
                "(construct with track_directions=True)"
            )
        slot = self._slot_of(cluster_id)
        return self._cdir[slot]

    def _slot_of(self, cluster_id: int) -> int:
        for slot, cid in enumerate(self._cid):
            if cid == cluster_id and self._count[slot] > 0:
                return slot
        raise KeyError(f"no live cluster {cluster_id}")

    # -- single-node operations (the readable reference path) ----------------
    def assign(self, node: int, speed: float, direction: float) -> tuple[int, bool]:
        """Place one node per BSAS; returns ``(cluster_id, moved)``.

        ``moved`` is true when the node was already clustered and ended
        in a *different* cluster — the signal the reassignment counters
        consume.  Always runs the exact sequential step, regardless of
        ``mode`` (batching is a property of the bulk sweep, not of a
        single placement).
        """
        old_cid = self._remove(node)
        slot, distance = self._nearest(speed, direction)
        if slot >= 0 and (
            distance < self.alpha
            or (
                self.max_clusters is not None
                and self._live >= self.max_clusters
            )
        ):
            cid = self._join(node, slot, speed, direction)
        else:
            cid = self._create(node, speed, direction)
        return cid, old_cid is not None and old_cid != cid

    def unassign(self, node: int) -> None:
        """Remove a node from its cluster (no-op when unassigned)."""
        self._remove(node)

    def clear(self) -> None:
        """Drop every cluster and assignment (cluster ids keep counting)."""
        self._count.clear()
        self._speed_sum.clear()
        self._cspeed.clear()
        self._cid.clear()
        self._dirx_sum.clear()
        self._diry_sum.clear()
        self._cdir.clear()
        self._nslots = 0
        self._live = 0
        self._synced = False
        self._node_slot = [-1] * self.capacity

    # -- internals shared by assign() and the bulk sweeps ---------------------
    def _remove(self, node: int) -> int | None:
        """Detach *node* from its cluster; returns the old cluster id."""
        slot = self._node_slot[node]
        if slot < 0:
            return None
        self._node_slot[node] = -1
        old_cid = self._cid[slot]
        count = self._count[slot] - 1
        if count:
            self._count[slot] = count
            total = self._speed_sum[slot] - self._node_speed[node]
            self._speed_sum[slot] = total
            speed = total / count
            self._cspeed[slot] = speed if speed >= 0.0 else 0.0
            if self.track_directions:
                dx = self._dirx_sum[slot] - self._node_cx[node]
                dy = self._diry_sum[slot] - self._node_cy[node]
                self._dirx_sum[slot] = dx
                self._diry_sum[slot] = dy
                self._cdir[slot] = math.atan2(dy / count, dx / count)
            if self._synced:
                if self._nslots <= self.scan_limit:
                    self._synced = False
                else:
                    self._cspeed_np[slot] = self._cspeed[slot]
                    if self.track_directions:
                        self._cdir_np[slot] = self._cdir[slot]
        else:
            self._tombstone(slot)
        return old_cid

    def _tombstone(self, slot: int) -> None:
        self._count[slot] = 0
        self._cspeed[slot] = _INF
        if self.track_directions:
            self._cdir[slot] = 0.0
        self._live -= 1
        if self._synced:
            if self._nslots <= self.scan_limit:
                self._synced = False
            else:
                self._cspeed_np[slot] = _INF
                if self.track_directions:
                    self._cdir_np[slot] = 0.0
        if self._nslots - self._live > max(self._live, _COMPACT_SLACK):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned slots, preserving live creation order."""
        keep = [s for s in range(self._nslots) if self._count[s] > 0]
        remap = [-1] * self._nslots
        for new, old in enumerate(keep):
            remap[old] = new
        self._count = [self._count[s] for s in keep]
        self._speed_sum = [self._speed_sum[s] for s in keep]
        self._cspeed = [self._cspeed[s] for s in keep]
        self._cid = [self._cid[s] for s in keep]
        if self.track_directions:
            self._dirx_sum = [self._dirx_sum[s] for s in keep]
            self._diry_sum = [self._diry_sum[s] for s in keep]
            self._cdir = [self._cdir[s] for s in keep]
        self._nslots = len(keep)
        self._synced = False
        self._node_slot = [
            remap[s] if s >= 0 else -1 for s in self._node_slot
        ]

    def _nearest(self, speed: float, direction: float) -> tuple[int, float]:
        """First-minimum nearest slot and its distance (``(-1, inf)`` empty)."""
        if self._live == 0:
            return -1, _INF
        weight = self.direction_weight
        if self._nslots <= self.scan_limit:
            best = -1
            best_d = _INF
            if weight <= 0.0:
                slot = 0
                for cs in self._cspeed:
                    d = speed - cs
                    if d < 0.0:
                        d = -d
                    if d < best_d:
                        best_d = d
                        best = slot
                    slot += 1
            else:
                slot = 0
                cdir = self._cdir
                for cs in self._cspeed:
                    d = speed - cs
                    if d < 0.0:
                        d = -d
                    # Inlined angle_difference (normalize into (-pi, pi]).
                    theta = math.fmod(direction - cdir[slot], _TWO_PI)
                    if theta <= -math.pi:
                        theta += _TWO_PI
                    elif theta > math.pi:
                        theta -= _TWO_PI
                    d += weight * (theta if theta >= 0.0 else -theta)
                    if d < best_d:
                        best_d = d
                        best = slot
                    slot += 1
            return best, best_d
        if not self._synced:
            self._sync_mirror()
        scratch = self._scratch
        np.subtract(self._cspeed_np, speed, scratch)
        np.abs(scratch, scratch)
        if weight > 0.0:
            # Vectorised angle_difference: np.fmod is C fmod, exactly the
            # scalar math.fmod, and the wrap adds are plain float adds —
            # bit-identical to the loop above.  Tombstones carry heading
            # 0.0, so their finite angle term still sums with the inf
            # speed term to inf and never wins.
            theta = np.fmod(direction - self._cdir_np, _TWO_PI)
            theta[theta <= -math.pi] += _TWO_PI
            theta[theta > math.pi] -= _TWO_PI
            np.abs(theta, theta)
            scratch += weight * theta
        best = int(scratch.argmin())
        best_d = float(scratch[best])
        if best_d == _INF:  # every slot is a tombstone (can't happen: live>0)
            return -1, _INF
        return best, best_d

    def _sync_mirror(self) -> None:
        m = self._nslots
        if len(self._cspeed_np) < m:
            size = max(64, 1 << (m - 1).bit_length())
            self._cspeed_np = np.full(size, _INF)
            self._scratch = np.empty(size)
            if self.track_directions:
                self._cdir_np = np.zeros(size)
        self._cspeed_np[:m] = self._cspeed
        self._cspeed_np[m:] = _INF
        if self.track_directions:
            self._cdir_np[:m] = self._cdir
            self._cdir_np[m:] = 0.0
        self._synced = True

    def _join(self, node: int, slot: int, speed: float, direction: float) -> int:
        count = self._count[slot] + 1
        self._count[slot] = count
        total = self._speed_sum[slot] + speed
        self._speed_sum[slot] = total
        cs = total / count
        self._cspeed[slot] = cs if cs >= 0.0 else 0.0
        self._node_slot[node] = slot
        self._node_speed[node] = speed
        if self.track_directions:
            cx = math.cos(direction)
            cy = math.sin(direction)
            self._node_cx[node] = cx
            self._node_cy[node] = cy
            dx = self._dirx_sum[slot] + cx
            dy = self._diry_sum[slot] + cy
            self._dirx_sum[slot] = dx
            self._diry_sum[slot] = dy
            self._cdir[slot] = math.atan2(dy / count, dx / count)
        if self._synced:
            if self._nslots <= self.scan_limit:
                self._synced = False
            else:
                self._cspeed_np[slot] = self._cspeed[slot]
                if self.track_directions:
                    self._cdir_np[slot] = self._cdir[slot]
        return self._cid[slot]

    def _create(self, node: int, speed: float, direction: float) -> int:
        cid = next(self._ids)
        slot = self._nslots
        self._count.append(1)
        self._speed_sum.append(speed)
        self._cspeed.append(speed if speed >= 0.0 else 0.0)
        self._cid.append(cid)
        if self.track_directions:
            cx = math.cos(direction)
            cy = math.sin(direction)
            self._node_cx[node] = cx
            self._node_cy[node] = cy
            self._dirx_sum.append(cx)
            self._diry_sum.append(cy)
            self._cdir.append(math.atan2(cy, cx))
        self._nslots = slot + 1
        self._live += 1
        self._node_slot[node] = slot
        self._node_speed[node] = speed
        if self._synced:
            if slot < len(self._cspeed_np):
                self._cspeed_np[slot] = self._cspeed[slot]
                if self.track_directions:
                    self._cdir_np[slot] = self._cdir[slot]
            else:
                self._synced = False
        return cid

    # -- the bulk sweep -------------------------------------------------------
    def place_all(
        self,
        stop: np.ndarray,
        speeds: np.ndarray,
        directions: np.ndarray | None,
        avg: np.ndarray | None = None,
    ) -> int:
        """Place every node for one step; returns the reassignment count.

        *stop* is the boolean stopped-mask (SS nodes are unassigned, the
        paper clusters "every MN except MN in the SS"); *speeds* /
        *directions* are the per-node window means (*directions* may be
        ``None`` when headings are untracked — the speed-only distance
        never reads them).  When *avg* is given, ``avg[i]`` receives the
        node's cluster average speed as it stood right after its own
        placement (0.0 for stopped nodes) — the per-node DTH input.  In
        batched mode the per-node sequencing is replaced by the epoch
        semantics described in the module docstring, and ``avg`` carries
        the post-chunk centroid speed instead.
        """
        if self.track_directions and directions is None:
            raise ValueError("directions are required when headings are tracked")
        if self.mode == "batched":
            return self._place_all_batched(stop, speeds, directions, avg)
        return self._place_all_exact(stop, speeds, directions, avg)

    def _place_all_exact(
        self,
        stop: np.ndarray,
        speeds: np.ndarray,
        directions: np.ndarray,
        avg: np.ndarray | None,
    ) -> int:
        """The hot loop: ``assign`` inlined per node, locals hoisted.

        The structure (and every float op) matches assign()/_remove()/
        _nearest()/_join()/_create() above — those stay the readable
        spec; this loop exists because a method call per node per step
        is most of the object path's cost.  Only the untracked
        speed-only fast path is inlined; weighted or heading-tracking
        variants delegate to the methods (neither is on any hot path).
        """
        if self.direction_weight > 0.0 or self.track_directions:
            return self._place_all_methods(stop, speeds, directions, avg)
        stop_list = stop.tolist()
        speed_list = speeds.tolist()
        avg_list = [0.0] * len(stop_list)
        moves = 0
        alpha = self.alpha
        maxc = self.max_clusters
        use_maxc = maxc is not None
        scan_limit = self.scan_limit
        node_slot = self._node_slot
        node_speed = self._node_speed
        counts = self._count
        ssums = self._speed_sum
        cspeed = self._cspeed
        cids = self._cid
        sub = np.subtract
        nabs = np.abs
        # live/nslots/synced are loop-maintained locals: they only change
        # on the rare tombstone/create/sync paths, which re-read them —
        # the common remove-survivor + join path never touches `self`.
        live = self._live
        nslots = self._nslots
        if nslots <= scan_limit:
            # Entering the scan regime invalidates the mirror up front so
            # the hot loop never has to write self._synced per mutation.
            self._synced = False
        synced = self._synced
        for i, stopped in enumerate(stop_list):
            old_cid = -1
            slot = node_slot[i]
            if slot >= 0:
                # Inlined _remove.
                node_slot[i] = -1
                old_cid = cids[slot]
                cnt = counts[slot] - 1
                if cnt:
                    counts[slot] = cnt
                    total = ssums[slot] - node_speed[i]
                    ssums[slot] = total
                    cs = total / cnt
                    cs = cs if cs >= 0.0 else 0.0
                    cspeed[slot] = cs
                    if synced:
                        self._cspeed_np[slot] = cs
                else:
                    self._tombstone(slot)
                    # _compact may have rebuilt the columns AND node_slot.
                    counts = self._count
                    ssums = self._speed_sum
                    cspeed = self._cspeed
                    cids = self._cid
                    node_slot = self._node_slot
                    live = self._live
                    nslots = self._nslots
                    synced = self._synced
            if stopped:
                continue
            s = speed_list[i]
            # Inlined _nearest (speed-only distance).
            if live == 0:
                best = -1
                best_d = _INF
            elif nslots <= scan_limit:
                best = -1
                best_d = _INF
                for jj, cv in enumerate(cspeed):
                    d = s - cv
                    if d < 0.0:
                        d = -d
                    if d < best_d:
                        best_d = d
                        best = jj
            else:
                if not synced:
                    self._sync_mirror()
                    synced = True
                scratch = self._scratch
                sub(self._cspeed_np, s, scratch)
                nabs(scratch, scratch)
                best = int(scratch.argmin())
                best_d = s - cspeed[best]
                if best_d < 0.0:
                    best_d = -best_d
            if best >= 0 and (
                best_d < alpha or (use_maxc and live >= maxc)
            ):
                # Inlined _join.
                cnt = counts[best] + 1
                counts[best] = cnt
                total = ssums[best] + s
                ssums[best] = total
                cs = total / cnt
                cs = cs if cs >= 0.0 else 0.0
                cspeed[best] = cs
                node_slot[i] = best
                node_speed[i] = s
                if synced:
                    self._cspeed_np[best] = cs
                cid = cids[best]
            else:
                cid = self._create(i, s, 0.0)
                cs = self._cspeed[self._node_slot[i]]
                live = self._live
                nslots = self._nslots
                synced = self._synced
            avg_list[i] = cs
            if old_cid >= 0 and old_cid != cid:
                moves += 1
        if avg is not None:
            avg[:] = avg_list
        return moves

    def _place_all_methods(
        self,
        stop: np.ndarray,
        speeds: np.ndarray,
        directions: np.ndarray,
        avg: np.ndarray | None,
    ) -> int:
        """Bulk sweep via the reference single-node methods."""
        stop_list = stop.tolist()
        speed_list = speeds.tolist()
        dir_list = directions.tolist()
        moves = 0
        for i, stopped in enumerate(stop_list):
            if stopped:
                self.unassign(i)
                if avg is not None:
                    avg[i] = 0.0
                continue
            cid, moved = self.assign(i, speed_list[i], dir_list[i])
            if moved:
                moves += 1
            if avg is not None:
                avg[i] = self._cspeed[self._node_slot[i]]
        return moves

    # -- batched mode ---------------------------------------------------------
    def _place_all_batched(
        self,
        stop: np.ndarray,
        speeds: np.ndarray,
        directions: np.ndarray,
        avg: np.ndarray | None,
    ) -> int:
        """Epoch-chunked assignment against frozen centroids.

        Per chunk: every chunk member leaves its old cluster (bulk
        ``bincount`` subtraction), the moving members are assigned to
        their nearest *start-of-chunk* centroid in one distance-matrix
        argmin, in-range joins apply as one ``bincount`` addition, and
        only out-of-range rows run the exact sequential create/join
        fallback.  ``avg`` rows receive the post-chunk centroid speed
        of the cluster each node landed in.
        """
        n = len(stop)
        moving = ~stop
        speed_arr = np.asarray(speeds, dtype=np.float64)
        node_slot = np.asarray(self._node_slot, dtype=np.int64)
        node_speed = np.asarray(self._node_speed, dtype=np.float64)
        track = self.track_directions
        if track:
            dir_arr = np.asarray(directions, dtype=np.float64)
            node_cx = np.asarray(self._node_cx, dtype=np.float64)
            node_cy = np.asarray(self._node_cy, dtype=np.float64)
        # Per-slot columns as arrays for the duration of the sweep.
        cap = max(64, 2 * max(self._nslots, 1))
        counts = np.zeros(cap, dtype=np.int64)
        ssums = np.zeros(cap)
        cspeed = np.full(cap, _INF)
        cids = np.full(cap, -1, dtype=np.int64)
        m = self._nslots
        counts[:m] = self._count
        ssums[:m] = self._speed_sum
        cspeed[:m] = self._cspeed
        cids[:m] = self._cid
        if track:
            dirx = np.zeros(cap)
            diry = np.zeros(cap)
            dirx[:m] = self._dirx_sum
            diry[:m] = self._diry_sum
        old_cids_all = np.where(node_slot >= 0, cids[node_slot], -1)
        start = 0
        first = True
        while start < n:
            size = _SEED_CHUNK if first and self._live == 0 else _EPOCH_CHUNK
            first = False
            end = min(n, start + size)
            rows = np.arange(start, end)
            # Freeze the start-of-chunk centroids BEFORE the bulk leave:
            # a cluster whose members all sit in this chunk would otherwise
            # hit count 0, read INF, and dump every member onto the scalar
            # fallback.  Frozen pre-leave values keep it joinable (the
            # mini-batch convention) and the fallback stays rare.
            frozen = cspeed[:m].copy()
            frozen_live = int(np.count_nonzero(counts[:m] > 0))
            # Leave old clusters (stopped and moving rows alike).
            assigned = rows[node_slot[rows] >= 0]
            if assigned.size:
                slots = node_slot[assigned]
                counts[:m] -= np.bincount(slots, minlength=m)[:m]
                ssums[:m] -= np.bincount(
                    slots, weights=node_speed[assigned], minlength=m
                )[:m]
                if track:
                    dirx[:m] -= np.bincount(
                        slots, weights=node_cx[assigned], minlength=m
                    )[:m]
                    diry[:m] -= np.bincount(
                        slots, weights=node_cy[assigned], minlength=m
                    )[:m]
                node_slot[assigned] = -1
                live_mask = counts[:m] > 0
                self._live = int(np.count_nonzero(live_mask))
                cspeed[:m] = np.where(
                    live_mask, np.maximum(ssums[:m] / np.maximum(counts[:m], 1), 0.0), _INF
                )
            move_rows = rows[moving[rows]]
            if move_rows.size:
                s = speed_arr[move_rows]
                if frozen_live:
                    d = np.abs(s[:, None] - frozen[None, :])
                    if self.direction_weight > 0.0:
                        cdir = np.arctan2(
                            diry[:m] / np.maximum(counts[:m], 1),
                            dirx[:m] / np.maximum(counts[:m], 1),
                        )
                        theta = np.fmod(
                            dir_arr[move_rows][:, None] - cdir[None, :], _TWO_PI
                        )
                        theta = np.where(theta <= -math.pi, theta + _TWO_PI, theta)
                        theta = np.where(theta > math.pi, theta - _TWO_PI, theta)
                        d = d + self.direction_weight * np.abs(theta)
                    best = np.argmin(d, axis=1)
                    best_d = d[np.arange(len(best)), best]
                    saturated = (
                        self.max_clusters is not None
                        and frozen_live >= self.max_clusters
                    )
                    join = (best_d < self.alpha) | saturated
                else:
                    best = np.zeros(move_rows.size, dtype=np.int64)
                    join = np.zeros(move_rows.size, dtype=bool)
                joiners = move_rows[join]
                if joiners.size:
                    jslots = best[join]
                    counts[:m] += np.bincount(jslots, minlength=m)[:m]
                    ssums[:m] += np.bincount(
                        jslots, weights=speed_arr[joiners], minlength=m
                    )[:m]
                    if track:
                        jcx = np.cos(dir_arr[joiners])
                        jcy = np.sin(dir_arr[joiners])
                        node_cx[joiners] = jcx
                        node_cy[joiners] = jcy
                        dirx[:m] += np.bincount(jslots, weights=jcx, minlength=m)[:m]
                        diry[:m] += np.bincount(jslots, weights=jcy, minlength=m)[:m]
                    node_slot[joiners] = jslots
                    node_speed[joiners] = speed_arr[joiners]
                # Out-of-range rows: the exact sequential fallback, in
                # row order, mutating the live arrays directly.
                outliers = move_rows[~join]
                for i in outliers.tolist():
                    s_i = float(speed_arr[i])
                    if self._live:
                        dd = np.abs(s_i - cspeed[:m])
                        b = int(dd.argmin())
                        bd = float(dd[b])
                    else:
                        b, bd = -1, _INF
                    if b >= 0 and (
                        bd < self.alpha
                        or (
                            self.max_clusters is not None
                            and self._live >= self.max_clusters
                        )
                    ):
                        counts[b] += 1
                        ssums[b] += s_i
                        cs = ssums[b] / counts[b]
                        cspeed[b] = cs if cs >= 0.0 else 0.0
                        if track:
                            cx = math.cos(float(dir_arr[i]))
                            cy = math.sin(float(dir_arr[i]))
                            node_cx[i] = cx
                            node_cy[i] = cy
                            dirx[b] += cx
                            diry[b] += cy
                        node_slot[i] = b
                        node_speed[i] = s_i
                    else:
                        if m == cap:
                            cap *= 2
                            counts = np.concatenate([counts, np.zeros(cap - m, np.int64)])
                            ssums = np.concatenate([ssums, np.zeros(cap - m)])
                            cspeed = np.concatenate([cspeed, np.full(cap - m, _INF)])
                            cids = np.concatenate(
                                [cids, np.full(cap - m, -1, np.int64)]
                            )
                            if track:
                                dirx = np.concatenate([dirx, np.zeros(cap - m)])
                                diry = np.concatenate([diry, np.zeros(cap - m)])
                        counts[m] = 1
                        ssums[m] = s_i
                        cspeed[m] = s_i if s_i >= 0.0 else 0.0
                        cids[m] = next(self._ids)
                        if track:
                            cx = math.cos(float(dir_arr[i]))
                            cy = math.sin(float(dir_arr[i]))
                            node_cx[i] = cx
                            node_cy[i] = cy
                            dirx[m] = cx
                            diry[m] = cy
                        node_slot[i] = m
                        node_speed[i] = s_i
                        m += 1
                        self._live += 1
                # Post-chunk centroid refresh (joins can revive a cluster
                # that emptied during the leave phase, so recount live).
                live_mask = counts[:m] > 0
                self._live = int(np.count_nonzero(live_mask))
                cspeed[:m] = np.where(
                    live_mask,
                    np.maximum(ssums[:m] / np.maximum(counts[:m], 1), 0.0),
                    _INF,
                )
            start = end
        # Write the columns back to the canonical list representation.
        self._nslots = m
        self._count = counts[:m].tolist()
        self._speed_sum = ssums[:m].tolist()
        self._cspeed = cspeed[:m].tolist()
        self._cid = cids[:m].tolist()
        if track:
            self._dirx_sum = dirx[:m].tolist()
            self._diry_sum = diry[:m].tolist()
            live = counts[:m] > 0
            cdir = np.where(
                live,
                np.arctan2(
                    diry[:m] / np.maximum(counts[:m], 1),
                    dirx[:m] / np.maximum(counts[:m], 1),
                ),
                0.0,
            )
            self._cdir = cdir.tolist()
            self._node_cx = node_cx.tolist()
            self._node_cy = node_cy.tolist()
        self._node_slot = node_slot.tolist()
        self._node_speed = node_speed.tolist()
        self._synced = False
        if avg is not None:
            placed = node_slot >= 0
            avg[:] = 0.0
            avg[placed] = np.maximum(cspeed[node_slot[placed]], 0.0)
        new_cids = np.where(node_slot >= 0, cids[node_slot], -1)
        return int(
            np.count_nonzero((old_cids_all >= 0) & (old_cids_all != new_cids))
        )
