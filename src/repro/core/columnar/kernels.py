"""Math kernels for the columnar core: *exact* and *fast* variants.

The object path computes per-node quantities with scalar ``math.hypot``,
``math.atan2`` and ``math.log``.  Their numpy counterparts are **not**
bit-identical on this platform (numpy routes them through its own SIMD
implementations, which differ from libm in the last ulp on a fraction of
inputs), while ``np.cos``/``np.sin``/``np.sqrt`` and elementwise
``+ - * /`` *are* exact matches.  The columnar engine is therefore
parameterised by a :class:`MathKernel`:

* :data:`EXACT_KERNEL` evaluates hypot/atan2/log with scalar ``math.*``
  loops — slower, but reproduces the object path bit for bit (the golden
  parity test runs in this mode);
* :data:`FAST_KERNEL` uses the vectorised numpy equivalents — the mode
  the 100k+ benchmarks and the population scaling study run in.

:func:`chain_add` vectorises a *sequential* accumulation chain
(``acc += v`` in a Python loop) in both modes: ``np.cumsum`` accumulates
strictly left to right, unlike ``np.sum``'s pairwise reduction, so its
final element is bit-identical to the scalar loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["MathKernel", "EXACT_KERNEL", "FAST_KERNEL", "chain_add", "running_chain"]


def _scalar_map2(fn, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Apply a scalar two-argument function elementwise via ``math.*``."""
    return np.fromiter(
        (fn(x, y) for x, y in zip(a.tolist(), b.tolist())),
        dtype=np.float64,
        count=len(a),
    )


def _exact_hypot(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return _scalar_map2(math.hypot, x, y)


def _exact_atan2(y: np.ndarray, x: np.ndarray) -> np.ndarray:
    return _scalar_map2(math.atan2, y, x)


def _exact_log(x: np.ndarray) -> np.ndarray:
    return np.fromiter(
        (math.log(v) for v in x.tolist()), dtype=np.float64, count=len(x)
    )


def _exact_pow2(x: np.ndarray) -> np.ndarray:
    # Python's ``x ** 2`` routes through C ``pow``, which differs from a
    # plain multiply in the last ulp on a fraction of inputs.
    # ``np.float_power`` calls the same libm ``pow`` and matches it bit for
    # bit, so the exact variant is vectorised too.
    return np.float_power(x, 2.0)


def _fast_hypot(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.hypot(x, y)


def _fast_atan2(y: np.ndarray, x: np.ndarray) -> np.ndarray:
    return np.arctan2(y, x)


def _fast_log(x: np.ndarray) -> np.ndarray:
    return np.log(x)


def _fast_pow2(x: np.ndarray) -> np.ndarray:
    return x * x


@dataclass(frozen=True)
class MathKernel:
    """The three transcendental kernels whose numpy forms are inexact.

    Everything else the engine needs (cos, sin, sqrt, arithmetic,
    comparisons) vectorises bit-identically and is used directly.
    """

    name: str
    hypot: object
    atan2: object
    log: object
    pow2: object

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MathKernel({self.name})"


EXACT_KERNEL = MathKernel(
    "exact", _exact_hypot, _exact_atan2, _exact_log, _exact_pow2
)
FAST_KERNEL = MathKernel("fast", _fast_hypot, _fast_atan2, _fast_log, _fast_pow2)


def chain_add(initial: float, values: np.ndarray) -> float:
    """``initial`` plus *values* accumulated strictly left to right.

    Bit-identical to ``acc = initial; for v in values: acc += v`` because
    ``np.cumsum`` is a sequential scan, not a pairwise reduction.
    """
    if len(values) == 0:
        return initial
    return float(np.cumsum(np.concatenate(([initial], values)))[-1])


def running_chain(initial: float, values: np.ndarray) -> np.ndarray:
    """All intermediate sums of the left-to-right chain (one per value).

    ``running_chain(s, v)[i]`` equals the scalar ``s + v[0] + ... + v[i]``
    accumulated sequentially — the general-DF's global speed average needs
    every prefix, not just the final total.
    """
    if len(values) == 0:
        return np.empty(0, dtype=np.float64)
    return np.cumsum(np.concatenate(([initial], values)))[1:]
