"""Struct-of-arrays node state and its object-form conversions.

One :class:`ColumnarNodeState` holds the whole population: position,
velocity, heading, mobility pattern, current DTH and last-reported fix,
each as one contiguous float64 (or int8) column.  The object form is a
list of :class:`NodeSnapshot` — the conversion round-trips exactly
(asserted by hypothesis tests), which is what lets the engine hand
populations back and forth between the columnar and object paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.geometry import Vec2
from repro.mobility.states import MobilityState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mobility.node import MobileNode

__all__ = [
    "PATTERN_CODES",
    "PATTERN_FROM_CODE",
    "NO_PATTERN",
    "NodeSnapshot",
    "ColumnarNodeState",
]

#: Integer codes for the pattern column (``NO_PATTERN`` = unknown).
NO_PATTERN = -1
PATTERN_CODES: dict[MobilityState, int] = {
    MobilityState.STOP: 0,
    MobilityState.RANDOM: 1,
    MobilityState.LINEAR: 2,
}
PATTERN_FROM_CODE: dict[int, MobilityState | None] = {
    NO_PATTERN: None,
    **{code: state for state, code in PATTERN_CODES.items()},
}


@dataclass(frozen=True, slots=True)
class NodeSnapshot:
    """The object form of one row of the columnar state."""

    node_id: str
    position: Vec2
    velocity: Vec2
    heading: float
    pattern: MobilityState | None
    dth: float
    last_fix: Vec2 | None
    last_fix_time: float | None


class ColumnarNodeState:
    """Columnar node state: one numpy column per field, one row per node."""

    def __init__(self, node_ids: list[str]) -> None:
        n = len(node_ids)
        if len(set(node_ids)) != n:
            raise ValueError("node ids must be unique")
        self.node_ids: tuple[str, ...] = tuple(node_ids)
        self.index_of: dict[str, int] = {nid: i for i, nid in enumerate(node_ids)}
        self.n = n
        self.x = np.zeros(n, dtype=np.float64)
        self.y = np.zeros(n, dtype=np.float64)
        self.vx = np.zeros(n, dtype=np.float64)
        self.vy = np.zeros(n, dtype=np.float64)
        self.heading = np.zeros(n, dtype=np.float64)
        self.pattern = np.full(n, NO_PATTERN, dtype=np.int8)
        self.dth = np.zeros(n, dtype=np.float64)
        #: Last *transmitted* fix (the distance filter's reference point);
        #: ``has_fix`` gates rows that never transmitted.
        self.fix_x = np.zeros(n, dtype=np.float64)
        self.fix_y = np.zeros(n, dtype=np.float64)
        self.fix_time = np.zeros(n, dtype=np.float64)
        self.has_fix = np.zeros(n, dtype=bool)

    # -- conversions ---------------------------------------------------------
    @classmethod
    def from_nodes(cls, nodes: "list[MobileNode]") -> "ColumnarNodeState":
        """Seed columnar state from live mobility objects."""
        state = cls([node.node_id for node in nodes])
        for i, node in enumerate(nodes):
            position = node.position
            velocity = node.velocity
            state.x[i] = position.x
            state.y[i] = position.y
            state.vx[i] = velocity.x
            state.vy[i] = velocity.y
            state.heading[i] = (
                0.0
                if velocity.x == 0.0 and velocity.y == 0.0
                else math.atan2(velocity.y, velocity.x)
            )
            true_state = node.true_state
            if true_state is not None:
                state.pattern[i] = PATTERN_CODES[true_state]
        return state

    @classmethod
    def from_snapshots(cls, snapshots: list[NodeSnapshot]) -> "ColumnarNodeState":
        """Build columnar state from the object form."""
        state = cls([snap.node_id for snap in snapshots])
        for i, snap in enumerate(snapshots):
            state.x[i] = snap.position.x
            state.y[i] = snap.position.y
            state.vx[i] = snap.velocity.x
            state.vy[i] = snap.velocity.y
            state.heading[i] = snap.heading
            state.pattern[i] = (
                PATTERN_CODES[snap.pattern] if snap.pattern is not None else NO_PATTERN
            )
            state.dth[i] = snap.dth
            if snap.last_fix is not None:
                state.fix_x[i] = snap.last_fix.x
                state.fix_y[i] = snap.last_fix.y
                state.fix_time[i] = (
                    snap.last_fix_time if snap.last_fix_time is not None else 0.0
                )
                state.has_fix[i] = True
        return state

    def to_snapshots(self) -> list[NodeSnapshot]:
        """The object form of every row (inverse of ``from_snapshots``)."""
        out: list[NodeSnapshot] = []
        for i, node_id in enumerate(self.node_ids):
            has_fix = bool(self.has_fix[i])
            out.append(
                NodeSnapshot(
                    node_id=node_id,
                    position=Vec2(float(self.x[i]), float(self.y[i])),
                    velocity=Vec2(float(self.vx[i]), float(self.vy[i])),
                    heading=float(self.heading[i]),
                    pattern=PATTERN_FROM_CODE[int(self.pattern[i])],
                    dth=float(self.dth[i]),
                    last_fix=(
                        Vec2(float(self.fix_x[i]), float(self.fix_y[i]))
                        if has_fix
                        else None
                    ),
                    last_fix_time=float(self.fix_time[i]) if has_fix else None,
                )
            )
        return out

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnarNodeState(n={self.n})"
