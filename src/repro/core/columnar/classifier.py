"""Whole-population mobility classification (columnar Fig. 2).

:class:`ColumnarClassifier` replays :class:`MobilityClassifier`'s sliding
windows as ring buffers of shape ``(window, nodes)`` and classifies every
node per step with array operations.  The numerics replicate the object
path exactly in *exact* kernel mode:

* the speed ring shares one scalar write pointer (every node is observed
  every step), so the deque order oldest -> newest is a plain row walk;
* the direction rings are ragged (only moving observations append), with
  per-node pointers and masked accumulation chains that add ring slots in
  the same left-to-right order Python's ``sum`` walks the deque;
* variance terms use the kernel's ``pow2`` (``x ** 2`` is C ``pow``, not
  a multiply) and the circular std uses the kernel's hypot/log.

The per-node window statistics the cluster manager needs (mean speed,
mean heading components, moving-observation count) are cached on the
instance after every :meth:`observe`.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import ClassifierConfig
from repro.core.columnar.kernels import MathKernel
from repro.core.columnar.state import PATTERN_CODES
from repro.mobility.states import MobilityState

__all__ = ["ColumnarClassifier"]

_STOP = PATTERN_CODES[MobilityState.STOP]
_RANDOM = PATTERN_CODES[MobilityState.RANDOM]
_LINEAR = PATTERN_CODES[MobilityState.LINEAR]


class ColumnarClassifier:
    """SS / RMS / LMS classification over columnar observation windows."""

    def __init__(
        self, config: ClassifierConfig, n: int, kernel: MathKernel
    ) -> None:
        self.config = config
        self.n = n
        self.kernel = kernel
        window = config.window
        self._window = window
        self._cols = np.arange(n)
        # Speed ring: all nodes observe every step, so the write pointer
        # and fill count are scalars shared by the whole population.
        self._speed_ring = np.zeros((window, n), dtype=np.float64)
        self._ptr = 0
        self._count = 0
        # Direction rings are ragged: a slot is written only when the
        # observation moves (speed > 1e-9), mirroring ObservationWindow.add.
        self._dir_ring_x = np.zeros((window, n), dtype=np.float64)
        self._dir_ring_y = np.zeros((window, n), dtype=np.float64)
        self._dptr = np.zeros(n, dtype=np.int64)
        self.dir_count = np.zeros(n, dtype=np.int64)
        #: Latest label codes (PATTERN_CODES values), one per node.
        self.labels = np.full(n, _RANDOM, dtype=np.int8)
        #: Cached window statistics, refreshed by every observe() — the
        #: cluster features (mean speed, circular-mean heading) read them.
        self.mean_speed = np.zeros(n, dtype=np.float64)
        self.dir_mean_x = np.zeros(n, dtype=np.float64)
        self.dir_mean_y = np.zeros(n, dtype=np.float64)

    @property
    def observations(self) -> int:
        """How many observations every node's speed window holds."""
        return self._count

    # -- the per-step pipeline ----------------------------------------------
    def observe(self, speeds: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Absorb one observation per node and return all label codes."""
        window = self._window
        self._speed_ring[self._ptr] = speeds
        self._ptr = (self._ptr + 1) % window
        if self._count < window:
            self._count += 1
        moving = speeds > 1e-9
        mcols = self._cols[moving]
        if mcols.size:
            rows = self._dptr[moving]
            self._dir_ring_x[rows, mcols] = np.cos(directions[moving])
            self._dir_ring_y[rows, mcols] = np.sin(directions[moving])
            self._dptr[moving] = (rows + 1) % window
            np.minimum(self.dir_count + moving, window, out=self.dir_count)
        self._refresh_stats()
        self.labels = self._classify(speeds)
        return self.labels

    def _refresh_stats(self) -> None:
        """Recompute the cached window means in deque order."""
        window = self._window
        count = self._count
        start = (self._ptr - count) % window
        # Left-to-right accumulation over ring rows == Python sum() over
        # the deque: row (start + j) % window holds the j-th oldest entry.
        ssum = np.zeros(self.n, dtype=np.float64)
        for j in range(count):
            ssum = ssum + self._speed_ring[(start + j) % window]
        self.mean_speed = ssum / count
        dcount = self.dir_count
        dstart = (self._dptr - dcount) % window
        sx = np.zeros(self.n, dtype=np.float64)
        sy = np.zeros(self.n, dtype=np.float64)
        cols = self._cols
        for j in range(window):
            valid = j < dcount
            if not np.any(valid):
                break
            rows = (dstart + j) % window
            sx = np.where(valid, sx + self._dir_ring_x[rows, cols], sx)
            sy = np.where(valid, sy + self._dir_ring_y[rows, cols], sy)
        dcf = dcount.astype(np.float64)
        has_dir = dcount > 0
        self.dir_mean_x = np.divide(
            sx, dcf, out=np.zeros(self.n), where=has_dir
        )
        self.dir_mean_y = np.divide(
            sy, dcf, out=np.zeros(self.n), where=has_dir
        )

    def _classify(self, speeds: np.ndarray) -> np.ndarray:
        cfg = self.config
        count = self._count
        if count < cfg.min_observations:
            # Warm-up: the instantaneous rule, vectorised.
            return np.where(
                speeds <= cfg.stop_speed,
                _STOP,
                np.where(speeds > cfg.v_walk, _LINEAR, _RANDOM),
            ).astype(np.int8)
        mean = self.mean_speed
        labels = np.full(self.n, _RANDOM, dtype=np.int8)
        stop = mean <= cfg.stop_speed
        labels[stop] = _STOP
        fast = ~stop & (mean > cfg.v_walk)
        labels[fast] = _LINEAR
        mid = ~stop & ~fast
        if not np.any(mid):
            return labels
        kernel = self.kernel
        if count < 2:
            speed_std = np.zeros(self.n)
        else:
            window = self._window
            start = (self._ptr - count) % window
            vsum = np.zeros(self.n, dtype=np.float64)
            for j in range(count):
                dev = self._speed_ring[(start + j) % window] - mean
                vsum = vsum + kernel.pow2(dev)
            speed_std = np.sqrt(vsum / count)
        constant_speed = speed_std <= cfg.speed_std_threshold
        dcount = self.dir_count
        resultant = kernel.hypot(self.dir_mean_x, self.dir_mean_y)
        direction_std = np.zeros(self.n, dtype=np.float64)
        general = dcount >= 2
        direction_std[general & (resultant <= 1e-12)] = np.inf
        core = np.flatnonzero(
            general & (resultant > 1e-12) & (resultant < 1.0)
        )
        if core.size:
            direction_std[core] = np.sqrt(-2.0 * kernel.log(resultant[core]))
        constant_direction = direction_std <= cfg.direction_std_threshold
        labels[mid & constant_speed & constant_direction] = _LINEAR
        return labels

    def mean_directions(self) -> np.ndarray:
        """Circular-mean heading per node (0.0 with no moving history).

        ``atan2`` of the cached mean heading components — the direction
        half of the cluster feature, matching
        ``ObservationWindow.mean_direction``.
        """
        out = np.zeros(self.n, dtype=np.float64)
        idx = np.flatnonzero(self.dir_count > 0)
        if idx.size:
            out[idx] = self.kernel.atan2(
                self.dir_mean_y[idx], self.dir_mean_x[idx]
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarClassifier(n={self.n}, window={self._window}, "
            f"kernel={self.kernel.name})"
        )
