"""Columnar (struct-of-arrays) simulation core.

Node state lives in numpy arrays — one column per field, one row per
node — and mobility stepping, distance-filter decides and classifier
window statistics run as whole-population array operations.  The object
path (:class:`repro.experiments.harness.MobileGridExperiment`) remains
the reference spec, exactly as ``Campus.region_at_linear`` is the
reference for the spatial index: the columnar engine in *exact* mode is
locked bit-for-bit against it by the golden parity test.
"""

from repro.core.columnar.classifier import ColumnarClassifier
from repro.core.columnar.clustering import ColumnarClusterer
from repro.core.columnar.engine import ColumnarExperiment, run_columnar_experiment
from repro.core.columnar.kernels import EXACT_KERNEL, FAST_KERNEL, MathKernel, chain_add
from repro.core.columnar.mobility import (
    ColumnarMobilitySource,
    MobilitySource,
    ObjectMobilitySource,
)
from repro.core.columnar.state import ColumnarNodeState, NodeSnapshot

__all__ = [
    "ColumnarClassifier",
    "ColumnarClusterer",
    "ColumnarExperiment",
    "ColumnarMobilitySource",
    "ColumnarNodeState",
    "EXACT_KERNEL",
    "FAST_KERNEL",
    "MathKernel",
    "MobilitySource",
    "NodeSnapshot",
    "ObjectMobilitySource",
    "chain_add",
    "run_columnar_experiment",
]
