"""Mobility sources feeding the columnar engine.

Two implementations of one protocol:

* :class:`ObjectMobilitySource` steps the real :class:`MobileNode`
  objects and scatters their positions/velocities into the columns.  It
  draws from exactly the same per-node RNG streams as the object
  harness, so the columnar engine on top of it is bit-identical to the
  reference — this is the parity-test configuration.

* :class:`ColumnarMobilitySource` generates the population natively in
  arrays: per-pattern vectorised kernels (SS / RMS / LMS) with batched
  RNG draws from a single seeded generator.  It is seed-deterministic
  in its own right and follows the same Table 1 structure (regions,
  pattern mix, velocity bands), but is a *synthetic* large-scale
  workload, not a bit-replica of the object models — it exists so
  100k–1M-node populations can be stepped at array speed.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.campus import Campus
from repro.mobility.node import MobileNode
from repro.mobility.population import PopulationSpec, table1_spec
from repro.mobility.states import MobilityState
from repro.core.columnar.state import PATTERN_CODES, ColumnarNodeState

__all__ = ["MobilitySource", "ObjectMobilitySource", "ColumnarMobilitySource"]


class MobilitySource(Protocol):
    """Fills the position/velocity columns of a state, one step at a time."""

    def build_state(self) -> ColumnarNodeState:
        """Create the population's initial columnar state."""
        ...  # pragma: no cover - protocol

    def advance(self, state: ColumnarNodeState, dt: float) -> None:
        """Advance every node by *dt*, updating x/y/vx/vy in place."""
        ...  # pragma: no cover - protocol

    def home_regions(self) -> list[str]:
        """Each node's home region id, in node order."""
        ...  # pragma: no cover - protocol


class ObjectMobilitySource:
    """Steps real ``MobileNode`` objects into the columns (reference mode)."""

    def __init__(self, nodes: list[MobileNode]) -> None:
        self.nodes = nodes

    def build_state(self) -> ColumnarNodeState:
        return ColumnarNodeState.from_nodes(self.nodes)

    def home_regions(self) -> list[str]:
        return [node.home_region for node in self.nodes]

    def advance(self, state: ColumnarNodeState, dt: float) -> None:
        x, y = state.x, state.y
        vx, vy = state.vx, state.vy
        for i, node in enumerate(self.nodes):
            sample = node.advance(dt)
            position = sample.position
            velocity = sample.velocity
            x[i] = position.x
            y[i] = position.y
            vx[i] = velocity.x
            vy[i] = velocity.y


class ColumnarMobilitySource:
    """Native array-kernel population for large-scale runs.

    Nodes are laid out per region following the Table 1 proportions of
    *spec*: roads carry LMS humans and vehicles shuttling along the road
    centreline; buildings carry SS (parked), RMS (random walk inside the
    building bounds) and LMS (corridor shuttle) humans.  All stepping is
    whole-population array arithmetic; all randomness comes from one
    seeded ``default_rng`` in a fixed draw order, so runs are exactly
    reproducible for a given (campus, spec, seed).
    """

    #: Probability an RMS node pauses when it reaches its waypoint, and
    #: the pause-length bound — mirrors ``RandomWalkModel``'s parameters.
    _PAUSE_PROBABILITY = 0.15
    _MAX_PAUSE = 20.0
    #: Relative per-step speed jitter of LMS nodes (``LinearPathModel``).
    _SPEED_JITTER = 0.25

    def __init__(
        self,
        campus: Campus,
        spec: PopulationSpec | None = None,
        *,
        seed: int = 42,
    ) -> None:
        self.campus = campus
        self.spec = spec or table1_spec()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._build_columns()

    # -- construction --------------------------------------------------------
    def _build_columns(self) -> None:
        spec = self.spec
        node_ids: list[str] = []
        pattern: list[int] = []
        home: list[str] = []
        seg_ax: list[float] = []
        seg_ay: list[float] = []
        seg_bx: list[float] = []
        seg_by: list[float] = []
        lo: list[float] = []
        hi: list[float] = []
        bx0: list[float] = []
        bx1: list[float] = []
        by0: list[float] = []
        by1: list[float] = []

        def add(nid: str, code: int, region_id: str, a, b, band, bounds) -> None:
            node_ids.append(nid)
            pattern.append(code)
            home.append(region_id)
            seg_ax.append(a[0])
            seg_ay.append(a[1])
            seg_bx.append(b[0])
            seg_by.append(b[1])
            lo.append(band[0])
            hi.append(band[1])
            bx0.append(bounds[0])
            bx1.append(bounds[1])
            by0.append(bounds[2])
            by1.append(bounds[3])

        linear = PATTERN_CODES[MobilityState.LINEAR]
        random_code = PATTERN_CODES[MobilityState.RANDOM]
        stop = PATTERN_CODES[MobilityState.STOP]
        for region in self.campus.roads():
            centerline = region.centerline
            assert centerline is not None
            a = (centerline.waypoints[0].x, centerline.waypoints[0].y)
            b = (centerline.waypoints[-1].x, centerline.waypoints[-1].y)
            bounds = (
                region.bounds.x_min,
                region.bounds.x_max,
                region.bounds.y_min,
                region.bounds.y_max,
            )
            hb = (spec.road_human_band.low, spec.road_human_band.high)
            vb = (spec.road_vehicle_band.low, spec.road_vehicle_band.high)
            rid = region.region_id
            for i in range(spec.road_humans_per_road):
                add(f"{rid}-human-{i:06d}", linear, rid, a, b, hb, bounds)
            for i in range(spec.road_vehicles_per_road):
                add(f"{rid}-vehicle-{i:06d}", linear, rid, a, b, vb, bounds)
        for region in self.campus.buildings():
            bounds = (
                region.bounds.x_min,
                region.bounds.x_max,
                region.bounds.y_min,
                region.bounds.y_max,
            )
            rid = region.region_id
            if region.corridors:
                corridor = region.corridors[0]
                a = (corridor.waypoints[0].x, corridor.waypoints[0].y)
                b = (corridor.waypoints[-1].x, corridor.waypoints[-1].y)
            else:
                a = (bounds[0], bounds[2])
                b = (bounds[1], bounds[3])
            sb = (spec.building_stop_band.low, spec.building_stop_band.high)
            rb = (spec.building_random_band.low, spec.building_random_band.high)
            lb = (spec.building_linear_band.low, spec.building_linear_band.high)
            for i in range(spec.building_stop):
                add(f"{rid}-SS-{i:06d}", stop, rid, a, b, sb, bounds)
            for i in range(spec.building_random):
                add(f"{rid}-RMS-{i:06d}", random_code, rid, a, b, rb, bounds)
            for i in range(spec.building_linear):
                add(f"{rid}-LMS-{i:06d}", linear, rid, a, b, lb, bounds)

        n = len(node_ids)
        self.node_ids = node_ids
        self._home_regions = home
        self._pattern = np.asarray(pattern, dtype=np.int8)
        self._seg_ax = np.asarray(seg_ax)
        self._seg_ay = np.asarray(seg_ay)
        self._seg_bx = np.asarray(seg_bx)
        self._seg_by = np.asarray(seg_by)
        self._band_lo = np.asarray(lo)
        self._band_hi = np.asarray(hi)
        self._bx0 = np.asarray(bx0)
        self._bx1 = np.asarray(bx1)
        self._by0 = np.asarray(by0)
        self._by1 = np.asarray(by1)
        rng = self._rng
        self._is_linear = self._pattern == linear
        self._is_random = self._pattern == random_code
        # LMS: arc-length fraction along the segment plus shuttle direction.
        self._arc = rng.uniform(0.0, 1.0, n)
        self._direction = np.where(rng.random(n) < 0.5, 1.0, -1.0)
        self._base_speed = rng.uniform(self._band_lo, self._band_hi)
        seg_dx = self._seg_bx - self._seg_ax
        seg_dy = self._seg_by - self._seg_ay
        self._seg_len = np.hypot(seg_dx, seg_dy)
        self._seg_len[self._seg_len <= 0.0] = 1.0
        # RMS: a current waypoint inside the building plus pause state.
        self._start_x = rng.uniform(self._bx0, self._bx1)
        self._start_y = rng.uniform(self._by0, self._by1)
        self._target_x = rng.uniform(self._bx0, self._bx1)
        self._target_y = rng.uniform(self._by0, self._by1)
        self._walk_speed = np.maximum(
            rng.uniform(self._band_lo, self._band_hi), 0.1
        )
        self._pause = np.zeros(n)

    # -- the MobilitySource protocol ----------------------------------------
    def build_state(self) -> ColumnarNodeState:
        state = ColumnarNodeState(self.node_ids)
        state.pattern[:] = self._pattern
        lin = self._is_linear
        state.x[:] = self._start_x
        state.y[:] = self._start_y
        state.x[lin] = (
            self._seg_ax[lin]
            + (self._seg_bx[lin] - self._seg_ax[lin]) * self._arc[lin]
        )
        state.y[lin] = (
            self._seg_ay[lin]
            + (self._seg_by[lin] - self._seg_ay[lin]) * self._arc[lin]
        )
        return state

    def home_regions(self) -> list[str]:
        return list(self._home_regions)

    def advance(self, state: ColumnarNodeState, dt: float) -> None:
        old_x = state.x.copy()
        old_y = state.y.copy()
        rng = self._rng
        n = len(state)
        # LMS: jittered shuttle along the segment, reflecting at the ends.
        lin = self._is_linear
        jitter = 1.0 + self._SPEED_JITTER * rng.standard_normal(n)
        speed = np.clip(
            self._base_speed * np.maximum(jitter, 0.1),
            self._band_lo,
            self._band_hi,
        )
        frac_step = speed * dt / self._seg_len
        arc = self._arc + np.where(lin, self._direction * frac_step, 0.0)
        # Reflect out-of-range arcs back into [0, 1] and flip direction.
        over = arc > 1.0
        under = arc < 0.0
        arc[over] = 2.0 - arc[over]
        arc[under] = -arc[under]
        arc = np.clip(arc, 0.0, 1.0)
        self._direction[over | under] *= -1.0
        self._arc = arc
        state.x[lin] = (
            self._seg_ax[lin] + (self._seg_bx[lin] - self._seg_ax[lin]) * arc[lin]
        )
        state.y[lin] = (
            self._seg_ay[lin] + (self._seg_by[lin] - self._seg_ay[lin]) * arc[lin]
        )
        # RMS: walk toward the waypoint; redraw (maybe pausing) on arrival.
        rnd = self._is_random
        if np.any(rnd):
            dx = self._target_x - state.x
            dy = self._target_y - state.y
            dist = np.hypot(dx, dy)
            paused = self._pause > 0.0
            self._pause = np.maximum(self._pause - dt, 0.0)
            travel = self._walk_speed * dt
            moving = rnd & ~paused
            reach = moving & (travel >= dist)
            partial = moving & ~reach
            scale = np.divide(
                travel, dist, out=np.zeros_like(dist), where=dist > 0.0
            )
            state.x[partial] += dx[partial] * scale[partial]
            state.y[partial] += dy[partial] * scale[partial]
            state.x[reach] = self._target_x[reach]
            state.y[reach] = self._target_y[reach]
            # Arrivals: pick the next waypoint (and maybe a pause) for all
            # nodes at once; unused draws keep the stream layout fixed.
            new_tx = rng.uniform(self._bx0, self._bx1)
            new_ty = rng.uniform(self._by0, self._by1)
            pause_draw = rng.random(n)
            pause_len = rng.uniform(1.0, self._MAX_PAUSE, n)
            self._target_x[reach] = new_tx[reach]
            self._target_y[reach] = new_ty[reach]
            pausing = reach & (pause_draw < self._PAUSE_PROBABILITY)
            self._pause[pausing] = pause_len[pausing]
        # Velocities are derived from displacement, as MobileNode.advance
        # derives them from the model step.
        state.vx[:] = (state.x - old_x) / dt
        state.vy[:] = (state.y - old_y) / dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnarMobilitySource(n={len(self.node_ids)}, seed={self.seed})"
