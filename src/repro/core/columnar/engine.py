"""The columnar experiment engine: the harness loop as array ops.

:class:`ColumnarExperiment` re-implements the per-step pipeline of
:class:`repro.experiments.harness.MobileGridExperiment` — mobility,
region resolution, association, per-lane filtering, broker estimation and
measurement — over :class:`ColumnarNodeState` columns.  The object
harness remains the reference spec; in *exact* kernel mode with an
:class:`ObjectMobilitySource` this engine is bit-identical to it on
every collected metric (locked by the golden parity test against the
determinism fixture).

Scope: the engine models the paper's ideal substrate — telemetry off, no
fault schedule, lossless zero-latency channels (exactly the fixture and
scaling-study configuration).  Anything richer needs the object harness;
the constructor rejects unsupported configurations instead of silently
diverging.

Sequential-to-columnar correspondences worth knowing when reading the
code:

* accumulation chains (fleet speed sum, per-region squared error sums,
  the general-DF global speed average) use :func:`chain_add` /
  :func:`running_chain`, whose ``np.cumsum`` scan is bit-identical to the
  object path's left-to-right ``+=`` loops;
* BSAS cluster placement is inherently sequential (each placement
  mutates the centroid the next node compares against), so it runs the
  struct-of-arrays :class:`ColumnarClusterer` in *exact* mode — same
  sequential semantics, centroids in columns — shared once across all
  ADF lanes, which see identical update streams.  ``cluster_mode=
  "batched"`` swaps in its epoch-chunked approximation for the 1M-node
  rung (and forfeits bit-parity);
* the distance-filter decide, Brown smoother recurrences and tracker
  prediction are one-shot per node per step and vectorise exactly.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.campus import Campus, default_campus
from repro.core.adf import AdfConfig
from repro.core.columnar.classifier import ColumnarClassifier
from repro.core.columnar.clustering import ColumnarClusterer
from repro.core.columnar.kernels import (
    EXACT_KERNEL,
    MathKernel,
    chain_add,
    running_chain,
)
from repro.core.columnar.mobility import MobilitySource, ObjectMobilitySource
from repro.core.columnar.state import PATTERN_CODES
from repro.estimation.metrics import rmse
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult, LaneResult, RegionErrors
from repro.mobility.population import build_population
from repro.mobility.states import MobilityState
from repro.network.messages import LocationUpdate
from repro.network.traffic import TrafficMeter
from repro.telemetry import Telemetry
from repro.util.rng import RngRegistry
from repro.util.timeseries import TimeSeries

__all__ = [
    "ColumnarExperiment",
    "RegionResolver",
    "df_decide",
    "run_columnar_experiment",
]

_STOP = PATTERN_CODES[MobilityState.STOP]


def df_decide(
    x: np.ndarray,
    y: np.ndarray,
    fix_x: np.ndarray,
    fix_y: np.ndarray,
    has_fix: np.ndarray,
    dth: np.ndarray,
    kernel: MathKernel,
) -> np.ndarray:
    """Vectorised ``DistanceFilter.decide`` gate for the whole population.

    Returns the transmit mask: nodes without a reference fix always
    transmit; others transmit when their displacement from the fix
    exceeds their DTH.  Reference bookkeeping is the caller's (update
    ``fix_x/fix_y/has_fix`` at the transmitting rows).
    """
    distance = kernel.hypot(x - fix_x, y - fix_y)
    return ~has_fix | (distance > dth)


class RegionResolver:
    """Vectorised ``Campus.region_at`` plus home-region fallback.

    Built from the campus spatial index's public grid geometry and cell
    table; uses the identical point-to-cell arithmetic and candidate
    precedence (first containing building, else first containing road),
    so the resolved regions match the object path exactly.
    """

    def __init__(self, campus: Campus) -> None:
        index = campus.spatial_index
        self.region_ids: list[str] = list(campus.regions)
        self.code_of: dict[str, int] = {
            rid: i for i, rid in enumerate(self.region_ids)
        }
        self.is_road = np.asarray(
            [campus.regions[rid].is_road for rid in self.region_ids], dtype=bool
        )
        (
            self._x_min,
            self._x_max,
            self._y_min,
            self._y_max,
            self._cell_w,
            self._cell_h,
        ) = index.grid_geometry()
        self._nx, self._ny = index.grid_shape
        code_of = self.code_of
        self._cells = [
            tuple(
                (x0, x1, y0, y1, is_building, code_of[region.region_id])
                for (x0, x1, y0, y1, is_building, region) in entries
            )
            for entries in index.cell_table()
        ]

    def resolve(
        self, x: np.ndarray, y: np.ndarray, fallback_codes: np.ndarray
    ) -> np.ndarray:
        """Region code per node; *fallback_codes* where no region contains."""
        codes = fallback_codes.copy()
        in_bounds = (
            (x >= self._x_min)
            & (x <= self._x_max)
            & (y >= self._y_min)
            & (y <= self._y_max)
        )
        idx_in = np.flatnonzero(in_bounds)
        if not idx_in.size:
            return codes
        nx = self._nx
        ix = np.clip(
            ((x[idx_in] - self._x_min) / self._cell_w).astype(np.int64),
            0,
            nx - 1,
        )
        iy = np.clip(
            ((y[idx_in] - self._y_min) / self._cell_h).astype(np.int64),
            0,
            self._ny - 1,
        )
        cell = iy * nx + ix
        for c in np.unique(cell):
            rows = idx_in[cell == c]
            cx = x[rows]
            cy = y[rows]
            building_hit = np.full(rows.size, -1, dtype=np.int64)
            road_hit = np.full(rows.size, -1, dtype=np.int64)
            for x0, x1, y0, y1, is_building, code in self._cells[c]:
                contains = (cx >= x0) & (cx <= x1) & (cy >= y0) & (cy <= y1)
                if is_building:
                    building_hit = np.where(
                        contains & (building_hit == -1), code, building_hit
                    )
                else:
                    road_hit = np.where(
                        contains & (road_hit == -1), code, road_hit
                    )
            hit = np.where(building_hit != -1, building_hit, road_hit)
            found = hit != -1
            codes[rows[found]] = hit[found]
        return codes


class _BrownBrokerState:
    """Columnar Brown trackers + latest-record map for one with-LE broker."""

    def __init__(self, n: int, alpha: float) -> None:
        self.alpha = alpha
        self.sp_s1 = np.zeros(n)
        self.sp_s2 = np.zeros(n)
        self.sp_n = np.zeros(n, dtype=np.int64)
        self.dc_s1 = np.zeros(n)
        self.dc_s2 = np.zeros(n)
        self.ds_s1 = np.zeros(n)
        self.ds_s2 = np.zeros(n)
        self.dir_n = np.zeros(n, dtype=np.int64)
        self.last_x = np.zeros(n)
        self.last_y = np.zeros(n)
        self.last_t = np.zeros(n)
        self.cap = np.full(n, np.nan)
        self.known = np.zeros(n, dtype=bool)
        self.updated = np.zeros(n, dtype=bool)
        # The location DB's latest-record positions (estimates overwrite).
        self.bel_x = np.zeros(n)
        self.bel_y = np.zeros(n)

    def receive(
        self,
        idx: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        vx: np.ndarray,
        vy: np.ndarray,
        speeds: np.ndarray,
        dth: np.ndarray,
        now: float,
    ) -> None:
        """Absorb the transmitting rows *idx* (Brown recurrences inlined)."""
        a = self.alpha
        sp = speeds[idx]
        first = self.sp_n[idx] == 0
        s1 = np.where(first, sp, a * sp + (1.0 - a) * self.sp_s1[idx])
        s2 = np.where(first, sp, a * s1 + (1.0 - a) * self.sp_s2[idx])
        self.sp_s1[idx] = s1
        self.sp_s2[idx] = s2
        self.sp_n[idx] += 1
        moving = sp > 1e-9
        midx = idx[moving]
        if midx.size:
            ms = speeds[midx]
            firstd = self.dir_n[midx] == 0
            c = vx[midx] / ms
            c1 = np.where(firstd, c, a * c + (1.0 - a) * self.dc_s1[midx])
            c2 = np.where(firstd, c, a * c1 + (1.0 - a) * self.dc_s2[midx])
            self.dc_s1[midx] = c1
            self.dc_s2[midx] = c2
            s = vy[midx] / ms
            t1 = np.where(firstd, s, a * s + (1.0 - a) * self.ds_s1[midx])
            t2 = np.where(firstd, s, a * t1 + (1.0 - a) * self.ds_s2[midx])
            self.ds_s1[midx] = t1
            self.ds_s2[midx] = t2
            self.dir_n[midx] += 1
        self.last_x[idx] = x[idx]
        self.last_y[idx] = y[idx]
        self.last_t[idx] = now
        d = dth[idx]
        self.cap[idx] = np.where(d > 0.0, d, np.nan)
        self.known[idx] = True
        self.updated[idx] = True
        self.bel_x[idx] = x[idx]
        self.bel_y[idx] = y[idx]

    def tick(self, now: float, kernel: MathKernel) -> None:
        """Estimate every known-but-silent node (BrownTracker.predict)."""
        silent = self.known & ~self.updated
        self.updated[:] = False
        idx = np.flatnonzero(silent)
        if not idx.size:
            return
        lx = self.last_x[idx]
        ly = self.last_y[idx]
        px = lx.copy()
        py = ly.copy()
        dt = np.maximum(now - self.last_t[idx], 0.0)
        a = self.alpha
        q = a / (1.0 - a)
        s1 = self.sp_s1[idx]
        s2 = self.sp_s2[idx]
        speed = np.maximum(2.0 * s1 - s2 + 1.0 * (q * (s1 - s2)), 0.0)
        active = (dt > 0.0) & (self.sp_n[idx] > 0)
        active &= (speed > 1e-9) & (self.dir_n[idx] > 0)
        c1 = self.dc_s1[idx]
        c2 = self.dc_s2[idx]
        c = 2.0 * c1 - c2 + 1.0 * (q * (c1 - c2))
        t1 = self.ds_s1[idx]
        t2 = self.ds_s2[idx]
        s = 2.0 * t1 - t2 + 1.0 * (q * (t1 - t2))
        norm = kernel.hypot(c, s)
        active &= norm > 1e-9
        over = active & (norm > 1.0)
        c = np.divide(c, norm, out=c.copy(), where=over)
        s = np.divide(s, norm, out=s.copy(), where=over)
        k = speed * dt
        cand_x = lx + c * k
        cand_y = ly + s * k
        ox = cand_x - lx
        oy = cand_y - ly
        distance = kernel.hypot(ox, oy)
        cap = self.cap[idx]
        # A NaN cap (no DTH on the last LU) never compares greater: no clamp.
        capped = active & (distance > cap)
        scale = np.divide(
            cap, distance, out=np.ones_like(distance), where=capped
        )
        fx = np.where(capped, lx + ox * scale, cand_x)
        fy = np.where(capped, ly + oy * scale, cand_y)
        px = np.where(active, fx, px)
        py = np.where(active, fy, py)
        self.bel_x[idx] = px
        self.bel_y[idx] = py


class _LastKnownBrokerState:
    """Columnar no-LE broker: estimates repeat the last received fix.

    Its estimation sweep never moves a believed position, so only the
    receive side exists.
    """

    def __init__(self, n: int) -> None:
        self.known = np.zeros(n, dtype=bool)
        self.bel_x = np.zeros(n)
        self.bel_y = np.zeros(n)

    def receive(self, idx: np.ndarray, x: np.ndarray, y: np.ndarray) -> None:
        self.known[idx] = True
        self.bel_x[idx] = x[idx]
        self.bel_y[idx] = y[idx]


class _AdfBrain:
    """The classify/cluster/DTH pipeline shared by every ADF lane.

    All ADF lanes process the identical update stream (process() runs for
    every LU regardless of the filter outcome), so their classifier and
    cluster state evolve identically — only the DTH factor, distance
    filter and downstream measurement differ.  One brain therefore serves
    all ADF lanes, exactly reproducing each lane's own pipeline.
    """

    def __init__(
        self,
        config: AdfConfig,
        n: int,
        kernel: MathKernel,
        cluster_mode: str = "exact",
    ) -> None:
        self.classifier = ColumnarClassifier(config.classifier, n, kernel)
        self.clusterer = ColumnarClusterer(
            config.alpha,
            capacity=n,
            direction_weight=config.direction_weight,
            max_clusters=config.max_clusters,
            mode=cluster_mode,
        )
        self.recluster_interval = config.recluster_interval
        self.last_recluster = 0.0
        self.reconstructions = 0
        self.reassignments = 0
        #: Cluster average speed captured right after each node's
        #: placement — the sequencing ClusterAverageDth sees (later
        #: placements this step may shift the cluster mean, but each
        #: node's DTH derives from the cluster as it stood at its turn).
        self.avg = np.zeros(n)

    def update(self, speeds: np.ndarray, directions: np.ndarray) -> np.ndarray:
        labels = self.classifier.observe(speeds, directions)
        self.reassignments += self.clusterer.place_all(
            labels == _STOP,
            self.classifier.mean_speed,
            self._mean_directions(),
            self.avg,
        )
        return labels

    def _mean_directions(self) -> np.ndarray | None:
        # The circular means cost an atan2 sweep and the speed-only
        # distance (direction_weight == 0) never reads them.
        if not self.clusterer.track_directions:
            return None
        return self.classifier.mean_directions()

    def tick(self, now: float) -> bool:
        if now - self.last_recluster < self.recluster_interval:
            return False
        self.clusterer.clear()
        # Reconstruction replaces from a clean slate: nothing counts as
        # a reassignment (place_all returns 0 moves) and avg is not
        # re-captured, exactly as the object harness's reconstruct().
        self.clusterer.place_all(
            self.classifier.labels == _STOP,
            self.classifier.mean_speed,
            self._mean_directions(),
            None,
        )
        self.reconstructions += 1
        self.last_recluster = now
        return True

    def cluster_summary(self) -> dict[str, float]:
        sizes = self.clusterer.cluster_sizes()
        return {
            "clusters": float(len(sizes)),
            "clustered_nodes": float(sum(sizes)),
            "mean_size": float(sum(sizes) / len(sizes)) if sizes else 0.0,
            "reconstructions": float(self.reconstructions),
            "reassignments": float(self.reassignments),
        }


class _GdfBrain:
    """The global-average speed state shared by every general-DF lane."""

    def __init__(self) -> None:
        self.speed_sum = 0.0
        self.count = 0

    def observe(self, speeds: np.ndarray) -> np.ndarray:
        """Per-node global average *as of that node's turn* this step."""
        running = running_chain(self.speed_sum, speeds)
        counts = np.arange(
            self.count + 1, self.count + len(speeds) + 1, dtype=np.float64
        )
        avg = running / counts
        self.speed_sum = float(running[-1])
        self.count += len(speeds)
        return avg


class _ColumnarLane:
    """Per-lane filter, meter and broker state in columnar form."""

    def __init__(
        self,
        name: str,
        kind: str,
        dth_factor: float | None,
        n: int,
        n_regions: int,
        smoothing_alpha: float,
    ) -> None:
        self.name = name
        self.kind = kind
        self.dth_factor = dth_factor
        # Distance-filter references.
        self.fix_x = np.zeros(n)
        self.fix_y = np.zeros(n)
        self.has_fix = np.zeros(n, dtype=bool)
        self.received = 0
        self.transmitted = 0
        self.suppressed = 0
        # Traffic-meter accumulators (folded into a TrafficMeter at collect).
        self.m_total = 0
        self.m_bytes = 0
        self.m_region = np.zeros(n_regions, dtype=np.int64)
        self.m_node = np.zeros(n, dtype=np.int64)
        self.m_bins: Counter[int] = Counter()
        self.with_le = _BrownBrokerState(n, smoothing_alpha)
        self.without_le = _LastKnownBrokerState(n)
        self.rmse_with_le = TimeSeries()
        self.rmse_without_le = TimeSeries()
        self.region_errors_with_le = RegionErrors()
        self.region_errors_without_le = RegionErrors()
        self.cluster_series = TimeSeries()


class ColumnarExperiment:
    """The struct-of-arrays evaluation engine."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        campus: Campus | None = None,
        source: MobilitySource | None = None,
        kernel: MathKernel = EXACT_KERNEL,
        cluster_mode: str = "exact",
        lu_observer=None,
    ) -> None:
        self.config = config or ExperimentConfig()
        cfg = self.config
        self.kernel = kernel
        #: Optional LU-stream sink, called once per lane per step as
        #: ``lu_observer(lane_name, now, idx, x, y, vx, vy, codes, dth)``
        #: with the transmitting row indices — the columnar analogue of
        #: the harness's per-update observer (trace recording hook).
        self._lu_observer = lu_observer
        self.campus = campus or default_campus()
        self.telemetry = Telemetry.from_config(cfg.telemetry)
        if self.telemetry.enabled:
            raise ValueError(
                "the columnar engine does not support telemetry; "
                "use MobileGridExperiment"
            )
        if cfg.faults is not None and cfg.faults:
            raise ValueError(
                "the columnar engine does not support fault schedules; "
                "use MobileGridExperiment"
            )
        if cfg.channel_loss != 0.0 or cfg.channel_latency != 0.0:
            raise ValueError(
                "the columnar engine models the lossless zero-latency "
                "substrate only; use MobileGridExperiment"
            )
        if source is None:
            nodes = build_population(
                self.campus, cfg.population, RngRegistry(cfg.seed)
            )
            source = ObjectMobilitySource(nodes)
        self.source = source
        self.state = source.build_state()
        self.node_ids: list[str] = list(self.state.node_ids)
        n = len(self.state)
        if n == 0:
            raise ValueError("the mobility source produced no nodes")
        self.resolver = RegionResolver(self.campus)
        self._home_codes = np.asarray(
            [self.resolver.code_of[h] for h in source.home_regions()],
            dtype=np.int64,
        )
        # Association view (one for the whole experiment, as in the harness).
        self._serving = np.full(n, -1, dtype=np.int64)
        self.handoffs = 0
        self.associations = 0
        self.registration_messages = 0
        self._speed_sum = 0.0
        self._speed_count = 0
        self._classified_right = 0
        self._classified_total = 0
        n_regions = len(self.resolver.region_ids)
        self._bin_width = min(1.0, cfg.report_interval)
        self._size_bytes = LocationUpdate.size_bytes
        self.lanes: list[_ColumnarLane] = [
            _ColumnarLane("ideal", "ideal", None, n, n_regions, cfg.smoothing_alpha)
        ]
        for factor in cfg.dth_factors:
            self.lanes.append(
                _ColumnarLane(
                    f"adf-{factor:g}", "adf", factor, n, n_regions,
                    cfg.smoothing_alpha,
                )
            )
        if cfg.include_general_df:
            for factor in cfg.dth_factors:
                self.lanes.append(
                    _ColumnarLane(
                        f"gdf-{factor:g}", "gdf", factor, n, n_regions,
                        cfg.smoothing_alpha,
                    )
                )
        self.adf_brain = _AdfBrain(
            cfg.adf_config(cfg.dth_factors[0]), n, kernel, cluster_mode
        )
        self.gdf_brain = _GdfBrain() if cfg.include_general_df else None
        self._zero_dth = np.zeros(n)

    # -- one reporting interval ---------------------------------------------
    def _step(self, now: float) -> None:
        cfg = self.config
        state = self.state
        kernel = self.kernel
        n = len(state)
        self.source.advance(state, cfg.report_interval)
        x, y, vx, vy = state.x, state.y, state.vx, state.vy
        speeds = kernel.hypot(vx, vy)
        directions = np.where(
            (vx == 0.0) & (vy == 0.0), 0.0, kernel.atan2(vy, vx)
        )
        self._speed_sum = chain_add(self._speed_sum, speeds)
        self._speed_count += n
        codes = self.resolver.resolve(x, y, self._home_codes)
        on_road = self.resolver.is_road[codes]
        # Association: observe() runs only for nodes whose serving region
        # changed; first sight is an association, later changes a handoff.
        changed = codes != self._serving
        if np.any(changed):
            new = changed & (self._serving == -1)
            n_new = int(np.count_nonzero(new))
            n_handoff = int(np.count_nonzero(changed)) - n_new
            self.associations += n_new
            self.handoffs += n_handoff
            self.registration_messages += 2 * n_handoff
            self._serving[changed] = codes[changed]
        labels = self.adf_brain.update(speeds, directions)
        gdf_avg = (
            self.gdf_brain.observe(speeds) if self.gdf_brain is not None else None
        )
        interval = cfg.report_interval
        bin_index = math.ceil(now / self._bin_width) - 1
        if bin_index < 0:
            bin_index = 0
        for lane in self.lanes:
            if lane.kind == "ideal":
                dth_arr = self._zero_dth
                idx = np.arange(n)
                transmitted = n
            else:
                if lane.kind == "adf":
                    dth_arr = (lane.dth_factor * self.adf_brain.avg) * interval
                else:
                    dth_arr = (lane.dth_factor * gdf_avg) * interval
                lane.received += n
                transmit = df_decide(
                    x, y, lane.fix_x, lane.fix_y, lane.has_fix, dth_arr, kernel
                )
                idx = np.flatnonzero(transmit)
                transmitted = idx.size
                lane.fix_x[idx] = x[idx]
                lane.fix_y[idx] = y[idx]
                lane.has_fix[idx] = True
                lane.suppressed += n - transmitted
            lane.transmitted += transmitted
            lane.m_total += transmitted
            lane.m_bytes += transmitted * self._size_bytes
            lane.m_region += np.bincount(
                codes[idx], minlength=len(lane.m_region)
            )
            lane.m_node[idx] += 1
            lane.m_bins[bin_index] += transmitted
            lane.with_le.receive(idx, x, y, vx, vy, speeds, dth_arr, now)
            lane.without_le.receive(idx, x, y)
            if self._lu_observer is not None:
                self._lu_observer(
                    lane.name, now, idx, x, y, vx, vy, codes, dth_arr
                )
        self.adf_brain.tick(now)
        cluster_count = float(self.adf_brain.clusterer.cluster_count())
        for lane in self.lanes:
            if lane.kind == "adf":
                lane.cluster_series.append(now, cluster_count)
            lane.with_le.tick(now, kernel)
        self._measure(now, x, y, on_road)
        valid = state.pattern >= 0
        self._classified_total += int(np.count_nonzero(valid))
        self._classified_right += int(
            np.count_nonzero(valid & (labels == state.pattern))
        )

    def _measure(
        self, now: float, x: np.ndarray, y: np.ndarray, on_road: np.ndarray
    ) -> None:
        """Per-lane RMSE and region-error accumulation, full width.

        After the first step every broker knows every node (the ideal
        lane transmits all rows and the ADF/GDF lanes transmit
        everything on first contact), so the steady-state path skips the
        ``flatnonzero`` + gather entirely and differences whole columns;
        the gathered variant only serves the first partial-knowledge
        steps.  Selecting rows preserves order, and the subtract /
        hypot / square ops are elementwise — both paths produce
        bit-identical sums and RMSE inputs.
        """
        kernel = self.kernel
        for lane in self.lanes:
            for broker, series, region_errors in (
                (lane.with_le, lane.rmse_with_le, lane.region_errors_with_le),
                (
                    lane.without_le,
                    lane.rmse_without_le,
                    lane.region_errors_without_le,
                ),
            ):
                known = broker.known
                if known.all():
                    err = kernel.hypot(x - broker.bel_x, y - broker.bel_y)
                    road = on_road
                else:
                    idx = np.flatnonzero(known)
                    if not idx.size:
                        continue
                    err = kernel.hypot(
                        x[idx] - broker.bel_x[idx], y[idx] - broker.bel_y[idx]
                    )
                    road = on_road[idx]
                sq = err * err
                building = ~road
                region_errors.road_sq_sum = chain_add(
                    region_errors.road_sq_sum, sq[road]
                )
                region_errors.road_count += int(np.count_nonzero(road))
                region_errors.building_sq_sum = chain_add(
                    region_errors.building_sq_sum, sq[building]
                )
                region_errors.building_count += int(np.count_nonzero(building))
                series.append(now, rmse(err))

    # -- the run -------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the configured duration and collect all measurements.

        The step times replicate the simulator's periodic schedule: the
        first step fires at ``report_interval`` (even past a shorter
        duration, matching the drain of the final in-flight event) and
        subsequent times accumulate by addition while they stay within
        the duration.
        """
        interval = self.config.report_interval
        duration = self.config.duration
        t = interval
        while True:
            self._step(t)
            nxt = t + interval
            if nxt > duration:
                break
            t = nxt
        return self._collect()

    def _collect(self) -> ExperimentResult:
        cfg = self.config
        lanes: dict[str, LaneResult] = {}
        for lane in self.lanes:
            meter = TrafficMeter(lane.name, bin_width=self._bin_width)
            per_region = {
                self.resolver.region_ids[i]: int(count)
                for i, count in enumerate(lane.m_region.tolist())
                if count
            }
            per_node = {
                nid: int(count)
                for nid, count in zip(self.node_ids, lane.m_node.tolist())
                if count
            }
            meter.add_counts(
                messages=lane.m_total,
                total_bytes=lane.m_bytes,
                per_region=per_region,
                per_node=per_node,
                bins=dict(lane.m_bins),
            )
            summary: dict[str, float] = {}
            if lane.kind == "adf":
                received = lane.received
                summary = {
                    "received": float(received),
                    "transmitted": float(lane.transmitted),
                    "suppressed": float(lane.suppressed),
                    "suppression_rate": (
                        lane.suppressed / received if received else 0.0
                    ),
                }
                summary.update(self.adf_brain.cluster_summary())
            lanes[lane.name] = LaneResult(
                name=lane.name,
                dth_factor=lane.dth_factor,
                meter=meter,
                rmse_with_le=lane.rmse_with_le,
                rmse_without_le=lane.rmse_without_le,
                region_errors_with_le=lane.region_errors_with_le,
                region_errors_without_le=lane.region_errors_without_le,
                filter_summary=summary,
                cluster_series=lane.cluster_series,
                kind=lane.kind,
            )
        accuracy = (
            self._classified_right / self._classified_total
            if self._classified_total
            else 0.0
        )
        mean_speed = (
            self._speed_sum / self._speed_count if self._speed_count else 0.0
        )
        return ExperimentResult(
            duration=cfg.duration,
            report_interval=cfg.report_interval,
            node_count=len(self.state),
            lanes=lanes,
            road_region_ids=[r.region_id for r in self.campus.roads()],
            building_region_ids=[r.region_id for r in self.campus.buildings()],
            classification_accuracy=accuracy,
            average_fleet_speed=mean_speed,
            handoffs=self.handoffs,
            telemetry=self.telemetry.snapshot(),
        )


def run_columnar_experiment(
    config: ExperimentConfig | None = None,
    *,
    campus: Campus | None = None,
    source: MobilitySource | None = None,
    kernel: MathKernel = EXACT_KERNEL,
    cluster_mode: str = "exact",
    lu_observer=None,
) -> ExperimentResult:
    """Convenience wrapper: build, run and collect in one call."""
    return ColumnarExperiment(
        config,
        campus=campus,
        source=source,
        kernel=kernel,
        cluster_mode=cluster_mode,
        lu_observer=lu_observer,
    ).run()
