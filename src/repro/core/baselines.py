"""Baseline filtering policies the paper compares against.

A :class:`FilterPolicy` is the full decision function applied to each
incoming LU at the filtering stage; the ADF itself is implemented separately
in :mod:`repro.core.adf`, while the two baselines live here:

* **ideal LU** — every update is transmitted (the paper's "ideal LU", the
  100 % traffic reference line);
* **general DF** — a single global DTH sized from the average velocity of
  all MNs, applied uniformly.
"""

from __future__ import annotations

import abc

from repro.core.distance_filter import DistanceFilter, FilterDecision
from repro.core.dth import GlobalAverageDth
from repro.network.messages import LocationUpdate

__all__ = ["FilterPolicy", "IdealLUPolicy", "GeneralDistanceFilterPolicy"]


class FilterPolicy(abc.ABC):
    """Decides, per incoming LU, whether to forward it to the broker."""

    @abc.abstractmethod
    def process(self, update: LocationUpdate) -> FilterDecision:
        """Process one LU and return the transmit/suppress decision."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short label for reports."""


class IdealLUPolicy(FilterPolicy):
    """No filtering: every LU is forwarded (the paper's reference)."""

    def __init__(self) -> None:
        self.transmitted = 0

    @property
    def name(self) -> str:
        return "ideal"

    def process(self, update: LocationUpdate) -> FilterDecision:
        self.transmitted += 1
        return FilterDecision.TRANSMIT


class GeneralDistanceFilterPolicy(FilterPolicy):
    """The general DF: one global average-velocity-derived DTH for all MNs.

    The paper: "The general DF decides the size of the DTH based on the
    average moving distance of the MN and uses the chosen DTH for filtering
    LUs" — a single threshold that is too large for slow nodes and too small
    for fast ones, which is precisely the weakness the ADF addresses.
    """

    def __init__(self, factor: float, *, report_interval: float = 1.0) -> None:
        self._dth_policy = GlobalAverageDth(factor, report_interval=report_interval)
        self._filter = DistanceFilter()

    @property
    def name(self) -> str:
        return f"general-df({self._dth_policy.factor:g}av)"

    @property
    def dth_policy(self) -> GlobalAverageDth:
        """The underlying global-average DTH policy."""
        return self._dth_policy

    @property
    def distance_filter(self) -> DistanceFilter:
        """The underlying displacement gate (for stats)."""
        return self._filter

    def process(self, update: LocationUpdate) -> FilterDecision:
        self._dth_policy.observe_speed(update.speed)
        dth = self._dth_policy.dth_for(update.node_id)
        return self._filter.decide(
            update.node_id, update.position, update.timestamp, dth
        )
