"""Distance Threshold (DTH) policies.

The paper evaluates DTH sizes of 0.75, 1.0 and 1.25 times an *average
velocity* ("av").  A velocity becomes a distance through the LU reporting
interval: with the paper's 1 Hz reporting, DTH(metres) = factor x av(m/s) x
1 s.  The **general DF** derives one DTH from the average velocity of *all*
MNs; the **ADF** derives a per-node DTH from the node's *cluster* average,
which is the paper's key idea.
"""

from __future__ import annotations

import abc

from repro.core.cluster_manager import ClusterManager
from repro.util.validation import check_non_negative, check_positive

__all__ = ["DthPolicy", "FixedDth", "GlobalAverageDth", "ClusterAverageDth"]


class DthPolicy(abc.ABC):
    """Maps a node to its current Distance Threshold in metres."""

    @abc.abstractmethod
    def dth_for(self, node_id: str) -> float:
        """The node's DTH (>= 0) right now."""


class FixedDth(DthPolicy):
    """One constant DTH for everyone (the simplest possible DF)."""

    def __init__(self, dth: float) -> None:
        self._dth = check_non_negative(dth, "dth")

    def dth_for(self, node_id: str) -> float:
        return self._dth


class GlobalAverageDth(DthPolicy):
    """The general DF's policy: factor x global average speed.

    The average is maintained as a running mean over every observed speed,
    so it converges to the fleet's average velocity as the run progresses.
    """

    def __init__(self, factor: float, *, report_interval: float = 1.0) -> None:
        self.factor = check_positive(factor, "factor")
        self.report_interval = check_positive(report_interval, "report_interval")
        self._speed_sum = 0.0
        self._count = 0

    def observe_speed(self, speed: float) -> None:
        """Feed one observed speed into the running global average."""
        check_non_negative(speed, "speed")
        self._speed_sum += speed
        self._count += 1

    @property
    def average_speed(self) -> float:
        """Current global average speed (0 before any observation)."""
        return self._speed_sum / self._count if self._count else 0.0

    def dth_for(self, node_id: str) -> float:
        return self.factor * self.average_speed * self.report_interval


class ClusterAverageDth(DthPolicy):
    """The ADF's policy: factor x the node's *cluster* average speed.

    Nodes outside any cluster (SS nodes, or nodes not yet observed) get a
    zero DTH, i.e. their updates pass unfiltered — conservative and safe,
    and SS nodes barely generate displacement anyway.
    """

    def __init__(
        self,
        factor: float,
        manager: ClusterManager,
        *,
        report_interval: float = 1.0,
    ) -> None:
        self.factor = check_positive(factor, "factor")
        self.report_interval = check_positive(report_interval, "report_interval")
        self._manager = manager
        # dth_for runs per LU (filtering) and again per transmitted LU
        # (stamping); go straight to the clusterer instead of hopping
        # through the manager each time.
        self._clusterer = manager.clusterer

    def dth_for(self, node_id: str) -> float:
        cluster = self._clusterer.cluster_of(node_id)
        if cluster is None:
            return 0.0
        return self.factor * cluster.average_speed * self.report_interval
