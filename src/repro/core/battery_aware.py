"""Battery-aware distance thresholds — an ADF extension.

The paper motivates traffic reduction with the MN's "low battery capacity"
but applies one DTH factor fleet-wide.  A natural extension: nodes running
low on battery should filter *harder* (fewer transmissions, longer life)
at the cost of coarser location accuracy.  This policy wraps any base
:class:`~repro.core.dth.DthPolicy` and scales its threshold by a battery-
dependent multiplier:

* full battery  -> multiplier 1 (the paper's behaviour);
* at or below ``critical_level`` -> ``max_boost``;
* linear in between.

Because the DTH rides on top of the cluster machinery, everything else —
classification, clustering, estimation, the silence-implies-nearby bound —
keeps working unchanged.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.dth import DthPolicy
from repro.util.validation import check_in_range, check_positive

__all__ = ["BatteryAwareDth"]

BatteryLookup = Callable[[str], float]


class BatteryAwareDth(DthPolicy):
    """Scales a base policy's DTH as a node's battery drains."""

    def __init__(
        self,
        base: DthPolicy,
        battery_of: BatteryLookup,
        *,
        max_boost: float = 3.0,
        critical_level: float = 0.2,
    ) -> None:
        if max_boost < 1.0:
            raise ValueError(f"max_boost must be >= 1, got {max_boost}")
        check_positive(critical_level, "critical_level")
        check_in_range(critical_level, "critical_level", 0.0, 1.0)
        self._base = base
        self._battery_of = battery_of
        self.max_boost = max_boost
        self.critical_level = critical_level

    def multiplier_for(self, battery_fraction: float) -> float:
        """The DTH multiplier applied at a given battery level."""
        check_in_range(battery_fraction, "battery_fraction", 0.0, 1.0)
        if battery_fraction >= 1.0:
            return 1.0
        if battery_fraction <= self.critical_level:
            return self.max_boost
        # Linear ramp from 1.0 (full) to max_boost (critical).
        span = 1.0 - self.critical_level
        depth = (1.0 - battery_fraction) / span
        return 1.0 + depth * (self.max_boost - 1.0)

    def dth_for(self, node_id: str) -> float:
        battery = self._battery_of(node_id)
        return self._base.dth_for(node_id) * self.multiplier_for(battery)
