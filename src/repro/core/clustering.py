"""Sequential clustering of moving MNs (paper §3.2.1).

The ADF uses *sequential clustering* (BSAS — Basic Sequential Algorithmic
Scheme, Theodoridis & Koutroumbas) over each moving MN's velocity/direction:
compute the similarity difference ``d(MN, C)`` to every existing cluster;
if the minimum is below the similarity bound ``alpha`` the MN joins that
cluster (whose representative is updated incrementally), otherwise a new
cluster is born.  SS nodes are excluded — the paper clusters "every MN
except MN in the SS".
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.geometry import angle_difference
from repro.util.validation import check_non_negative, check_positive

__all__ = ["MotionFeature", "Cluster", "SequentialClusterer"]


@dataclass(frozen=True, slots=True)
class MotionFeature:
    """The clustering feature of one MN: mean speed and mean heading."""

    speed: float
    direction: float

    def __post_init__(self) -> None:
        # Fast accept for the common case; the chained comparison is False
        # for negatives, NaN and +inf, all of which check_non_negative
        # rejects with the usual message.  Features are constructed per
        # placement and per centroid rebuild, so this runs constantly.
        if not 0.0 <= self.speed < math.inf:
            check_non_negative(self.speed, "speed")

    @classmethod
    def unchecked(cls, speed: float, direction: float) -> "MotionFeature":
        """Build a feature from already-validated values, skipping the check.

        For internal producers whose inputs are provably in range — the
        centroid rebuild (means of validated member speeds) and the
        cluster manager's window-derived features (means of validated
        observations).  User-facing construction stays on ``__init__``.
        """
        feature = object.__new__(cls)
        object.__setattr__(feature, "speed", speed)
        object.__setattr__(feature, "direction", direction)
        return feature

    def distance_to(self, other: "MotionFeature", direction_weight: float) -> float:
        """Similarity difference between two features.

        Dominated by the velocity difference (the paper's alpha is a
        "minimum difference in velocity"); optionally augmented with the
        angular distance scaled by *direction_weight* (m/s per radian).
        """
        d_speed = abs(self.speed - other.speed)
        if direction_weight <= 0.0:
            return d_speed
        d_dir = abs(angle_difference(self.direction, other.direction))
        return d_speed + direction_weight * d_dir


class Cluster:
    """A group of MNs with similar motion; keeps an incremental centroid."""

    def __init__(self, cluster_id: int, first_member: str, feature: MotionFeature):
        self.cluster_id = cluster_id
        self._members: dict[str, MotionFeature] = {first_member: feature}
        cx = math.cos(feature.direction)
        sy = math.sin(feature.direction)
        # Each member's heading trig, computed once at insertion; removal
        # subtracts the exact stored values instead of recomputing them.
        self._trig: dict[str, tuple[float, float]] = {first_member: (cx, sy)}
        self._speed_sum = feature.speed
        self._dir_x_sum = cx
        self._dir_y_sum = sy
        # Centroid cache, invalidated on membership change.  BSAS assignment
        # asks every cluster for its centroid on every placement; without the
        # cache that is an atan2 + MotionFeature construction per cluster per
        # node per step — the clustering hot spot of the whole simulator.
        self._centroid: MotionFeature | None = None

    # -- membership ---------------------------------------------------------
    @property
    def members(self) -> frozenset[str]:
        """Ids of member MNs."""
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._members

    def add(self, node_id: str, feature: MotionFeature) -> None:
        """Add (or re-add with a new feature) a member."""
        if node_id in self._members:
            self.remove(node_id)
        self._members[node_id] = feature
        cx = math.cos(feature.direction)
        sy = math.sin(feature.direction)
        self._trig[node_id] = (cx, sy)
        self._speed_sum += feature.speed
        self._dir_x_sum += cx
        self._dir_y_sum += sy
        self._centroid = None

    def remove(self, node_id: str) -> None:
        """Remove a member (KeyError when absent)."""
        feature = self._members.pop(node_id)
        cx, sy = self._trig.pop(node_id)
        self._speed_sum -= feature.speed
        self._dir_x_sum -= cx
        self._dir_y_sum -= sy
        self._centroid = None

    def member_feature(self, node_id: str) -> MotionFeature:
        """The feature a member was inserted with."""
        return self._members[node_id]

    # -- representative -----------------------------------------------------
    @property
    def centroid(self) -> MotionFeature:
        """Mean speed + circular-mean direction of the members (cached)."""
        centroid = self._centroid
        if centroid is None:
            n = len(self._members)
            if n == 0:
                return MotionFeature(0.0, 0.0)
            centroid = self._centroid = MotionFeature.unchecked(
                max(self._speed_sum / n, 0.0),
                math.atan2(self._dir_y_sum / n, self._dir_x_sum / n),
            )
        return centroid

    @property
    def average_speed(self) -> float:
        """Mean member speed — the quantity that sizes the cluster's DTH."""
        n = len(self._members)
        return max(self._speed_sum / n, 0.0) if n else 0.0

    def __repr__(self) -> str:
        c = self.centroid
        return (
            f"Cluster(id={self.cluster_id}, n={len(self)}, "
            f"v={c.speed:.2f}m/s)"
        )


class SequentialClusterer:
    """BSAS over a stream of (node, feature) assignments.

    ``assign`` is idempotent per node: reassigning moves the node between
    clusters as its motion changes.  Empty clusters are garbage-collected.
    ``max_clusters`` bounds growth (the standard BSAS "q" parameter): when
    the bound is hit, an out-of-range node joins its nearest cluster anyway.
    """

    def __init__(
        self,
        alpha: float,
        *,
        direction_weight: float = 0.0,
        max_clusters: int | None = None,
    ) -> None:
        check_positive(alpha, "alpha")
        check_non_negative(direction_weight, "direction_weight")
        if max_clusters is not None and max_clusters < 1:
            raise ValueError(f"max_clusters must be >= 1, got {max_clusters}")
        self.alpha = alpha
        self.direction_weight = direction_weight
        self.max_clusters = max_clusters
        self._clusters: dict[int, Cluster] = {}
        self._assignment: dict[str, int] = {}
        self._ids = itertools.count(1)

    # -- queries ---------------------------------------------------------------
    @property
    def clusters(self) -> list[Cluster]:
        """Live clusters (insertion order)."""
        return list(self._clusters.values())

    def cluster_count(self) -> int:
        """Number of live clusters."""
        return len(self._clusters)

    def cluster_of(self, node_id: str) -> Cluster | None:
        """The cluster a node currently belongs to, if any."""
        cid = self._assignment.get(node_id)
        return self._clusters.get(cid) if cid is not None else None

    def assigned_nodes(self) -> list[str]:
        """Ids of all currently clustered nodes."""
        return list(self._assignment)

    # -- the BSAS step -----------------------------------------------------------
    def nearest(self, feature: MotionFeature) -> tuple[Cluster | None, float]:
        """The nearest cluster and its distance (``(None, inf)`` when empty)."""
        best: Cluster | None = None
        best_d = math.inf
        weight = self.direction_weight
        f_speed = feature.speed
        f_dir = feature.direction
        # Inlined MotionFeature.distance_to: this loop visits every cluster
        # for every placed node every step, so the per-candidate method and
        # property calls were the clustering bottleneck.  The arithmetic is
        # identical to distance_to.
        if weight <= 0.0:
            for cluster in self._clusters.values():
                c = cluster._centroid
                if c is None:
                    # Inlined Cluster.centroid rebuild (clusters in the live
                    # dict are never empty, so n >= 1).
                    n = len(cluster._members)
                    c = cluster._centroid = MotionFeature.unchecked(
                        max(cluster._speed_sum / n, 0.0),
                        math.atan2(
                            cluster._dir_y_sum / n, cluster._dir_x_sum / n
                        ),
                    )
                d = abs(f_speed - c.speed)
                if d < best_d:
                    best, best_d = cluster, d
        else:
            for cluster in self._clusters.values():
                c = cluster._centroid
                if c is None:
                    c = cluster.centroid
                d = abs(f_speed - c.speed) + weight * abs(
                    angle_difference(f_dir, c.direction)
                )
                if d < best_d:
                    best, best_d = cluster, d
        return best, best_d

    def assign(self, node_id: str, feature: MotionFeature) -> tuple[Cluster, bool]:
        """Place *node_id* per BSAS; returns ``(cluster, moved)``.

        ``moved`` is true when the node was already clustered and landed
        in a *different* cluster — so callers tracking reassignments no
        longer need a ``cluster_of`` pre-lookup before every placement.
        """
        clusters = self._clusters
        # Inlined unassign + Cluster.remove using the stored trig values;
        # reassignment runs once per moving node per step.
        cid = self._assignment.pop(node_id, None)
        if cid is not None:
            old = clusters[cid]
            previous = old._members.pop(node_id)
            cx, sy = old._trig.pop(node_id)
            old._speed_sum -= previous.speed
            old._dir_x_sum -= cx
            old._dir_y_sum -= sy
            old._centroid = None
            if not old._members:
                del clusters[cid]
        cluster, distance = self.nearest(feature)
        if cluster is not None and (
            distance < self.alpha
            or (
                self.max_clusters is not None
                and len(clusters) >= self.max_clusters
            )
        ):
            # Inlined Cluster.add: the node was just unassigned, so it is
            # never already a member here.
            cluster._members[node_id] = feature
            cx = math.cos(feature.direction)
            sy = math.sin(feature.direction)
            cluster._trig[node_id] = (cx, sy)
            cluster._speed_sum += feature.speed
            cluster._dir_x_sum += cx
            cluster._dir_y_sum += sy
            cluster._centroid = None
        else:
            cluster = Cluster(next(self._ids), node_id, feature)
            clusters[cluster.cluster_id] = cluster
        self._assignment[node_id] = cluster.cluster_id
        return cluster, cid is not None and cid != cluster.cluster_id

    def unassign(self, node_id: str) -> None:
        """Remove a node from its cluster (no-op when unassigned)."""
        cid = self._assignment.pop(node_id, None)
        if cid is None:
            return
        cluster = self._clusters[cid]
        cluster.remove(node_id)
        if len(cluster) == 0:
            del self._clusters[cid]

    def clear(self) -> None:
        """Drop every cluster and assignment (used on reconstruction)."""
        self._clusters.clear()
        self._assignment.clear()
