"""The Adaptive Distance Filter pipeline (paper §3.2 and §3.4).

Per incoming LU the ADF executes the six-step process of §3.4:

1. recognise the MN's mobility pattern and velocity (classifier);
2. construct MN clusters (cluster manager, initial placement);
3. acquire the MN's location (the LU itself);
4. filter by the DF using the cluster-derived DTH;
5. transmit surviving LUs to the grid broker;
6. periodically reconstruct the clusters (mobility patterns drift).

Steps 1-2 run once per node at first contact; 3-5 run on every LU; 6 runs
on a configurable period driven by :meth:`AdaptiveDistanceFilter.tick`.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.core.baselines import FilterPolicy
from repro.core.classifier import ClassifierConfig, MobilityClassifier
from repro.core.cluster_manager import ClusterManager
from repro.core.clustering import SequentialClusterer
from repro.core.distance_filter import DistanceFilter, FilterDecision, _Reference
from repro.core.dth import ClusterAverageDth
from repro.mobility.states import MobilityState
from repro.network.messages import LocationUpdate
from repro.telemetry import NULL_TELEMETRY
from repro.util.validation import check_non_negative, check_positive

__all__ = ["AdfConfig", "AdfStats", "AdaptiveDistanceFilter"]


@dataclass(frozen=True)
class AdfConfig:
    """Tunables of the ADF.

    ``dth_factor`` is the paper's DTH multiplier (0.75 / 1.0 / 1.25 "av");
    ``alpha`` the sequential-clustering similarity bound in m/s;
    ``recluster_interval`` how often (seconds) clusters are reconstructed;
    ``report_interval`` the LU reporting period that converts a velocity
    into a distance threshold.
    """

    dth_factor: float = 1.0
    alpha: float = 0.75
    direction_weight: float = 0.0
    recluster_interval: float = 30.0
    report_interval: float = 1.0
    max_clusters: int | None = 64
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)

    def __post_init__(self) -> None:
        check_positive(self.dth_factor, "dth_factor")
        check_positive(self.alpha, "alpha")
        check_positive(self.recluster_interval, "recluster_interval")
        check_positive(self.report_interval, "report_interval")


@dataclass
class AdfStats:
    """Counters exposed by the ADF."""

    received: int = 0
    transmitted: int = 0
    suppressed: int = 0

    @property
    def suppression_rate(self) -> float:
        """Fraction of received LUs that were filtered out."""
        return self.suppressed / self.received if self.received else 0.0

    @property
    def transmission_rate(self) -> float:
        """Fraction of received LUs forwarded to the broker."""
        return self.transmitted / self.received if self.received else 0.0


class AdaptiveDistanceFilter(FilterPolicy):
    """The complete ADF: classify -> cluster -> threshold -> filter."""

    def __init__(
        self,
        config: AdfConfig | None = None,
        *,
        forward: Callable[[LocationUpdate], None] | None = None,
        telemetry: Any = None,
    ) -> None:
        self.config = config or AdfConfig()
        self.classifier = MobilityClassifier(self.config.classifier)
        clusterer = SequentialClusterer(
            self.config.alpha,
            direction_weight=self.config.direction_weight,
            max_clusters=self.config.max_clusters,
        )
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._telemetry = tm
        self._instrumented = tm.enabled
        name = f"adf({self.config.dth_factor:g}av)"
        self._t_received = tm.counter("adf.lu_received", filter=name)
        self._t_transmitted = tm.counter("adf.lu_transmitted", filter=name)
        self._t_suppressed = tm.counter("adf.lu_suppressed", filter=name)
        self._t_reclusters = tm.counter("adf.reclusters", filter=name)
        self.cluster_manager = ClusterManager(
            self.classifier, clusterer, telemetry=telemetry, name=name
        )
        self.dth_policy = ClusterAverageDth(
            self.config.dth_factor,
            self.cluster_manager,
            report_interval=self.config.report_interval,
        )
        self.distance_filter = DistanceFilter()
        self._forward = forward
        self.stats = AdfStats()
        self._last_recluster = 0.0
        #: DTH used by the most recent :meth:`process` call.  Callers that
        #: stamp the DTH onto a just-transmitted LU (the harness) read it
        #: instead of re-deriving the same value from the cluster.
        self.last_dth: float = 0.0

    @property
    def name(self) -> str:
        return f"adf({self.config.dth_factor:g}av)"

    # -- the per-LU pipeline ------------------------------------------------
    def process(self, update: LocationUpdate) -> FilterDecision:
        """Run one LU through the full ADF pipeline."""
        instrumented = self._instrumented
        self.stats.received += 1
        if instrumented:
            self._t_received.inc()
        node_id = update.node_id
        before = self.classifier.label(node_id) if instrumented else None
        # (1) classify from the update's velocity observation.  Speed and
        # heading are inlined from the LocationUpdate.speed / .direction
        # properties (math.hypot == Vec2.norm, atan2 + zero-vector
        # convention == Vec2.angle).
        velocity = update.velocity
        vx, vy = velocity.x, velocity.y
        speed = math.hypot(vx, vy)
        direction = 0.0 if vx == 0.0 and vy == 0.0 else math.atan2(vy, vx)
        label = self.classifier.observe(node_id, speed, direction)
        if instrumented:
            after = self.classifier.label(node_id)
            if after is not before:
                self._telemetry.counter(
                    "adf.state_transitions",
                    filter=self.name,
                    from_state=before.name if before else "none",
                    to_state=after.name if after else "none",
                ).inc()
        # (2) place into a cluster (SS nodes are kept out).  The returned
        # cluster is exactly cluster_of(node_id) after placement, so the
        # DTH derives from it directly — the arithmetic below matches
        # ClusterAverageDth.dth_for (including Cluster.average_speed).
        cluster = self.cluster_manager.place(node_id, label)
        dthp = self.dth_policy
        if type(dthp) is ClusterAverageDth and dthp._manager is self.cluster_manager:
            if cluster is None:
                dth = 0.0
            else:
                n = len(cluster._members)
                avg = max(cluster._speed_sum / n, 0.0) if n else 0.0
                dth = dthp.factor * avg * dthp.report_interval
        else:
            # dth_policy is public and may be swapped for a custom policy
            # (e.g. the battery-aware wrapper) — take the virtual path.
            dth = dthp.dth_for(node_id)
        self.last_dth = dth
        # (4) distance filter with the cluster-derived DTH; same gate,
        # counters and reference bookkeeping as DistanceFilter.decide.
        if not 0.0 <= dth < math.inf:
            check_non_negative(dth, "dth")
        df = self.distance_filter
        position = update.position
        ref = df._reference.get(node_id)
        if ref is None:
            transmit = True
        else:
            rp = ref.position
            transmit = math.hypot(position.x - rp.x, position.y - rp.y) > dth
        if transmit:
            df._reference[node_id] = _Reference(position, update.timestamp)
            df.transmitted += 1
            decision = FilterDecision.TRANSMIT
        else:
            df.suppressed += 1
            decision = FilterDecision.SUPPRESS
        if decision is FilterDecision.TRANSMIT:
            self.stats.transmitted += 1
            if instrumented:
                self._t_transmitted.inc()
            # (5) forward to the grid broker.
            if self._forward is not None:
                self._forward(update)
        else:
            self.stats.suppressed += 1
            if instrumented:
                self._t_suppressed.inc()
                cluster = self.cluster_manager.cluster_of(update.node_id)
                self._telemetry.counter(
                    "adf.suppressions_by_cluster",
                    filter=self.name,
                    cluster=str(cluster.cluster_id) if cluster else "none",
                ).inc()
        return decision

    # -- periodic maintenance ---------------------------------------------------
    def tick(self, now: float) -> bool:
        """Reconstruct clusters when the recluster interval has elapsed.

        Returns ``True`` when a reconstruction happened.  Call this
        periodically (the experiment harness wires it to the simulator).
        """
        if now - self._last_recluster < self.config.recluster_interval:
            return False
        self.cluster_manager.reconstruct()
        if self._instrumented:
            self._t_reclusters.inc()
        self._last_recluster = now
        return True

    def forget(self, node_id: str) -> None:
        """Drop all per-node state (churn: the MN left the grid).

        The paper's mobile grid lives with "frequent disconnectivity"; a
        departed node's observation window, cluster membership and filter
        reference must not leak.  When the node returns, it is treated as
        brand new — its first LU transmits unconditionally.
        """
        self.classifier.forget(node_id)
        self.cluster_manager.clusterer.unassign(node_id)
        self.distance_filter.forget(node_id)

    # -- introspection ---------------------------------------------------------
    def label_of(self, node_id: str) -> MobilityState | None:
        """The classifier's current label for a node."""
        return self.classifier.label(node_id)

    def dth_of(self, node_id: str) -> float:
        """The node's current distance threshold in metres."""
        return self.dth_policy.dth_for(node_id)

    def summary(self) -> dict[str, float]:
        """Filter + cluster statistics for reports."""
        out = {
            "received": float(self.stats.received),
            "transmitted": float(self.stats.transmitted),
            "suppressed": float(self.stats.suppressed),
            "suppression_rate": self.stats.suppression_rate,
        }
        out.update(self.cluster_manager.summary())
        return out
