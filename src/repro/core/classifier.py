"""The mobility pattern classifier (paper Fig. 2).

The algorithm, verbatim from the paper:

* ``V_mn == 0``  ->  **Stop** (SS);
* ``V_mn > V_walk`` (running / vehicle)  ->  **Linear Movement** (LMS);
* ``0 < V_mn <= V_walk``:
  - velocity *and* direction constant  ->  **LMS**;
  - velocity *or* direction change frequently  ->  **RMS**.

"Constant" is operationalised over a sliding window of observations: the
speed's standard deviation and the direction's circular standard deviation
must both fall under configurable thresholds.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.mobility.states import MobilityState
from repro.util.validation import check_non_negative, check_positive

__all__ = ["ClassifierConfig", "ObservationWindow", "MobilityClassifier"]


@dataclass(frozen=True)
class ClassifierConfig:
    """Thresholds for the Fig. 2 algorithm.

    ``v_walk`` is the paper's "maximum of walking velocity"; observations
    faster than it are unambiguously LMS (running or vehicle).  ``stop_speed``
    relaxes the paper's exact ``V_mn == 0`` to tolerate GPS/encoder noise.
    """

    v_walk: float = 2.0
    stop_speed: float = 0.05
    window: int = 10
    min_observations: int = 3
    speed_std_threshold: float = 0.35
    direction_std_threshold: float = 0.6

    def __post_init__(self) -> None:
        check_positive(self.v_walk, "v_walk")
        check_non_negative(self.stop_speed, "stop_speed")
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if not (1 <= self.min_observations <= self.window):
            raise ValueError(
                "min_observations must be in [1, window], got "
                f"{self.min_observations}"
            )
        check_positive(self.speed_std_threshold, "speed_std_threshold")
        check_positive(self.direction_std_threshold, "direction_std_threshold")


class ObservationWindow:
    """A sliding window of (speed, direction) observations for one MN."""

    def __init__(self, size: int) -> None:
        self._speeds: deque[float] = deque(maxlen=size)
        self._dir_x: deque[float] = deque(maxlen=size)
        self._dir_y: deque[float] = deque(maxlen=size)
        # Memoized window statistics, invalidated on add.  Classification
        # and feature extraction both read them for every LU, so without
        # the cache each window is re-summed several times per step.
        self._mean_speed: float | None = None
        self._dir_means: tuple[float, float] | None = None

    def add(self, speed: float, direction: float) -> None:
        """Record one observation (direction ignored for ~zero speed)."""
        self._speeds.append(speed)
        self._mean_speed = None
        if speed > 1e-9:
            self._dir_x.append(math.cos(direction))
            self._dir_y.append(math.sin(direction))
            self._dir_means = None

    def __len__(self) -> int:
        return len(self._speeds)

    def mean_speed(self) -> float:
        """Average observed speed in the window."""
        mean = self._mean_speed
        if mean is None:
            if not self._speeds:
                return 0.0
            mean = self._mean_speed = sum(self._speeds) / len(self._speeds)
        return mean

    def _dir_mean_components(self) -> tuple[float, float]:
        """Cached mean of the unit heading vectors (empty window: zeros)."""
        means = self._dir_means
        if means is None:
            n = len(self._dir_x)
            if n == 0:
                return (0.0, 0.0)
            means = self._dir_means = (
                sum(self._dir_x) / n,
                sum(self._dir_y) / n,
            )
        return means

    def speed_std(self, mean: float | None = None) -> float:
        """Standard deviation of the windowed speeds.

        *mean* may be passed in when the caller already computed
        :meth:`mean_speed`, sparing a second pass over the window.
        """
        n = len(self._speeds)
        if n < 2:
            return 0.0
        if mean is None:
            mean = self.mean_speed()
        var = sum((s - mean) ** 2 for s in self._speeds) / n
        return math.sqrt(var)

    def direction_std(self) -> float:
        """Circular standard deviation of the windowed headings.

        Computed from the mean resultant length R of the unit heading
        vectors: ``sqrt(-2 ln R)``.  Returns 0 for fewer than two moving
        observations (no evidence of variation).
        """
        n = len(self._dir_x)
        if n < 2:
            return 0.0
        mean_x, mean_y = self._dir_mean_components()
        resultant = math.hypot(mean_x, mean_y)
        if resultant <= 1e-12:
            return math.inf
        if resultant >= 1.0:
            return 0.0
        return math.sqrt(-2.0 * math.log(resultant))

    def mean_direction(self) -> float:
        """Circular mean heading of the window (radians)."""
        if not self._dir_x:
            return 0.0
        mean_x, mean_y = self._dir_mean_components()
        return math.atan2(mean_y, mean_x)


class MobilityClassifier:
    """Classifies MNs into SS / RMS / LMS from streamed observations."""

    def __init__(self, config: ClassifierConfig | None = None) -> None:
        self.config = config or ClassifierConfig()
        self._windows: dict[str, ObservationWindow] = {}
        self._labels: dict[str, MobilityState] = {}

    def observe(self, node_id: str, speed: float, direction: float) -> MobilityState:
        """Absorb one observation and return the node's current label."""
        if speed < 0:
            raise ValueError(f"speed must be >= 0, got {speed}")
        window = self._windows.get(node_id)
        if window is None:
            window = ObservationWindow(self.config.window)
            self._windows[node_id] = window
        # Inlined ObservationWindow.add — one call per LU per filter.
        window._speeds.append(speed)
        window._mean_speed = None
        if speed > 1e-9:
            window._dir_x.append(math.cos(direction))
            window._dir_y.append(math.sin(direction))
            window._dir_means = None
        label = self._classify(window, speed)
        self._labels[node_id] = label
        return label

    def _classify(self, window: ObservationWindow, speed: float) -> MobilityState:
        cfg = self.config
        speeds = window._speeds
        n = len(speeds)
        # Until the window warms up, fall back to the instantaneous rule.
        if n < cfg.min_observations:
            if speed <= cfg.stop_speed:
                return MobilityState.STOP
            return (
                MobilityState.LINEAR
                if speed > cfg.v_walk
                else MobilityState.RANDOM
            )
        # Window statistics inlined from mean_speed / speed_std /
        # direction_std (identical arithmetic, shared memoized sums):
        # classification runs once per LU per filter.
        mean_speed = window._mean_speed
        if mean_speed is None:
            mean_speed = window._mean_speed = sum(speeds) / n
        if mean_speed <= cfg.stop_speed:
            return MobilityState.STOP
        if mean_speed > cfg.v_walk:
            return MobilityState.LINEAR
        if n < 2:
            speed_std = 0.0
        else:
            var = sum([(s - mean_speed) ** 2 for s in speeds]) / n
            speed_std = math.sqrt(var)
        constant_speed = speed_std <= cfg.speed_std_threshold
        dir_x = window._dir_x
        nd = len(dir_x)
        if nd < 2:
            direction_std = 0.0
        else:
            means = window._dir_means
            if means is None:
                means = window._dir_means = (
                    sum(dir_x) / nd,
                    sum(window._dir_y) / nd,
                )
            resultant = math.hypot(means[0], means[1])
            if resultant <= 1e-12:
                direction_std = math.inf
            elif resultant >= 1.0:
                direction_std = 0.0
            else:
                direction_std = math.sqrt(-2.0 * math.log(resultant))
        constant_direction = direction_std <= cfg.direction_std_threshold
        if constant_speed and constant_direction:
            return MobilityState.LINEAR
        return MobilityState.RANDOM

    def label(self, node_id: str) -> MobilityState | None:
        """The node's latest label, or ``None`` if never observed."""
        return self._labels.get(node_id)

    def labels(self) -> dict[str, MobilityState]:
        """A snapshot of every node's latest label."""
        return dict(self._labels)

    def window(self, node_id: str) -> ObservationWindow | None:
        """The node's observation window (for feature extraction)."""
        return self._windows.get(node_id)

    def forget(self, node_id: str) -> None:
        """Drop all state about a node (e.g. after it leaves the grid)."""
        self._windows.pop(node_id, None)
        self._labels.pop(node_id, None)

    def node_ids(self) -> list[str]:
        """Ids of every node that has been observed."""
        return list(self._windows)
