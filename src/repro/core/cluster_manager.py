"""Cluster lifecycle management (paper §3.4, ADF steps (2) and (6)).

The ADF "constructs, manages, and adjusts the MN clusters": nodes drift
between patterns, so clusters must be reconstructed periodically.  The
manager feeds the :class:`SequentialClusterer` from the classifier's
observation windows and tracks reconstruction statistics.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.classifier import MobilityClassifier
from repro.core.clustering import Cluster, MotionFeature, SequentialClusterer
from repro.mobility.states import MobilityState
from repro.telemetry import NULL_TELEMETRY

__all__ = ["ClusterManager"]


class ClusterManager:
    """Keeps the cluster structure in sync with observed mobility."""

    def __init__(
        self,
        classifier: MobilityClassifier,
        clusterer: SequentialClusterer,
        *,
        telemetry: Any = None,
        name: str = "adf",
    ) -> None:
        self._classifier = classifier
        self._clusterer = clusterer
        # place() reads one window per LU; keep a direct handle on the
        # classifier's window map instead of a method call per lookup.
        self._windows = classifier._windows
        self.reconstructions = 0
        self.reassignments = 0
        tm = telemetry if telemetry is not None else NULL_TELEMETRY
        self._instrumented = tm.enabled
        self._t_reconstructions = tm.counter(
            "adf.cluster_reconstructions", filter=name
        )
        self._t_reassignments = tm.counter("adf.cluster_reassignments", filter=name)
        self._t_live = tm.gauge("adf.clusters_live", filter=name)

    @property
    def clusterer(self) -> SequentialClusterer:
        """The underlying sequential clusterer."""
        return self._clusterer

    def feature_of(self, node_id: str) -> MotionFeature | None:
        """Current motion feature from the node's observation window."""
        window = self._classifier.window(node_id)
        if window is None or len(window) == 0:
            return None
        return MotionFeature(window.mean_speed(), window.mean_direction())

    def place(
        self, node_id: str, label: MobilityState | None = None
    ) -> Cluster | None:
        """(Re)place one node according to its current label and feature.

        SS nodes are kept out of clusters (the paper clusters every MN
        *except* those in SS); they are unassigned if previously clustered.
        Returns the node's cluster, or ``None`` for SS/unknown nodes.
        *label*, when given, is the node's already-known classification
        (the ADF just classified it); otherwise it is looked up.
        """
        if label is None:
            label = self._classifier.label(node_id)
        if label is None or label is MobilityState.STOP:
            self._clusterer.unassign(node_id)
            return None
        # Inlined feature_of: mean speed + circular-mean direction straight
        # from the window's memoized sums — this runs once per moving node
        # per LU.
        window = self._windows.get(node_id)
        if window is None or not window._speeds:
            return None
        mean = window._mean_speed
        if mean is None:
            mean = window._mean_speed = sum(window._speeds) / len(window._speeds)
        if not window._dir_x:
            direction = 0.0
        else:
            means = window._dir_means
            if means is None:
                n = len(window._dir_x)
                means = window._dir_means = (
                    sum(window._dir_x) / n,
                    sum(window._dir_y) / n,
                )
            direction = math.atan2(means[1], means[0])
        # Window means of validated observations are in range by
        # construction — skip the feature re-check.
        feature = MotionFeature.unchecked(mean, direction)
        cluster, moved = self._clusterer.assign(node_id, feature)
        if moved:
            self.reassignments += 1
            if self._instrumented:
                self._t_reassignments.inc()
        return cluster

    def reconstruct(self) -> int:
        """Tear down and rebuild all clusters from current features.

        This is the ADF's step (6).  Returns the number of clusters after
        reconstruction.
        """
        node_ids = self._classifier.node_ids()
        self._clusterer.clear()
        for node_id in node_ids:
            self.place(node_id)
        self.reconstructions += 1
        if self._instrumented:
            self._t_reconstructions.inc()
            self._t_live.set(self._clusterer.cluster_count())
        return self._clusterer.cluster_count()

    def cluster_of(self, node_id: str) -> Cluster | None:
        """The node's current cluster, if any."""
        return self._clusterer.cluster_of(node_id)

    def summary(self) -> dict[str, float]:
        """Cluster-structure statistics (for reports and tests)."""
        clusters = self._clusterer.clusters
        sizes = [len(c) for c in clusters]
        return {
            "clusters": float(len(clusters)),
            "clustered_nodes": float(sum(sizes)),
            "mean_size": float(sum(sizes) / len(sizes)) if sizes else 0.0,
            "reconstructions": float(self.reconstructions),
            "reassignments": float(self.reassignments),
        }
