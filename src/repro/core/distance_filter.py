"""The Distance Filter (paper §3.2.2).

The DF suppresses a node's location update when the node has moved less
than its Distance Threshold (DTH) since the *last transmitted* update.
Crucially the reference point is the last transmitted fix, not the last
observed one — otherwise a slowly creeping node would never be reported
even after drifting arbitrarily far.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.geometry import Vec2
from repro.util.validation import check_non_negative

__all__ = ["FilterDecision", "DistanceFilter"]


class FilterDecision(enum.Enum):
    """Outcome of one filtering step."""

    TRANSMIT = "transmit"
    SUPPRESS = "suppress"


@dataclass(frozen=True, slots=True)
class _Reference:
    position: Vec2
    time: float


class DistanceFilter:
    """Per-node displacement gate against a caller-supplied DTH."""

    def __init__(self) -> None:
        self._reference: dict[str, _Reference] = {}
        self.transmitted = 0
        self.suppressed = 0

    def decide(
        self, node_id: str, position: Vec2, time: float, dth: float
    ) -> FilterDecision:
        """Gate one update.

        The first update from a node always transmits (the broker knows
        nothing yet).  Subsequent updates transmit iff the displacement from
        the last transmitted fix *exceeds* *dth*; transmitting refreshes the
        reference fix.  The inequality is strict so that a zero DTH filters
        exactly the zero-displacement (stationary) updates while letting any
        actual movement through.
        """
        if not 0.0 <= dth < math.inf:
            check_non_negative(dth, "dth")
        ref = self._reference.get(node_id)
        if ref is None or position.distance_to(ref.position) > dth:
            self._reference[node_id] = _Reference(position, time)
            self.transmitted += 1
            return FilterDecision.TRANSMIT
        self.suppressed += 1
        return FilterDecision.SUPPRESS

    def displacement(self, node_id: str, position: Vec2) -> float | None:
        """Displacement from the node's last transmitted fix (None if none)."""
        ref = self._reference.get(node_id)
        return position.distance_to(ref.position) if ref else None

    def last_transmitted(self, node_id: str) -> Vec2 | None:
        """The node's last transmitted position, if any."""
        ref = self._reference.get(node_id)
        return ref.position if ref else None

    def forget(self, node_id: str) -> None:
        """Drop the node's reference fix (e.g. when it leaves the grid)."""
        self._reference.pop(node_id, None)

    @property
    def total(self) -> int:
        """Total decisions made."""
        return self.transmitted + self.suppressed

    @property
    def suppression_rate(self) -> float:
        """Fraction of updates suppressed so far."""
        return self.suppressed / self.total if self.total else 0.0
