"""The Adaptive Distance Filter (ADF) — the paper's contribution.

Pipeline (paper §3.2, §3.4):

1. :class:`~repro.core.classifier.MobilityClassifier` labels each MN
   SS / RMS / LMS from a window of observed velocity and direction (Fig. 2);
2. :class:`~repro.core.clustering.SequentialClusterer` groups moving MNs by
   velocity/direction similarity (sequential clustering, bound alpha);
3. :class:`~repro.core.dth.ClusterAverageDth` sizes each cluster's Distance
   Threshold from the cluster's average velocity;
4. :class:`~repro.core.distance_filter.DistanceFilter` suppresses LUs whose
   displacement since the last *transmitted* LU is under the DTH;
5. the :class:`~repro.core.adf.AdaptiveDistanceFilter` orchestrates all of
   the above, forwards surviving LUs to the grid broker and periodically
   reconstructs the clusters.

Baselines: :class:`~repro.core.baselines.IdealLUPolicy` (no filtering) and
:class:`~repro.core.baselines.GeneralDistanceFilterPolicy` (one global DTH),
the comparison points of the evaluation.
"""

from repro.core.classifier import ClassifierConfig, MobilityClassifier
from repro.core.clustering import Cluster, MotionFeature, SequentialClusterer
from repro.core.cluster_manager import ClusterManager
from repro.core.distance_filter import DistanceFilter, FilterDecision
from repro.core.dth import (
    ClusterAverageDth,
    DthPolicy,
    FixedDth,
    GlobalAverageDth,
)
from repro.core.battery_aware import BatteryAwareDth
from repro.core.adf import AdaptiveDistanceFilter, AdfConfig, AdfStats
from repro.core.baselines import (
    FilterPolicy,
    GeneralDistanceFilterPolicy,
    IdealLUPolicy,
)

__all__ = [
    "ClassifierConfig",
    "MobilityClassifier",
    "MotionFeature",
    "Cluster",
    "SequentialClusterer",
    "ClusterManager",
    "DistanceFilter",
    "FilterDecision",
    "DthPolicy",
    "FixedDth",
    "GlobalAverageDth",
    "ClusterAverageDth",
    "BatteryAwareDth",
    "AdaptiveDistanceFilter",
    "AdfConfig",
    "AdfStats",
    "FilterPolicy",
    "IdealLUPolicy",
    "GeneralDistanceFilterPolicy",
]
