"""A simplified High Level Architecture (HLA 1.3-style) run-time infrastructure.

The paper evaluates the ADF inside an HLA 1.3 distributed simulation (DMSO
RTI).  We reproduce the aspects the experiments actually rely on, in-process:

* **federation management** — create/join/resign/destroy;
* **declaration management** — publish/subscribe on object-class attributes
  and interaction classes;
* **object management** — register instances, update attribute values,
  reflect updates to subscribers, send/receive interactions;
* **time management** — conservative synchronisation with per-federate
  lookahead: time-advance requests are granted only up to the federation's
  LBTS (lower bound on time stamp), and timestamp-ordered (TSO) messages are
  delivered in timestamp order, never in a federate's past.

What we deliberately do not reproduce: network transport, DDM regions, save/
restore, MOM.  Those do not affect LU counts or RMSE.
"""

from repro.hla.object_model import (
    AttributeName,
    FederationObjectModel,
    InteractionClass,
    ObjectClass,
)
from repro.hla.federate import FederateAmbassador
from repro.hla.rti import (
    FederateHandle,
    ObjectInstanceHandle,
    RTIKernel,
    RTIError,
)
from repro.hla.time_management import TimeManager, TimeStatus

__all__ = [
    "AttributeName",
    "FederationObjectModel",
    "InteractionClass",
    "ObjectClass",
    "FederateAmbassador",
    "FederateHandle",
    "ObjectInstanceHandle",
    "RTIKernel",
    "RTIError",
    "TimeManager",
    "TimeStatus",
]
